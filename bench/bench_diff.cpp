/// \file bench_diff.cpp
/// \brief Perf-regression gate: compares two benchmark result files and
///        exits nonzero when any benchmark slowed down beyond a noise
///        threshold — the tool behind the CI perf-smoke job's gate against
///        the committed baseline.
///
/// Usage:
///   bench_diff <baseline.json> <candidate.json> [options]
///     --threshold <pct>   max allowed slowdown per benchmark (default 25)
///     --calibrate         divide all ratios by their median first, so a
///                         uniformly slower/faster machine does not trip the
///                         gate — only *relative* regressions do
///     --scale <x>         multiply candidate times by x (regression
///                         injection for self-tests)
///     --self-test <file>  verify the gate itself: <file> vs itself must
///                         pass, <file> vs itself at --scale 2 must fail
///
/// Accepted formats (auto-detected per entry under the "benchmarks" array):
///
/// - google-benchmark JSON (`--benchmark_format=json`): entries with
///   "name", "real_time", "time_unit"; aggregate rows other than the median
///   are skipped.
/// - the repo's BENCH_*.json notes: entries with "name", "unit" and
///   "after" (preferred), "time" or "before" values.
///
/// Repeated names (google-benchmark --benchmark_repetitions) collapse to
/// their median. Benchmarks present on only one side are reported but never
/// fail the gate — a renamed benchmark must not mask a real regression
/// elsewhere, and a new one has no baseline yet.

#include "service/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using mnt::svc::json_value;

/// Seconds per unit name; 0 for unknown units.
double unit_scale(const std::string& unit)
{
    if (unit == "ns")
    {
        return 1e-9;
    }
    if (unit == "us")
    {
        return 1e-6;
    }
    if (unit == "ms")
    {
        return 1e-3;
    }
    if (unit == "s")
    {
        return 1.0;
    }
    return 0.0;
}

/// name -> all observed times in seconds (collapsed to the median later).
using sample_map = std::map<std::string, std::vector<double>>;

/// Extracts one entry's (name, seconds); returns false when the entry is
/// not a usable benchmark row (wrong shape, non-median aggregate, unknown
/// unit).
bool extract_entry(const json_value& entry, std::string& name, double& seconds)
{
    const auto* name_field = entry.find("name");
    if (name_field == nullptr || !name_field->is_string())
    {
        return false;
    }
    name = name_field->as_string();

    // google-benchmark rows: skip non-median aggregates (mean, stddev, cv)
    if (const auto* run_type = entry.find("run_type");
        run_type != nullptr && run_type->is_string() && run_type->as_string() == "aggregate")
    {
        const auto* aggregate = entry.find("aggregate_name");
        if (aggregate == nullptr || !aggregate->is_string() || aggregate->as_string() != "median")
        {
            return false;
        }
        // strip the "_median" suffix google-benchmark appends to the name
        const std::string suffix = "_median";
        if (name.size() > suffix.size() && name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
        {
            name.resize(name.size() - suffix.size());
        }
    }

    const auto* unit_field = entry.find("time_unit");
    if (unit_field == nullptr)
    {
        unit_field = entry.find("unit");
    }
    if (unit_field == nullptr || !unit_field->is_string())
    {
        return false;
    }
    const auto scale = unit_scale(unit_field->as_string());
    if (scale <= 0.0)
    {
        return false;
    }

    for (const char* key : {"real_time", "after", "time", "before"})
    {
        if (const auto* value = entry.find(key); value != nullptr && value->is_number())
        {
            seconds = value->as_number() * scale;
            return seconds > 0.0 && std::isfinite(seconds);
        }
    }
    return false;
}

sample_map load_results(const std::string& path)
{
    std::ifstream in{path};
    if (!in)
    {
        throw std::runtime_error{"cannot open '" + path + "'"};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto document = json_value::parse(buffer.str());

    const auto* benchmarks = document.find("benchmarks");
    if (benchmarks == nullptr || !benchmarks->is_array())
    {
        throw std::runtime_error{"'" + path + "' has no \"benchmarks\" array"};
    }

    sample_map samples;
    for (const auto& entry : benchmarks->as_array())
    {
        std::string name;
        double seconds = 0.0;
        if (entry.is_object() && extract_entry(entry, name, seconds))
        {
            samples[name].push_back(seconds);
        }
    }
    if (samples.empty())
    {
        throw std::runtime_error{"'" + path + "' contains no usable benchmark rows"};
    }
    return samples;
}

double median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const auto n = values.size();
    return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

struct diff_options
{
    std::string baseline_path;
    std::string candidate_path;
    double threshold_pct{25.0};
    bool calibrate{false};
    double scale{1.0};
};

/// Compares the two result sets; returns the number of regressions.
int compare(const diff_options& options)
{
    const auto baseline = load_results(options.baseline_path);
    auto candidate = load_results(options.candidate_path);

    struct row
    {
        std::string name;
        double base_s{0.0};
        double cand_s{0.0};
        double ratio{0.0};
    };
    std::vector<row> rows;
    for (const auto& [name, samples] : baseline)
    {
        const auto found = candidate.find(name);
        if (found == candidate.end())
        {
            std::printf("  (only in baseline)  %s\n", name.c_str());
            continue;
        }
        row r{};
        r.name = name;
        r.base_s = median(samples);
        r.cand_s = median(found->second) * options.scale;
        r.ratio = r.cand_s / r.base_s;
        rows.push_back(std::move(r));
    }
    for (const auto& [name, samples] : candidate)
    {
        if (baseline.find(name) == baseline.end())
        {
            std::printf("  (only in candidate) %s\n", name.c_str());
        }
    }
    if (rows.empty())
    {
        std::fprintf(stderr, "bench_diff: no benchmark names in common\n");
        return -1;
    }

    double machine_factor = 1.0;
    if (options.calibrate)
    {
        std::vector<double> ratios;
        ratios.reserve(rows.size());
        for (const auto& r : rows)
        {
            ratios.push_back(r.ratio);
        }
        machine_factor = median(std::move(ratios));
        std::printf("calibration: median ratio %.3f divided out (machine normalization)\n", machine_factor);
    }

    const auto limit = 1.0 + options.threshold_pct / 100.0;
    int regressions = 0;
    std::printf("%-28s %12s %12s %8s\n", "benchmark", "baseline", "candidate", "ratio");
    for (const auto& r : rows)
    {
        const auto adjusted = r.ratio / machine_factor;
        const bool regressed = adjusted > limit;
        regressions += regressed ? 1 : 0;
        std::printf("%-28s %10.3fus %10.3fus %7.2fx%s\n", r.name.c_str(), r.base_s * 1e6, r.cand_s * 1e6,
                    adjusted, regressed ? "  REGRESSION" : "");
    }
    std::printf("%d regression(s) beyond %.0f%% across %zu shared benchmark(s)\n", regressions,
                options.threshold_pct, rows.size());
    return regressions;
}

/// The gate must (a) pass a file against itself and (b) fail it against a
/// 2x-slowed copy — otherwise the gate itself is broken and CI would wave
/// regressions through silently.
int self_test(const std::string& path, const double threshold_pct)
{
    diff_options same{};
    same.baseline_path = path;
    same.candidate_path = path;
    same.threshold_pct = threshold_pct;
    std::printf("self-test 1/2: identical inputs must pass\n");
    if (compare(same) != 0)
    {
        std::fprintf(stderr, "bench_diff self-test FAILED: identical inputs reported a regression\n");
        return 1;
    }
    std::printf("self-test 2/2: injected 2x slowdown must fail\n");
    same.scale = 2.0;
    if (compare(same) <= 0)
    {
        std::fprintf(stderr, "bench_diff self-test FAILED: 2x slowdown was not detected\n");
        return 1;
    }
    std::printf("bench_diff self-test passed\n");
    return 0;
}

}  // namespace

int main(const int argc, const char** argv)
{
    diff_options options{};
    std::string self_test_path;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : std::string{}; };
        if (arg == "--threshold")
        {
            options.threshold_pct = std::stod(next());
        }
        else if (arg == "--calibrate")
        {
            options.calibrate = true;
        }
        else if (arg == "--scale")
        {
            options.scale = std::stod(next());
        }
        else if (arg == "--self-test")
        {
            self_test_path = next();
        }
        else if (arg == "--help" || arg == "-h")
        {
            positional.clear();
            break;
        }
        else
        {
            positional.push_back(arg);
        }
    }

    try
    {
        if (!self_test_path.empty())
        {
            return self_test(self_test_path, options.threshold_pct);
        }
        if (positional.size() != 2)
        {
            std::fprintf(stderr,
                         "usage: bench_diff <baseline.json> <candidate.json>\n"
                         "                  [--threshold <pct>] [--calibrate] [--scale <x>]\n"
                         "       bench_diff --self-test <file.json> [--threshold <pct>]\n"
                         "exit status: 0 = no regression, 1 = regression(s), 2 = usage/parse error\n");
            return 2;
        }
        options.baseline_path = positional[0];
        options.candidate_path = positional[1];
        const auto regressions = compare(options);
        if (regressions < 0)
        {
            return 2;
        }
        return regressions == 0 ? 0 : 1;
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "bench_diff: %s\n", e.what());
        return 2;
    }
}
