/// \file micro_simd.cpp
/// \brief SIMD kernel microbenchmarks (μ8): the row kernels (gate_row,
///        mismatch) and their integrations (row-batched truth-table
///        simulation, wave-block simulation, equivalence checking) with the
///        scalar reference backend vs AVX2. The Arg(0) encodes the backend:
///        /0 = scalar, /1 = avx2 (skipped on hosts without AVX2). Run with
///        `--benchmark_out=micro_simd.json --benchmark_out_format=json` to
///        produce the artifact tracked in BENCH_pr10.json and gated by the
///        CI perf-smoke job against bench/baselines/micro_simd_baseline.json.

#include "benchmarks/families.hpp"
#include "benchmarks/synthetic.hpp"
#include "network/simulation.hpp"
#include "physical_design/ortho.hpp"
#include "verification/equivalence.hpp"
#include "verification/simd/simd.hpp"
#include "verification/wave_simulation.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

namespace
{

using namespace mnt;

/// Maps the benchmark Arg to a backend; skips AVX2 rows on scalar-only
/// hosts so baselines stay comparable across machines.
bool select_backend(benchmark::State& state, simd::backend& out)
{
    out = state.range(0) == 0 ? simd::backend::scalar : simd::backend::avx2;
    if (out == simd::backend::avx2 && !simd::avx2_supported())
    {
        state.SkipWithError("AVX2 not available on this host");
        return false;
    }
    return true;
}

std::vector<std::uint64_t> random_row(const std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint64_t> row(n);
    for (auto& w : row)
    {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        w = seed;
    }
    return row;
}

bm::synthetic_spec spec_of(const std::size_t gates)
{
    bm::synthetic_spec spec{};
    spec.name = "bench";
    spec.num_pis = 8;
    spec.num_pos = 4;
    spec.num_gates = gates;
    spec.window = 32;
    return spec;
}

// ------------------------------------------------------------ raw kernels

/// The hot inner loop: one 2-input gate function over 4096-word rows.
void simd_gate_row(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    const auto& kernels = simd::kernels_for(backend);
    constexpr std::size_t n = 4096;
    const auto a = random_row(n, 0x9e3779b97f4a7c15ull);
    const auto b = random_row(n, 0xbf58476d1ce4e5b9ull);
    std::vector<std::uint64_t> dst(n);
    for (auto _ : state)
    {
        kernels.gate_row(ntk::gate_type::xor2, dst.data(), a.data(), b.data(), nullptr, n);
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n * sizeof(std::uint64_t)));
}
BENCHMARK(simd_gate_row)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// The 3-input majority row — the widest gate function.
void simd_gate_row_maj(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    const auto& kernels = simd::kernels_for(backend);
    constexpr std::size_t n = 4096;
    const auto a = random_row(n, 1);
    const auto b = random_row(n, 2);
    const auto c = random_row(n, 3);
    std::vector<std::uint64_t> dst(n);
    for (auto _ : state)
    {
        kernels.gate_row(ntk::gate_type::maj3, dst.data(), a.data(), b.data(), c.data(), n);
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n * sizeof(std::uint64_t)));
}
BENCHMARK(simd_gate_row_maj)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Full-row mismatch scan with equal rows (the common, worst-case path of
/// equivalence checking: no early exit).
void simd_mismatch(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    const auto& kernels = simd::kernels_for(backend);
    constexpr std::size_t n = 4096;
    const auto a = random_row(n, 0x5eed);
    const auto b = a;
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(kernels.mismatch(a.data(), b.data(), n));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(2 * n * sizeof(std::uint64_t)));
}
BENCHMARK(simd_mismatch)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ----------------------------------------------------------- integrations

/// Row-batched network simulation: 64 words through a 256-gate network.
void simd_simulate_rows(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    simd::set_backend(backend);
    const auto network = bm::synthetic_network(spec_of(256));
    constexpr std::size_t n = 64;
    const auto pi_rows = random_row(network.num_pis() * n, 0xabcd);
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(ntk::simulate_rows(network, pi_rows, n));
    }
    simd::reset_backend();
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n * 64));
}
BENCHMARK(simd_simulate_rows)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Row-batched wave simulation: 32 words through an ortho layout.
void simd_wave_block(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    simd::set_backend(backend);
    const auto layout = pd::ortho(bm::synthetic_network(spec_of(96)));
    constexpr std::size_t n = 32;
    const auto pi_rows = random_row(layout.num_pis() * n, 0x57415645);
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(ver::wave_simulate_block(layout, pi_rows, n));
    }
    simd::reset_backend();
    state.counters["tiles"] = static_cast<double>(layout.num_occupied());
}
BENCHMARK(simd_wave_block)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// End-to-end equivalence check of a family function against itself (the
/// service's verification hot path during regeneration).
void simd_equivalence(benchmark::State& state)
{
    simd::backend backend{};
    if (!select_backend(state, backend))
    {
        return;
    }
    simd::set_backend(backend);
    const auto network = bm::synthetic_network(spec_of(192));
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(ver::check_equivalence(network, network).equivalent);
    }
    simd::reset_backend();
}
BENCHMARK(simd_equivalence)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
