/// \file figure1_facets.cpp
/// \brief Experiment E3: reproduces the filter interface of Figure 1 — the
///        MNT Bench website facets. The catalog is populated with all
///        feasible tool/scheme/library combinations for the two small
///        benchmark sets, then the facet histograms (abstraction level, gate
///        library, clocking scheme, physical design algorithm, optimization
///        algorithm) and a few example filter queries are printed — the
///        exact selections a website user can make.

#include "table_helpers.hpp"

#include "core/export.hpp"
#include "core/filters.hpp"

#include <cstdio>
#include <filesystem>

int main()
{
    using namespace mnt;

    cat::catalog catalog;
    for (const auto& entry : bm::trindade16())
    {
        bench::populate(catalog, entry, cat::gate_library_kind::qca_one);
        bench::populate(catalog, entry, cat::gate_library_kind::bestagon);
    }
    for (const auto& entry : bm::fontes18())
    {
        bench::populate(catalog, entry, cat::gate_library_kind::qca_one);
        bench::populate(catalog, entry, cat::gate_library_kind::bestagon);
    }

    std::printf("=== Figure 1 — MNT Bench filter facets ===\n\n");
    std::printf("Abstraction level:\n");
    std::printf("  %-24s %zu\n", "Network (.v)", catalog.num_networks());
    std::printf("  %-24s %zu\n", "Gate-level (.fgl)", catalog.num_layouts());

    const auto facets = cat::compute_facets(catalog);
    const auto print_facet = [](const char* title, const std::map<std::string, std::size_t>& histogram)
    {
        std::printf("\n%s:\n", title);
        for (const auto& [name, count] : histogram)
        {
            std::printf("  %-24s %zu\n", name.c_str(), count);
        }
    };
    print_facet("Gate library", facets.per_library);
    print_facet("Clocking scheme", facets.per_clocking);
    print_facet("Physical design algorithm", facets.per_algorithm);
    print_facet("Optimization algorithm", facets.per_optimization);
    print_facet("Benchmark set", facets.per_set);

    // example filter interactions, as a website user would click them
    std::printf("\n=== Example filter queries ===\n");

    cat::filter_query query_use{};
    query_use.clockings = {"USE"};
    std::printf("USE-clocked layouts:                   %zu\n", cat::apply_filter(catalog, query_use).size());

    cat::filter_query query_exact_bestagon{};
    query_exact_bestagon.libraries = {cat::gate_library_kind::bestagon};
    query_exact_bestagon.algorithms = {"exact"};
    std::printf("Bestagon layouts from exact:           %zu\n",
                cat::apply_filter(catalog, query_exact_bestagon).size());

    cat::filter_query query_plo{};
    query_plo.required_optimizations = {"PLO"};
    std::printf("Layouts with post-layout optimization: %zu\n", cat::apply_filter(catalog, query_plo).size());

    cat::filter_query query_best{};
    query_best.best_only = true;
    const auto best = cat::apply_filter(catalog, query_best);
    std::printf("'Most optimal: Best' selection:        %zu\n", best.size());

    // the website's download: export the best selection as .v + .fgl files
    const auto dir = std::filesystem::temp_directory_path() / "mnt_bench_export";
    std::filesystem::remove_all(dir);
    const auto report = cat::export_selection(catalog, best, dir);
    std::printf("\nExported %zu files to %s\n", report.written.size(), dir.string().c_str());
    std::filesystem::remove_all(dir);

    return 0;
}
