/// \file loadgen.cpp
/// \brief HTTP load generator for the catalog server — the measured load
///        story behind the event-driven rework. Drives a realistic
///        read-mostly request mix (pbt::random_catalog_target) against
///        either a self-hosted demo catalog or a live server (--port), in
///        three connection disciplines:
///
///          close      one request per TCP connection (the pre-rework
///                     server's only mode: every response was
///                     `Connection: close`)
///          keepalive  many requests per connection, strictly one in flight
///          pipeline   many requests per connection, PIPELINE_DEPTH in
///                     flight (HTTP/1.1 pipelining)
///
///        Per mode it records p50/p95/p99 request latency and sustained
///        requests/second, and writes them as a BENCH-notes JSON document
///        (bench_diff's format, microseconds-per-request so lower is
///        better) for the CI `bench_diff --calibrate` gate against
///        bench/baselines/loadgen_baseline.json.
///
/// Usage:
///   loadgen [--port <p>] [--requests <n>] [--clients <n>] [--mode <m>]
///           [--out <file.json>] [--quick]
///
///   --port <p>       target a running server instead of self-hosting
///   --requests <n>   requests per client per mode (default 400)
///   --clients <n>    concurrent client connections (default 4)
///   --mode <m>       close | keepalive | pipeline | all (default all)
///   --out <file>     output path (default BENCH_service.json)
///   --quick          tiny counts for the ctest smoke run

#include "benchmarks/functions.hpp"
#include "core/catalog.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "service/json.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "testing/generators.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace
{

using namespace mnt;
using clock_type = std::chrono::steady_clock;

constexpr std::size_t PIPELINE_DEPTH = 4;

// ------------------------------------------------------------- HTTP client

/// A blocking loopback client with Content-Length response framing, so any
/// number of responses can be read off one keep-alive connection.
class http_client
{
public:
    explicit http_client(const std::uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
        {
            throw mnt_error{"loadgen: socket() failed"};
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0)
        {
            ::close(fd);
            fd = -1;
            throw mnt_error{std::string{"loadgen: connect() failed: "} + std::strerror(errno)};
        }
    }

    ~http_client()
    {
        if (fd >= 0)
        {
            ::close(fd);
        }
    }

    http_client(const http_client&) = delete;
    http_client& operator=(const http_client&) = delete;

    void send_raw(const std::string& bytes) const
    {
        std::size_t sent = 0;
        while (sent < bytes.size())
        {
            const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
            {
                throw mnt_error{"loadgen: send() failed"};
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    /// Reads one response; returns its status code.
    int read_response()
    {
        const auto header_end = fill_until("\r\n\r\n");
        const auto headers = buffered.substr(0, header_end);
        buffered.erase(0, header_end + 4);
        const int status = std::stoi(headers.substr(9, 3));

        std::size_t content_length = 0;
        const auto key = headers.find("Content-Length: ");
        if (key != std::string::npos)
        {
            content_length = std::stoul(headers.substr(key + 16));
        }
        while (buffered.size() < content_length)
        {
            fill_more();
        }
        buffered.erase(0, content_length);
        return status;
    }

private:
    [[nodiscard]] std::size_t fill_until(const std::string& marker)
    {
        for (;;)
        {
            const auto at = buffered.find(marker);
            if (at != std::string::npos)
            {
                return at;
            }
            fill_more();
        }
    }

    void fill_more()
    {
        char buffer[8192];
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            throw mnt_error{"loadgen: connection closed mid-response"};
        }
        buffered.append(buffer, static_cast<std::size_t>(n));
    }

    int fd{-1};
    std::string buffered;
};

std::string get_request(const std::string& target, const bool keep_alive)
{
    return "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n" +
           (keep_alive ? std::string{} : std::string{"Connection: close\r\n"}) + "\r\n";
}

// --------------------------------------------------------------- run modes

struct mode_result
{
    std::string mode;
    std::size_t requests{0};
    std::size_t errors{0};  ///< non-2xx/3xx responses
    double elapsed_s{0.0};
    double p50_us{0.0};
    double p95_us{0.0};
    double p99_us{0.0};

    [[nodiscard]] double requests_per_s() const
    {
        return elapsed_s > 0.0 ? static_cast<double>(requests) / elapsed_s : 0.0;
    }

    /// Mean service cost in microseconds per request — the lower-is-better
    /// number the perf gate tracks (1e6 / requests-per-second).
    [[nodiscard]] double us_per_request() const
    {
        return requests > 0 ? elapsed_s * 1e6 / static_cast<double>(requests) : 0.0;
    }
};

double percentile(std::vector<double>& sorted_us, const double q)
{
    if (sorted_us.empty())
    {
        return 0.0;
    }
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted_us.size()))); // 1-based
    return sorted_us[std::min(sorted_us.size(), std::max<std::size_t>(1, rank)) - 1];
}

/// One client worker: \p requests requests drawn from the catalog mix.
/// Latencies are appended in microseconds.
void run_client(const std::uint16_t port, const std::string& mode, const std::size_t requests,
                const std::uint64_t seed, std::vector<double>& latencies_us, std::size_t& errors)
{
    pbt::rng random{seed};

    if (mode == "close")
    {
        for (std::size_t i = 0; i < requests; ++i)
        {
            const auto t0 = clock_type::now();
            http_client client{port};
            client.send_raw(get_request(pbt::random_catalog_target(random), false));
            const auto status = client.read_response();
            latencies_us.push_back(std::chrono::duration<double, std::micro>(clock_type::now() - t0).count());
            errors += status >= 400 ? 1 : 0;
        }
        return;
    }

    http_client client{port};
    if (mode == "keepalive")
    {
        for (std::size_t i = 0; i < requests; ++i)
        {
            const auto t0 = clock_type::now();
            client.send_raw(get_request(pbt::random_catalog_target(random), true));
            const auto status = client.read_response();
            latencies_us.push_back(std::chrono::duration<double, std::micro>(clock_type::now() - t0).count());
            errors += status >= 400 ? 1 : 0;
        }
        return;
    }

    // pipeline: PIPELINE_DEPTH requests on the wire before the first read;
    // per-request latency is the batch round-trip amortized over the batch
    for (std::size_t done = 0; done < requests;)
    {
        const auto batch = std::min(PIPELINE_DEPTH, requests - done);
        std::string wire;
        for (std::size_t b = 0; b < batch; ++b)
        {
            wire += get_request(pbt::random_catalog_target(random), true);
        }
        const auto t0 = clock_type::now();
        client.send_raw(wire);
        for (std::size_t b = 0; b < batch; ++b)
        {
            errors += client.read_response() >= 400 ? 1 : 0;
        }
        const auto batch_us = std::chrono::duration<double, std::micro>(clock_type::now() - t0).count();
        for (std::size_t b = 0; b < batch; ++b)
        {
            latencies_us.push_back(batch_us / static_cast<double>(batch));
        }
        done += batch;
    }
}

mode_result run_mode(const std::uint16_t port, const std::string& mode, const std::size_t clients,
                     const std::size_t requests_per_client)
{
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::size_t> errors(clients, 0);

    const auto t0 = clock_type::now();
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
    {
        pool.emplace_back([&, c]
                          { run_client(port, mode, requests_per_client, 0x10ad6e12ULL + c, latencies[c],
                                       errors[c]); });
    }
    for (auto& t : pool)
    {
        t.join();
    }

    mode_result result{};
    result.mode = mode;
    result.elapsed_s = std::chrono::duration<double>(clock_type::now() - t0).count();

    std::vector<double> all;
    for (std::size_t c = 0; c < clients; ++c)
    {
        all.insert(all.end(), latencies[c].begin(), latencies[c].end());
        result.errors += errors[c];
    }
    result.requests = all.size();
    std::sort(all.begin(), all.end());
    result.p50_us = percentile(all, 0.50);
    result.p95_us = percentile(all, 0.95);
    result.p99_us = percentile(all, 0.99);
    return result;
}

// ------------------------------------------------------------ demo catalog

/// A small in-memory catalog (three functions, two layouts each) so the
/// loadgen is self-contained: `loadgen` with no --port measures the server
/// code itself, not a particular store.
cat::catalog demo_catalog()
{
    cat::catalog catalog;
    const std::vector<std::pair<std::string, ntk::logic_network>> functions{
        {"2:1 MUX", bm::mux21()}, {"XOR", bm::xor2()}, {"Half Adder", bm::half_adder()}};
    for (const auto& [name, network] : functions)
    {
        catalog.add_network("Trindade16", name, network);

        const auto cartesian = pd::ortho(network);
        cat::layout_record qca{};
        qca.benchmark_set = "Trindade16";
        qca.benchmark_name = name;
        qca.library = cat::gate_library_kind::qca_one;
        qca.clocking = cartesian.clocking().name();
        qca.algorithm = "ortho";
        qca.runtime = 0.1;
        qca.layout = cartesian;
        catalog.add_layout(qca);

        cat::layout_record hex{};
        hex.benchmark_set = "Trindade16";
        hex.benchmark_name = name;
        hex.library = cat::gate_library_kind::bestagon;
        hex.algorithm = "ortho";
        hex.optimizations = {"45°"};
        hex.runtime = 0.2;
        hex.layout = pd::hexagonalization(cartesian);
        hex.clocking = hex.layout.clocking().name();
        catalog.add_layout(hex);
    }
    return catalog;
}

// ------------------------------------------------------------------ output

void write_bench_json(const std::string& path, const std::vector<mode_result>& results)
{
    auto rows = svc::json_value::make_array();
    for (const auto& r : results)
    {
        const auto add = [&rows](const std::string& name, const double value)
        {
            auto row = svc::json_value::make_object();
            row.set("name", svc::json_value{name});
            row.set("unit", svc::json_value{std::string{"us"}});
            row.set("after", svc::json_value{value});
            rows.push_back(std::move(row));
        };
        add("loadgen_" + r.mode + "_req_us", r.us_per_request());
        add("loadgen_" + r.mode + "_p50_us", r.p50_us);
        add("loadgen_" + r.mode + "_p95_us", r.p95_us);
        add("loadgen_" + r.mode + "_p99_us", r.p99_us);
    }

    auto modes = svc::json_value::make_array();
    for (const auto& r : results)
    {
        auto mode = svc::json_value::make_object();
        mode.set("mode", svc::json_value{r.mode});
        mode.set("requests", svc::json_value{static_cast<std::uint64_t>(r.requests)});
        mode.set("errors", svc::json_value{static_cast<std::uint64_t>(r.errors)});
        mode.set("elapsed_s", svc::json_value{r.elapsed_s});
        mode.set("requests_per_s", svc::json_value{r.requests_per_s()});
        mode.set("p50_us", svc::json_value{r.p50_us});
        mode.set("p95_us", svc::json_value{r.p95_us});
        mode.set("p99_us", svc::json_value{r.p99_us});
        modes.push_back(std::move(mode));
    }

    auto document = svc::json_value::make_object();
    document.set("title", svc::json_value{std::string{
                              "catalog-server load test: latency and throughput per connection discipline"}});
    document.set(
        "methodology",
        svc::json_value{std::string{
            "bench/loadgen drives the pbt::random_catalog_target read mix against the epoll catalog server "
            "over loopback. close = one request per TCP connection (the pre-rework behavior), keepalive = "
            "one in-flight request on a persistent connection, pipeline = 4 in-flight. The *_req_us rows "
            "are mean microseconds per request (1e6 / requests-per-second) so every row is lower-is-better "
            "for bench_diff; p50/p95/p99 are per-request latency percentiles."}});
    document.set("benchmarks", std::move(rows));
    document.set("modes", std::move(modes));

    std::ofstream out{path};
    out << document.dump() << '\n';
    if (!out)
    {
        throw mnt_error{"loadgen: cannot write " + path};
    }
}

struct loadgen_options
{
    std::optional<std::uint16_t> port;
    std::size_t requests{400};
    std::size_t clients{4};
    std::string mode{"all"};
    std::string out{"BENCH_service.json"};
    bool help{false};
};

loadgen_options parse_args(const int argc, const char** argv)
{
    loadgen_options options{};
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : std::string{}; };
        if (arg == "--port")
        {
            options.port = static_cast<std::uint16_t>(std::stoul(next()));
        }
        else if (arg == "--requests")
        {
            options.requests = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--clients")
        {
            options.clients = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--mode")
        {
            options.mode = next();
        }
        else if (arg == "--out")
        {
            options.out = next();
        }
        else if (arg == "--quick")
        {
            options.requests = 25;
            options.clients = 2;
        }
        else if (arg == "--help" || arg == "-h")
        {
            options.help = true;
        }
        else
        {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            options.help = true;
        }
    }
    return options;
}

}  // namespace

int main(const int argc, const char** argv)
{
    const auto options = parse_args(argc, argv);
    if (options.help)
    {
        std::printf("catalog-server load generator\n"
                    "usage: loadgen [--port <p>] [--requests <n>] [--clients <n>]\n"
                    "               [--mode close|keepalive|pipeline|all] [--out <file.json>] [--quick]\n");
        return 0;
    }
    std::signal(SIGPIPE, SIG_IGN);

    try
    {
        // self-host unless pointed at a live server
        std::unique_ptr<cat::catalog> catalog;
        std::unique_ptr<svc::query_engine> engine;
        std::unique_ptr<svc::catalog_server> server;
        std::uint16_t port = 0;
        if (options.port.has_value())
        {
            port = *options.port;
        }
        else
        {
            catalog = std::make_unique<cat::catalog>(demo_catalog());
            engine = std::make_unique<svc::query_engine>(*catalog);
            svc::server_options server_options{};
            server_options.threads = 2;
            server = std::make_unique<svc::catalog_server>(*engine, server_options);
            server->start();
            port = server->port();
            std::printf("self-hosting %zu layouts on port %u\n", catalog->num_layouts(),
                        static_cast<unsigned>(port));
        }

        std::vector<std::string> modes;
        if (options.mode == "all")
        {
            modes = {"close", "keepalive", "pipeline"};
        }
        else if (options.mode == "close" || options.mode == "keepalive" || options.mode == "pipeline")
        {
            modes = {options.mode};
        }
        else
        {
            std::fprintf(stderr, "unknown mode '%s'\n", options.mode.c_str());
            return 2;
        }

        std::vector<mode_result> results;
        for (const auto& mode : modes)
        {
            // warm the server's caches/snapshot path before measuring
            auto warmup = run_mode(port, mode, 1, std::min<std::size_t>(options.requests, 20));
            static_cast<void>(warmup);
            auto result = run_mode(port, mode, options.clients, options.requests);
            std::printf("%-9s  %6zu req  %8.1f req/s  p50 %7.1f us  p95 %7.1f us  p99 %7.1f us  errors %zu\n",
                        result.mode.c_str(), result.requests, result.requests_per_s(), result.p50_us,
                        result.p95_us, result.p99_us, result.errors);
            if (result.errors > 0)
            {
                std::fprintf(stderr, "loadgen: %zu requests answered >= 400 in mode %s\n", result.errors,
                             mode.c_str());
                return 1;
            }
            results.push_back(std::move(result));
        }

        write_bench_json(options.out, results);
        std::printf("wrote %s\n", options.out.c_str());

        if (server)
        {
            server->stop();
        }
        return 0;
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "loadgen error: %s\n", e.what());
        return 1;
    }
}
