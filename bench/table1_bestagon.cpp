/// \file table1_bestagon.cpp
/// \brief Experiment E2: regenerates the Bestagon half of the paper's
///        Table I — the best hexagonal ROW-clocked layout per benchmark
///        function (exact on the hex grid for tiny functions; ortho with
///        InOrd, the 45° hexagonalization and PLO for everything), with the
///        area delta versus the plain ortho+45° baseline. Covers the paper's
///        §II claim that the best combination needs a fraction of the
///        baseline's area (e.g. "router": 23.6% of [7]).

#include "table_helpers.hpp"

#include <cstdio>

int main()
{
    using namespace mnt;
    const tel::stopwatch watch;
    const bench::telemetry_sidecar sidecar{"table1_bestagon.telemetry.json"};

    cat::catalog catalog;

    for (const auto& entry : bm::all_suites())
    {
        std::fprintf(stderr, "[table1/Bestagon] %s/%s ...\n", entry.set.c_str(), entry.name.c_str());
        bench::populate(catalog, entry, cat::gate_library_kind::bestagon);
    }

    bench::print_header(cat::gate_library_kind::bestagon);
    for (const auto& [network, entry] : cat::best_per_function(catalog, cat::gate_library_kind::bestagon))
    {
        bench::print_row(*network, entry);
    }

    const auto seconds = watch.seconds();
    std::printf("\n%zu layouts generated across %zu benchmark functions in %.1f s\n", catalog.num_layouts(),
                catalog.num_networks(), seconds);
    return 0;
}
