/// \file table1_qca_one.cpp
/// \brief Experiment E1: regenerates the QCA ONE half of the paper's
///        Table I — the best Cartesian gate-level layout per benchmark
///        function from the full tool portfolio (exact / NanoPlaceR
///        substitute / ortho with InOrd and PLO, over the 2DDWave, USE, RES
///        and ESR clocking schemes), with runtime, winning flow and area
///        delta versus the plain-ortho baseline.

#include "table_helpers.hpp"

#include <cstdio>

int main()
{
    using namespace mnt;
    const tel::stopwatch watch;
    const bench::telemetry_sidecar sidecar{"table1_qca_one.telemetry.json"};

    cat::catalog catalog;

    for (const auto& entry : bm::all_suites())
    {
        std::fprintf(stderr, "[table1/QCA ONE] %s/%s ...\n", entry.set.c_str(), entry.name.c_str());
        bench::populate(catalog, entry, cat::gate_library_kind::qca_one);
    }

    bench::print_header(cat::gate_library_kind::qca_one);
    for (const auto& [network, entry] : cat::best_per_function(catalog, cat::gate_library_kind::qca_one))
    {
        bench::print_row(*network, entry);
    }

    const auto seconds = watch.seconds();
    std::printf("\n%zu layouts generated across %zu benchmark functions in %.1f s\n", catalog.num_layouts(),
                catalog.num_networks(), seconds);
    return 0;
}
