#pragma once

/// \file table_helpers.hpp
/// \brief Shared machinery of the Table I reproduction benches: size-scaled
///        portfolio budgets, catalog population, and row printing in the
///        paper's format.

#include "benchmarks/suites.hpp"
#include "core/best_selection.hpp"
#include "core/catalog.hpp"
#include "physical_design/portfolio.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "verification/equivalence.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <utility>
#include <vector>

namespace mnt::bench
{

/// Portfolio budgets per benchmark size class. Mirrors how MNT Bench applies
/// exact to tiny functions only, NanoPlaceR to small/medium ones, and the
/// scalable ortho flow everywhere.
inline pd::portfolio_params params_for(const bm::size_class size)
{
    pd::portfolio_params params{};
    switch (size)
    {
        case bm::size_class::tiny:
            params.exact_timeout_s = 3.0;
            params.nanoplacer_iterations = 1500;
            params.input_orderings = 6;
            params.verify = true;
            break;
        case bm::size_class::small:
            params.try_exact = false;
            params.nanoplacer_iterations = 1200;
            params.input_orderings = 6;
            params.verify = true;
            break;
        case bm::size_class::medium:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 3;
            params.plo_max_tiles = 8000;
            params.plo_max_gate_moves = 6000;
            break;
        case bm::size_class::large:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 2;
            params.try_plo = false;
            break;
    }
    return params;
}

/// Runs the portfolio for one benchmark under one library and registers all
/// results — and any failed combinations — in the catalog.
inline void populate(cat::catalog& catalog, const bm::benchmark_entry& entry,
                     const cat::gate_library_kind library)
{
    const auto network = entry.build();
    if (catalog.find_network(entry.set, entry.name) == nullptr)
    {
        catalog.add_network(entry.set, entry.name, network);
    }

    const auto params = params_for(entry.size);
    const auto run = pd::generate_portfolio(network,
                                            library == cat::gate_library_kind::qca_one ?
                                                pd::portfolio_flavor::cartesian :
                                                pd::portfolio_flavor::hexagonal,
                                            params);

    for (const auto& r : run.results)
    {
        cat::layout_record record{};
        record.benchmark_set = entry.set;
        record.benchmark_name = entry.name;
        record.library = library;
        record.clocking = r.clocking;
        record.algorithm = r.algorithm;
        record.optimizations = r.optimizations;
        record.runtime = r.runtime;
        record.layout = r.layout;
        catalog.add_layout(std::move(record));
    }
    for (const auto& o : run.outcomes)
    {
        if (o.is_ok())
        {
            continue;
        }
        cat::failure_record failure{};
        failure.benchmark_set = entry.set;
        failure.benchmark_name = entry.name;
        failure.library = library;
        failure.combination = o.label;
        failure.kind = res::outcome_kind_name(o.kind);
        failure.message = o.message;
        failure.elapsed_s = o.elapsed_s;
        failure.attempts = o.attempts;
        catalog.add_failure(std::move(failure));
        std::fprintf(stderr, "  [failed] %s/%s %s: %s — %.100s\n", entry.set.c_str(), entry.name.c_str(),
                     o.label.c_str(), res::outcome_kind_name(o.kind), o.message.c_str());
    }
}

/// Prints the Table I header for one library half.
inline void print_header(const cat::gate_library_kind library)
{
    std::printf("\n=== Table I — best layouts w.r.t. area, %s gate library ===\n",
                cat::gate_library_name(library).c_str());
    std::printf("%-11s %-14s %9s %6s  %-26s %8s  %-28s %-8s %8s\n", "Set", "Name", "I/O", "N", "w x h = A", "t [s]",
                "Algorithm", "Clk.", "dA");
    std::printf("%.*s\n", 132,
                "-----------------------------------------------------------------------------------------------"
                "-------------------------------------");
}

/// Prints one Table I row.
inline void print_row(const cat::network_record& network, const cat::best_entry& entry)
{
    if (entry.best == nullptr)
    {
        std::printf("%-11s %-14s %9s %6s  %-26s %8s  %-28s %-8s %8s\n", network.benchmark_set.c_str(),
                    network.benchmark_name.c_str(), "-", "-", "(no layout)", "-", "-", "-", "-");
        return;
    }
    const auto io = std::to_string(network.num_pis) + "/" + std::to_string(network.num_pos);
    const auto dims = std::to_string(entry.best->width) + " x " + std::to_string(entry.best->height) + " = " +
                      std::to_string(entry.best->area);
    std::string delta = "n/a";
    if (entry.delta_area_percent.has_value())
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%+.1f%%", *entry.delta_area_percent);
        delta = buffer;
    }
    std::printf("%-11s %-14s %9s %6zu  %-26s %8.2f  %-28s %-8s %8s\n", network.benchmark_set.c_str(),
                network.benchmark_name.c_str(), io.c_str(), network.num_gates, dims.c_str(), entry.best->runtime,
                entry.best->label().c_str(), entry.best->clocking.c_str(), delta.c_str());
}

/// Writes a JSON run report next to the table output when telemetry
/// recording is on (MNT_TELEMETRY=1); a silent no-op otherwise. Construct at
/// the top of a bench's main — the sidecar is written on destruction, after
/// all runs have flushed their instruments.
class telemetry_sidecar
{
public:
    explicit telemetry_sidecar(std::string path) : sidecar_path{std::move(path)} {}

    ~telemetry_sidecar()
    {
        if (!tel::enabled())
        {
            return;
        }
        try
        {
            tel::write_report_json_file(tel::capture_report(), sidecar_path);
            std::fprintf(stderr, "telemetry sidecar: %s\n", sidecar_path.c_str());
        }
        catch (const std::exception& e)
        {
            std::fprintf(stderr, "telemetry sidecar failed: %s\n", e.what());
        }
    }

    telemetry_sidecar(const telemetry_sidecar&) = delete;
    telemetry_sidecar& operator=(const telemetry_sidecar&) = delete;

private:
    std::string sidecar_path;
};

}  // namespace mnt::bench
