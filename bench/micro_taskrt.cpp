/// \file micro_taskrt.cpp
/// \brief Task-runtime microbenchmarks (μ7): executor dispatch overhead,
///        Chase–Lev steal throughput, and the runtime-parallelized algorithm
///        stages (DRC row scan, InOrd ordering sweep, NanoPlaceR chains,
///        exact aspect-ratio race) at 1/2/4/8 compute threads. Run with
///        `--benchmark_out=micro_taskrt.json --benchmark_out_format=json`
///        to produce the artifact tracked in BENCH_pr8.json and by the CI
///        perf-smoke job. On a single-core runner the >1-thread rows
///        measure oversubscription overhead, not speedup — BENCH_pr8.json
///        states which machine produced its numbers.

#include "benchmarks/suites.hpp"
#include "benchmarks/synthetic.hpp"
#include "common/taskrt/deque.hpp"
#include "common/taskrt/taskrt.hpp"
#include "physical_design/exact.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "verification/drc.hpp"

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

namespace
{

using namespace mnt;

bm::synthetic_spec spec_of(const std::size_t gates)
{
    bm::synthetic_spec spec{};
    spec.name = "bench";
    spec.num_pis = 8;
    spec.num_pos = 4;
    spec.num_gates = gates;
    spec.window = 32;
    return spec;
}

/// The thread count is process-global: every benchmark pins it from its
/// Arg(0) on entry and the pool is restarted only when the size changes.
void use_threads(const std::int64_t threads)
{
    trt::set_thread_count(static_cast<std::size_t>(threads));
}

// ------------------------------------------------------------- primitives

/// Dispatch overhead: tasks that do almost nothing, so the per-task cost of
/// submit + steal/pop + join dominates.
void taskrt_dispatch(benchmark::State& state)
{
    use_threads(state.range(0));
    constexpr std::size_t tasks = 1024;
    for (auto _ : state)
    {
        std::atomic<std::uint64_t> sum{0};
        trt::parallel_for(0, tasks, 1,
                          [&](const std::size_t b, const std::size_t e)
                          { sum.fetch_add(e - b, std::memory_order_relaxed); });
        benchmark::DoNotOptimize(sum.load());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(tasks));
}
BENCHMARK(taskrt_dispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

/// CPU-bound parallel_for over real work (integer mixing), the primitive
/// whose scaling every integration inherits.
void taskrt_parallel_for(benchmark::State& state)
{
    use_threads(state.range(0));
    constexpr std::size_t n = 1u << 16;
    for (auto _ : state)
    {
        std::atomic<std::uint64_t> total{0};
        trt::parallel_for(0, n, 256,
                          [&](const std::size_t b, const std::size_t e)
                          {
                              std::uint64_t acc = 0;
                              for (std::size_t i = b; i < e; ++i)
                              {
                                  auto z = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
                                  z ^= z >> 29;
                                  acc += z * 0xbf58476d1ce4e5b9ULL;
                              }
                              total.fetch_add(acc, std::memory_order_relaxed);
                          });
        benchmark::DoNotOptimize(total.load());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(taskrt_parallel_for)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

/// Raw Chase–Lev throughput: one owner pushing/popping, Arg(0)-1 thieves
/// stealing as fast as they can.
void taskrt_steal_throughput(benchmark::State& state)
{
    const auto thieves = static_cast<std::size_t>(state.range(0)) - 1;
    constexpr std::size_t n = 1u << 14;
    std::vector<int> items(n);
    std::iota(items.begin(), items.end(), 0);

    for (auto _ : state)
    {
        trt::chase_lev_deque<int> dq{};
        std::atomic<std::size_t> consumed{0};
        std::atomic<bool> done{false};
        std::vector<std::thread> pool;
        pool.reserve(thieves);
        for (std::size_t t = 0; t < thieves; ++t)
        {
            pool.emplace_back(
                [&]
                {
                    while (!done.load(std::memory_order_acquire))
                    {
                        if (dq.steal() != nullptr)
                        {
                            consumed.fetch_add(1, std::memory_order_relaxed);
                        }
                    }
                });
        }
        for (auto& item : items)
        {
            dq.push(&item);
        }
        while (dq.pop() != nullptr)
        {
            consumed.fetch_add(1, std::memory_order_relaxed);
        }
        while (consumed.load(std::memory_order_relaxed) < n)
        {
            if (dq.pop() != nullptr)
            {
                consumed.fetch_add(1, std::memory_order_relaxed);
            }
        }
        done.store(true, std::memory_order_release);
        for (auto& t : pool)
        {
            t.join();
        }
        benchmark::DoNotOptimize(consumed.load());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(taskrt_steal_throughput)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

// ----------------------------------------------------- algorithm stages

/// The fused row-parallel DRC scan (satellite of PR 8: the layout_drc/256
/// 0.99x regression from BENCH_pr4.json goes green through this path).
void taskrt_drc(benchmark::State& state)
{
    use_threads(state.range(0));
    const auto layout = pd::ortho(bm::synthetic_network(spec_of(256)));
    for (auto _ : state)
    {
        const auto report = ver::gate_level_drc(layout);
        benchmark::DoNotOptimize(report.errors.size());
    }
    state.counters["tiles"] = static_cast<double>(layout.num_occupied());
}
BENCHMARK(taskrt_drc)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// InOrd PI-ordering sweep through parallel_map_reduce.
void taskrt_inord_sweep(benchmark::State& state)
{
    use_threads(state.range(0));
    const auto network = bm::synthetic_network(spec_of(48));
    pd::input_ordering_params params{};
    params.max_orderings = 8;
    for (auto _ : state)
    {
        const auto layout = pd::input_ordering_ortho(network, params);
        benchmark::DoNotOptimize(layout.area());
    }
}
BENCHMARK(taskrt_inord_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// NanoPlaceR multi-chain annealing: 4 chains exchanging every 256 moves.
void taskrt_npr_chains(benchmark::State& state)
{
    use_threads(state.range(0));
    const auto network = bm::synthetic_network(spec_of(24));
    pd::nanoplacer_params params{};
    params.iterations = 1500;
    params.chains = 4;
    params.exchange_period = 256;
    for (auto _ : state)
    {
        const auto layout = pd::nanoplacer(network, params);
        benchmark::DoNotOptimize(layout.has_value());
    }
}
BENCHMARK(taskrt_npr_chains)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// exact's aspect-ratio race through first_winner (a tiny function, so the
/// SAT-style search actually completes instead of burning its soft budget).
void taskrt_exact_race(benchmark::State& state)
{
    use_threads(state.range(0));
    bm::synthetic_spec spec{};
    spec.name = "bench";
    spec.num_pis = 3;
    spec.num_pos = 1;
    spec.num_gates = 3;
    spec.window = 4;
    const auto network = bm::synthetic_network(spec);
    pd::exact_params params{};
    params.timeout_s = 10.0;
    for (auto _ : state)
    {
        pd::exact_stats stats{};
        const auto layout = pd::exact(network, params, &stats);
        benchmark::DoNotOptimize(layout.has_value());
    }
}
BENCHMARK(taskrt_exact_race)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
