/// \file micro_algorithms.cpp
/// \brief Engineering microbenchmarks (μ1–μ3): ortho scaling over network
///        size (with the fanout-substitution ablation), router throughput
///        (generic BFS vs the monotone shortcut baked into ortho), and
///        hexagonalization/PLO passes. Not part of the paper's evaluation;
///        tracked to keep the reproduction's algorithms honest.

#include "benchmarks/synthetic.hpp"
#include "layout/routing.hpp"
#include "network/transforms.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"

#include <benchmark/benchmark.h>

namespace
{

using namespace mnt;

bm::synthetic_spec spec_of(const std::size_t gates)
{
    bm::synthetic_spec spec{};
    spec.name = "bench";
    spec.num_pis = 8;
    spec.num_pos = 4;
    spec.num_gates = gates;
    spec.window = 32;
    return spec;
}

void ortho_scaling(benchmark::State& state)
{
    const auto network = bm::synthetic_network(spec_of(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state)
    {
        auto layout = pd::ortho(network);
        benchmark::DoNotOptimize(layout.area());
    }
    state.counters["area"] = static_cast<double>(pd::ortho(network).area());
}
BENCHMARK(ortho_scaling)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond)->Iterations(3);

void fanout_substitution(benchmark::State& state)
{
    const auto network = bm::synthetic_network(spec_of(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state)
    {
        auto substituted = ntk::substitute_fanouts(network);
        benchmark::DoNotOptimize(substituted.size());
    }
}
BENCHMARK(fanout_substitution)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond)->Iterations(5);

void router_bfs(benchmark::State& state)
{
    // route across an empty 64x64 grid, corner to corner
    for (auto _ : state)
    {
        lyt::gate_level_layout layout{"r", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 64,
                                      64};
        layout.place({0, 0}, ntk::gate_type::pi, "a");
        layout.place({63, 63}, ntk::gate_type::po, "y");
        benchmark::DoNotOptimize(lyt::route(layout, {0, 0}, {63, 63}));
    }
}
BENCHMARK(router_bfs)->Unit(benchmark::kMillisecond)->Iterations(20);

void router_use_snake(benchmark::State& state)
{
    for (auto _ : state)
    {
        lyt::gate_level_layout layout{"r", lyt::layout_topology::cartesian, lyt::clocking_scheme::use(), 32, 32};
        layout.place({0, 0}, ntk::gate_type::pi, "a");
        layout.place({31, 31}, ntk::gate_type::po, "y");
        benchmark::DoNotOptimize(lyt::route(layout, {0, 0}, {31, 31}));
    }
}
BENCHMARK(router_use_snake)->Unit(benchmark::kMillisecond)->Iterations(20);

void hexagonalization_pass(benchmark::State& state)
{
    const auto cartesian = pd::ortho(bm::synthetic_network(spec_of(256)));
    for (auto _ : state)
    {
        auto hex = pd::hexagonalization(cartesian);
        benchmark::DoNotOptimize(hex.area());
    }
}
BENCHMARK(hexagonalization_pass)->Unit(benchmark::kMillisecond)->Iterations(5);

void plo_pass(benchmark::State& state)
{
    const auto layout = pd::ortho(bm::synthetic_network(spec_of(64)));
    for (auto _ : state)
    {
        pd::plo_params params{};
        params.max_passes = 2;
        params.max_gate_moves = 500;
        auto optimized = pd::post_layout_optimization(layout, params);
        benchmark::DoNotOptimize(optimized.area());
    }
    pd::plo_params params{};
    auto optimized = pd::post_layout_optimization(layout, params);
    state.counters["area_before"] = static_cast<double>(layout.area());
    state.counters["area_after"] = static_cast<double>(optimized.area());
}
BENCHMARK(plo_pass)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
