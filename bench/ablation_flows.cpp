/// \file ablation_flows.cpp
/// \brief Ablation studies for the design choices called out in
///        DESIGN.md §7: how much do input ordering, post-layout
///        optimization, ortho's greedy orientation, and wire crossings each
///        contribute? Run on a deterministic mid-size workload so numbers
///        are comparable across revisions.

#include "benchmarks/functions.hpp"
#include "benchmarks/synthetic.hpp"
#include "layout/routing.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "verification/equivalence.hpp"

#include <cstdio>

namespace
{

using namespace mnt;

ntk::logic_network workload()
{
    bm::synthetic_spec spec{};
    spec.name = "ablation";
    spec.num_pis = 10;
    spec.num_pos = 6;
    spec.num_gates = 120;
    spec.window = 24;
    return bm::synthetic_network(spec);
}

void check(const ntk::logic_network& network, const lyt::gate_level_layout& layout, const char* label)
{
    if (!ver::check_layout_equivalence(network, layout))
    {
        std::printf("!! %s produced a non-equivalent layout\n", label);
    }
}

}  // namespace

int main()
{
    using namespace mnt;
    const auto network = workload();
    std::printf("=== Flow ablations (workload: %zu gates, %zu PIs, %zu POs) ===\n\n", network.num_gates(),
                network.num_pis(), network.num_pos());

    // --- ortho greedy orientation on/off -------------------------------
    {
        pd::ortho_params greedy{};
        pd::ortho_params naive{};
        naive.greedy_orientation = false;
        const auto a = pd::ortho(network, greedy);
        const auto b = pd::ortho(network, naive);
        check(network, a, "ortho(greedy)");
        check(network, b, "ortho(naive)");
        std::printf("ortho orientation     greedy: %8lu tiles / %zu wires   naive: %8lu tiles / %zu wires\n",
                    static_cast<unsigned long>(a.area()), a.num_wires(), static_cast<unsigned long>(b.area()),
                    b.num_wires());
    }

    // --- InOrd ordering-count sweep -------------------------------------
    {
        std::printf("\nInOrd orderings sweep (area after ortho):\n");
        for (const std::size_t k : {1u, 2u, 4u, 8u, 16u})
        {
            pd::input_ordering_params params{};
            params.max_orderings = k;
            pd::input_ordering_stats stats{};
            const auto layout = pd::input_ordering_ortho(network, params, &stats);
            check(network, layout, "InOrd");
            std::printf("  k=%2zu: best %8lu tiles (worst seen %8lu)\n", k,
                        static_cast<unsigned long>(stats.best_area), static_cast<unsigned long>(stats.worst_area));
        }
    }

    // --- PLO pass-count sweep --------------------------------------------
    {
        std::printf("\nPLO passes sweep (starting from plain ortho):\n");
        const auto base = pd::ortho(network);
        for (const std::size_t passes : {0u, 1u, 2u, 4u, 8u})
        {
            pd::plo_params params{};
            params.max_passes = passes;
            pd::plo_stats stats{};
            const auto layout = pd::post_layout_optimization(base, params, &stats);
            check(network, layout, "PLO");
            std::printf("  passes=%zu: %8lu -> %8lu tiles, %5zu -> %5zu wires, %zu moves\n", passes,
                        static_cast<unsigned long>(stats.area_before), static_cast<unsigned long>(stats.area_after),
                        stats.wires_before, stats.wires_after, stats.accepted_moves);
        }
    }

    // --- crossings on/off for the router --------------------------------
    {
        std::printf("\nrouter crossings ablation (100 random nets on a 48x48 2DDWave grid):\n");
        for (const bool crossings : {true, false})
        {
            lyt::gate_level_layout layout{"x", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(),
                                          48, 48};
            lyt::routing_options options{};
            options.allow_crossings = crossings;
            std::size_t routed = 0;
            std::uint64_t seed = 7;
            for (int i = 0; i < 100; ++i)
            {
                seed = seed * 6364136223846793005ull + 1442695040888963407ull;
                const auto sx = static_cast<std::int32_t>((seed >> 8) % 24);
                const auto sy = static_cast<std::int32_t>((seed >> 16) % 24);
                const auto tx = sx + 1 + static_cast<std::int32_t>((seed >> 24) % 23);
                const auto ty = sy + 1 + static_cast<std::int32_t>((seed >> 32) % 23);
                const lyt::coordinate src{sx, sy};
                const lyt::coordinate dst{tx, ty};
                if (!layout.is_empty_tile(src) || !layout.is_empty_tile(dst))
                {
                    continue;
                }
                layout.place(src, ntk::gate_type::pi, "p" + std::to_string(i));
                layout.place(dst, ntk::gate_type::po, "o" + std::to_string(i));
                if (lyt::route(layout, src, dst, options))
                {
                    ++routed;
                }
                else
                {
                    layout.clear_tile(src);
                    layout.clear_tile(dst);
                }
            }
            std::printf("  crossings=%s: %zu/100 nets routed, %zu crossings used\n", crossings ? "on " : "off",
                        routed, layout.num_crossings());
        }
    }

    std::printf("\ndone\n");
    return 0;
}
