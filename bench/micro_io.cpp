/// \file micro_io.cpp
/// \brief Engineering microbenchmarks (μ4–μ5): .fgl round-trip and Verilog
///        parsing throughput, bit-parallel simulation, and catalog filter
///        latency.

#include "benchmarks/synthetic.hpp"
#include "core/catalog.hpp"
#include "core/filters.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "network/simulation.hpp"
#include "physical_design/ortho.hpp"

#include <benchmark/benchmark.h>

namespace
{

using namespace mnt;

ntk::logic_network medium_network()
{
    bm::synthetic_spec spec{};
    spec.num_pis = 12;
    spec.num_pos = 6;
    spec.num_gates = 512;
    spec.window = 32;
    return bm::synthetic_network(spec);
}

void fgl_round_trip(benchmark::State& state)
{
    const auto layout = pd::ortho(medium_network());
    for (auto _ : state)
    {
        const auto text = io::write_fgl_string(layout);
        auto reread = io::read_fgl_string(text);
        benchmark::DoNotOptimize(reread.num_occupied());
    }
    state.counters["tiles"] = static_cast<double>(layout.num_occupied());
}
BENCHMARK(fgl_round_trip)->Unit(benchmark::kMillisecond)->Iterations(5);

void verilog_round_trip(benchmark::State& state)
{
    const auto network = medium_network();
    for (auto _ : state)
    {
        const auto text = io::write_verilog_string(network);
        auto reread = io::read_verilog_string(text);
        benchmark::DoNotOptimize(reread.size());
    }
}
BENCHMARK(verilog_round_trip)->Unit(benchmark::kMillisecond)->Iterations(10);

void word_simulation(benchmark::State& state)
{
    const auto network = medium_network();
    const std::vector<std::uint64_t> words(network.num_pis(), 0xdeadbeefcafebabeull);
    for (auto _ : state)
    {
        auto out = ntk::simulate_word(network, words);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(word_simulation)->Unit(benchmark::kMicrosecond)->Iterations(200);

void catalog_filtering(benchmark::State& state)
{
    cat::catalog catalog;
    const auto layout = pd::ortho(medium_network());
    for (int i = 0; i < 200; ++i)
    {
        cat::layout_record record{};
        record.benchmark_set = i % 2 == 0 ? "A" : "B";
        record.benchmark_name = "f" + std::to_string(i % 10);
        record.library = i % 3 == 0 ? cat::gate_library_kind::bestagon : cat::gate_library_kind::qca_one;
        record.clocking = i % 4 == 0 ? "USE" : "2DDWave";
        record.algorithm = i % 5 == 0 ? "exact" : "ortho";
        if (i % 7 == 0)
        {
            record.optimizations = {"PLO"};
        }
        record.layout = layout;
        catalog.add_layout(std::move(record));
    }

    cat::filter_query query{};
    query.clockings = {"2DDWave"};
    query.algorithms = {"ortho"};
    query.best_only = true;
    for (auto _ : state)
    {
        auto selection = cat::apply_filter(catalog, query);
        benchmark::DoNotOptimize(selection.size());
    }
}
BENCHMARK(catalog_filtering)->Unit(benchmark::kMicrosecond)->Iterations(500);

}  // namespace

BENCHMARK_MAIN();
