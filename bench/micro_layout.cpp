/// \file micro_layout.cpp
/// \brief Storage microbenchmarks (μ6): construct/traverse/route/verify
///        workloads that exercise `gate_level_layout`'s tile storage — the
///        single hottest data structure of the reproduction — at realistic
///        Table I sizes, plus an end-to-end portfolio stage per benchmark
///        set. Run with `--benchmark_out=micro_layout.json
///        --benchmark_out_format=json` to produce the artifact tracked in
///        BENCH_pr4.json and by the CI perf-smoke job.

#include "benchmarks/suites.hpp"
#include "benchmarks/synthetic.hpp"
#include "layout/gate_level_layout.hpp"
#include "layout/routing.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/portfolio.hpp"
#include "verification/drc.hpp"
#include "verification/wave_simulation.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

namespace
{

using namespace mnt;
using lyt::coordinate;
using lyt::gate_level_layout;

bm::synthetic_spec spec_of(const std::size_t gates)
{
    bm::synthetic_spec spec{};
    spec.name = "bench";
    spec.num_pis = 8;
    spec.num_pos = 4;
    spec.num_gates = gates;
    spec.window = 32;
    return spec;
}

/// Fills a side x side 2DDWave grid with a serpentine wire snake:
/// PI -> buf -> ... -> PO, alternating east/west rows joined by south steps.
/// Every tile is placed and connected — the densest construction workload a
/// layout of that area can see.
gate_level_layout serpentine(const std::int32_t side)
{
    gate_level_layout layout{"serp", lyt::layout_topology::cartesian, lyt::clocking_scheme::use(),
                             static_cast<std::uint32_t>(side), static_cast<std::uint32_t>(side)};
    coordinate prev{0, 0};
    layout.place(prev, ntk::gate_type::pi, "a");
    for (std::int32_t y = 0; y < side; ++y)
    {
        const bool eastward = (y % 2) == 0;
        for (std::int32_t step = (y == 0 ? 1 : 0); step < side; ++step)
        {
            const auto x = eastward ? step : side - 1 - step;
            const coordinate c{x, y};
            const bool last = (y == side - 1) && (step == side - 1);
            layout.place(c, last ? ntk::gate_type::po : ntk::gate_type::buf, last ? "y" : "");
            layout.connect(prev, c);
            prev = c;
        }
    }
    return layout;
}

// --------------------------------------------------------------- construct

void layout_construct(benchmark::State& state)
{
    const auto side = static_cast<std::int32_t>(state.range(0));
    for (auto _ : state)
    {
        auto layout = serpentine(side);
        benchmark::DoNotOptimize(layout.num_occupied());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(layout_construct)->Arg(16)->Arg(48)->Arg(96)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------- traverse

/// The DRC/writer access pattern: full foreach_tile sweep touching incoming
/// lists, outgoing degrees and clock zones, plus a deterministic
/// tiles_sorted pass.
void layout_traverse(benchmark::State& state)
{
    const auto layout = serpentine(static_cast<std::int32_t>(state.range(0)));
    for (auto _ : state)
    {
        std::uint64_t acc = 0;
        layout.foreach_tile(
            [&](const coordinate& c, const gate_level_layout::tile_data& d)
            {
                acc += static_cast<std::uint64_t>(d.incoming.size());
                acc += layout.outgoing_of(c).size();
                acc += layout.clock_number(c);
            });
        for (const auto& c : layout.tiles_sorted())
        {
            acc += static_cast<std::uint64_t>(c.x) + static_cast<std::uint64_t>(c.y);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(layout_traverse)->Arg(16)->Arg(48)->Arg(96)->Unit(benchmark::kMicrosecond);

/// Random-access probe pattern of the router/annealer: type_of /
/// is_empty_tile / outgoing_of over the whole grid including empty tiles.
void layout_probe(benchmark::State& state)
{
    const auto side = static_cast<std::int32_t>(state.range(0));
    auto layout = serpentine(side);
    // punch some holes so both occupied and empty probes occur
    for (std::int32_t y = 1; y < side; y += 3)
    {
        for (std::int32_t x = 1; x < side; x += 3)
        {
            layout.clear_tile({x, y});
        }
    }
    for (auto _ : state)
    {
        std::uint64_t acc = 0;
        for (std::int32_t y = 0; y < side; ++y)
        {
            for (std::int32_t x = 0; x < side; ++x)
            {
                const coordinate c{x, y};
                acc += static_cast<std::uint64_t>(layout.type_of(c));
                acc += layout.is_empty_tile(c.elevated()) ? 1u : 0u;
                acc += layout.outgoing_of(c).size();
            }
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(layout_probe)->Arg(16)->Arg(48)->Arg(96)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------- route

/// Route/rip cycles across a partially filled grid: the annealing placer's
/// inner loop (find_path + establish_path + rip_up_path).
void layout_route_rip(benchmark::State& state)
{
    const auto side = static_cast<std::int32_t>(state.range(0));
    for (auto _ : state)
    {
        gate_level_layout layout{"r", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(),
                                 static_cast<std::uint32_t>(side), static_cast<std::uint32_t>(side)};
        layout.place({0, 0}, ntk::gate_type::pi, "a");
        layout.place({side - 1, side - 1}, ntk::gate_type::po, "y");
        for (int repeat = 0; repeat < 8; ++repeat)
        {
            benchmark::DoNotOptimize(lyt::route(layout, {0, 0}, {side - 1, side - 1}));
            lyt::rip_up_path(layout, {0, 0}, {side - 1, side - 1});
        }
    }
}
BENCHMARK(layout_route_rip)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// ----------------------------------------------------------- verification

void layout_drc(benchmark::State& state)
{
    const auto layout = pd::ortho(bm::synthetic_network(spec_of(static_cast<std::size_t>(state.range(0)))));
    for (auto _ : state)
    {
        const auto report = ver::gate_level_drc(layout);
        benchmark::DoNotOptimize(report.errors.size());
    }
    state.counters["tiles"] = static_cast<double>(layout.num_occupied());
}
BENCHMARK(layout_drc)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void layout_wave(benchmark::State& state)
{
    const auto layout = pd::ortho(bm::synthetic_network(spec_of(static_cast<std::size_t>(state.range(0)))));
    const std::vector<std::uint64_t> words(layout.num_pis(), 0xA5A5A5A5A5A5A5A5ull);
    for (auto _ : state)
    {
        const auto result = ver::wave_simulate(layout, words);
        benchmark::DoNotOptimize(result.settle_ticks);
    }
    state.counters["tiles"] = static_cast<double>(layout.num_occupied());
}
BENCHMARK(layout_wave)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- end-to-end (Table I)

/// Full portfolio wall clock over a benchmark set. Exact is disabled (its
/// runtime is solver-search-bound and capped by timeouts, which only adds
/// noise); NPR/ortho/InOrd/PLO with verification exercise every storage
/// path: construction, routing, net surgery, DRC, equivalence and wave
/// simulation.
void run_set(benchmark::State& state, const std::vector<bm::benchmark_entry>& entries)
{
    pd::portfolio_params params{};
    params.try_exact = false;
    params.verify = true;
    for (auto _ : state)
    {
        std::size_t layouts = 0;
        for (const auto& entry : entries)
        {
            const auto network = entry.build();
            layouts += pd::generate_portfolio(network, pd::portfolio_flavor::cartesian, params).results.size();
            layouts += pd::generate_portfolio(network, pd::portfolio_flavor::hexagonal, params).results.size();
        }
        benchmark::DoNotOptimize(layouts);
        state.counters["layouts"] = static_cast<double>(layouts);
    }
}

void portfolio_trindade16(benchmark::State& state)
{
    run_set(state, bm::trindade16());
}
BENCHMARK(portfolio_trindade16)->Unit(benchmark::kMillisecond)->Iterations(1);

void portfolio_fontes18(benchmark::State& state)
{
    run_set(state, bm::fontes18());
}
BENCHMARK(portfolio_fontes18)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
