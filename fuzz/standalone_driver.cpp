/// \file standalone_driver.cpp
/// \brief Fallback driver for toolchains without libFuzzer
///        (-fsanitize=fuzzer is clang-only): replays every file given on
///        the command line — directories are walked recursively — and,
///        when MNT_FUZZ_SECONDS is set, keeps feeding mutated corpus
///        entries to the target until the time budget expires. Mutations
///        use a fixed-seed splitmix64 stream, so a run is reproducible.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace
{

std::uint64_t rng_state = 0x9e3779b97f4a7c15ULL;

std::uint64_t next_random()
{
    std::uint64_t z = (rng_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
}

void run_one(const std::string& bytes)
{
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

std::string mutate(std::string bytes)
{
    const auto mutations = 1 + next_random() % 8;
    for (std::uint64_t m = 0; m < mutations; ++m)
    {
        switch (next_random() % 5)
        {
            case 0:  // flip a byte
                if (!bytes.empty())
                {
                    bytes[next_random() % bytes.size()] = static_cast<char>(next_random());
                }
                break;
            case 1:  // insert a byte
                bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(next_random() % (bytes.size() + 1)),
                             static_cast<char>(next_random()));
                break;
            case 2:  // delete a byte
                if (!bytes.empty())
                {
                    bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(next_random() % bytes.size()));
                }
                break;
            case 3:  // truncate
                if (!bytes.empty())
                {
                    bytes.resize(next_random() % bytes.size());
                }
                break;
            default:  // duplicate a chunk
                if (!bytes.empty())
                {
                    const auto from = next_random() % bytes.size();
                    const auto len = next_random() % (bytes.size() - from) + 1;
                    bytes.insert(next_random() % (bytes.size() + 1), bytes, from, len);
                }
                break;
        }
    }
    return bytes;
}

}  // namespace

int main(int argc, char** argv)
{
    std::vector<std::string> corpus;
    for (int i = 1; i < argc; ++i)
    {
        const std::filesystem::path arg{argv[i]};
        std::vector<std::filesystem::path> files;
        if (std::filesystem::is_directory(arg))
        {
            for (const auto& entry : std::filesystem::recursive_directory_iterator{arg})
            {
                if (entry.is_regular_file())
                {
                    files.push_back(entry.path());
                }
            }
        }
        else
        {
            files.push_back(arg);
        }
        for (const auto& file : files)
        {
            std::ifstream in{file, std::ios::binary};
            std::ostringstream out;
            out << in.rdbuf();
            corpus.push_back(out.str());
        }
    }

    for (const auto& bytes : corpus)
    {
        run_one(bytes);
    }
    std::fprintf(stderr, "replayed %zu corpus entries\n", corpus.size());

    const char* budget = std::getenv("MNT_FUZZ_SECONDS");
    const auto seconds = budget != nullptr ? std::strtoul(budget, nullptr, 10) : 0UL;
    if (seconds == 0 || corpus.empty())
    {
        return 0;
    }
    if (const char* seed = std::getenv("MNT_FUZZ_SEED"); seed != nullptr)
    {
        rng_state = std::strtoull(seed, nullptr, 0);
    }

    std::size_t executions = 0;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{seconds};
    while (std::chrono::steady_clock::now() < deadline)
    {
        run_one(mutate(corpus[next_random() % corpus.size()]));
        ++executions;
    }
    std::fprintf(stderr, "mutated %zu inputs in %lus\n", executions, seconds);
    return 0;
}
