/// \file fuzz_http_request.cpp
/// \brief Fuzz target for the HTTP/1.1 request parser and router: every
///        byte stream must be classified (ok/incomplete/malformed/
///        too_large) without crashing, and classified-ok requests must be
///        answered without a 5xx. Runs against an in-process
///        catalog_server over a tiny deterministic catalog — no sockets.

#include "core/catalog.hpp"
#include "physical_design/ortho.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace
{

mnt::svc::catalog_server& fixture_server()
{
    static mnt::cat::catalog catalog = []
    {
        mnt::cat::catalog built{};
        mnt::pbt::rng random{1};
        mnt::cat::layout_record record{};
        record.benchmark_set = "Fuzz";
        record.benchmark_name = "f0";
        record.clocking = "2DDWave";
        record.algorithm = "ortho";
        record.layout = mnt::pd::ortho(mnt::pbt::random_network(random));
        built.add_layout(std::move(record));
        return built;
    }();
    static const mnt::svc::query_engine engine{catalog};
    static mnt::svc::catalog_server server{engine};
    return server;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    if (size > (1U << 16U))
    {
        return 0;  // larger streams only stress the size guard
    }
    const std::string bytes{reinterpret_cast<const char*>(data), size};
    const auto result = mnt::pbt::check_http_byte_stream(fixture_server(), bytes);
    if (!result.passed)
    {
        std::fprintf(stderr, "http oracle violation: %s\n", result.reason.c_str());
        std::abort();
    }
    return 0;
}
