/// \file fuzz_verilog_reader.cpp
/// \brief Differential fuzz target for the Verilog reader: inputs must be
///        rejected with a typed error or produce a network that survives
///        both round-trips — structural for the primitives style,
///        functional (equivalence-checked) for the assignments style.

#include "testing/oracles.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    if (size > (1U << 16U))
    {
        return 0;  // keep per-input cost bounded; size is not the target
    }
    const std::string document{reinterpret_cast<const char*>(data), size};
    const auto result = mnt::pbt::check_verilog_document(document);
    if (!result.passed)
    {
        std::fprintf(stderr, "verilog oracle violation: %s\n", result.reason.c_str());
        std::abort();
    }
    return 0;
}
