/// \file fuzz_family_params.cpp
/// \brief Fuzz target for the synthetic-family generator: arbitrary bytes are
///        decoded into a (clamped) family parameter block, one function of
///        the family is generated, and the result must uphold the full
///        pipeline contract — a structurally valid network whose ortho layout
///        is DRC-clean and equivalent under both graph extraction and wave
///        simulation. The id/manifest invariants are checked on the way:
///        the family id must be stable and parameter-sensitive.

#include "benchmarks/families.hpp"
#include "physical_design/ortho.hpp"
#include "testing/oracles.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace
{

/// Sequential little-endian field reader over the fuzz input; missing bytes
/// read as zero so short inputs are still valid parameter blocks.
struct field_reader
{
    const std::uint8_t* data;
    std::size_t size;
    std::size_t offset{0};

    std::uint64_t u64()
    {
        std::uint64_t value = 0;
        for (std::size_t byte = 0; byte < 8; ++byte)
        {
            const auto index = offset + byte;
            value |= static_cast<std::uint64_t>(index < size ? data[index] : 0) << (8 * byte);
        }
        offset += 8;
        return value;
    }

    std::uint8_t u8()
    {
        const auto value = offset < size ? data[offset] : std::uint8_t{0};
        offset += 1;
        return value;
    }
};

/// Decodes a clamped family spec from the input block. Every decoded spec is
/// within the generator's documented domain — the target probes generator
/// robustness over the whole parameter space, not precondition violations.
mnt::bm::family_spec decode_spec(const std::uint8_t* data, const std::size_t size)
{
    field_reader in{data, size};
    mnt::bm::family_spec spec{};
    spec.seed = in.u64();
    spec.name = "fuzz-" + std::to_string(in.u8() % 16u);
    spec.count = 1 + in.u8() % 8u;  // generation below touches index 0 only
    spec.shape.min_pis = 1 + in.u8() % 6u;
    spec.shape.max_pis = spec.shape.min_pis + in.u8() % 6u;
    spec.shape.min_pos = 1 + in.u8() % 3u;
    spec.shape.max_pos = spec.shape.min_pos + in.u8() % 3u;
    spec.shape.min_gates = 1 + in.u8() % 12u;
    spec.shape.max_gates = spec.shape.min_gates + in.u8() % 24u;
    spec.shape.window = in.u8() % 24u;
    spec.shape.chain_percent = in.u8() % 101u;
    spec.shape.allow_maj = (in.u8() & 1u) != 0;
    spec.shape.allow_xor = (in.u8() & 1u) != 0;
    return spec;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    const auto spec = decode_spec(data, size);

    // id stability and parameter sensitivity
    const auto id = mnt::bm::family_id(spec);
    if (id != mnt::bm::family_id(spec) || id.size() != 32)
    {
        std::fprintf(stderr, "family id is unstable or malformed: %s\n", id.c_str());
        std::abort();
    }
    auto reseeded = spec;
    reseeded.seed ^= 0x8000000000000001ull;
    if (mnt::bm::family_id(reseeded) == id)
    {
        std::fprintf(stderr, "family id ignores the seed\n");
        std::abort();
    }

    // the generated function is deterministic and structurally valid
    const auto network = mnt::bm::family_network(spec, 0);
    const auto again = mnt::bm::family_network(spec, 0);
    if (network.num_pis() != again.num_pis() || network.num_gates() != again.num_gates())
    {
        std::fprintf(stderr, "family function 0 is not deterministic\n");
        std::abort();
    }
    if (network.num_pis() < spec.shape.min_pis || network.num_pis() > spec.shape.max_pis)
    {
        std::fprintf(stderr, "PI count %zu escapes spec [%zu, %zu]\n", network.num_pis(), spec.shape.min_pis,
                     spec.shape.max_pis);
        std::abort();
    }

    // the full layout contract on the ortho layout (the cheapest algorithm
    // that accepts every non-constant network)
    if (mnt::pbt::has_constant_po(network))
    {
        return 0;  // documented precondition of the physical design tools
    }
    const auto layout = mnt::pd::ortho(network);
    const auto contract = mnt::pbt::check_layout_contract(network, layout);
    if (!contract.passed)
    {
        std::fprintf(stderr, "layout contract violation (family %s, seed 0x%llx): %s\n", id.c_str(),
                     static_cast<unsigned long long>(spec.seed), contract.reason.c_str());
        std::abort();
    }
    return 0;
}
