/// \file fuzz_fgl_reader.cpp
/// \brief Differential fuzz target for the .fgl reader: every input must
///        either be rejected with a typed error or parse into a layout
///        whose write→read→write cycle reaches a byte fixpoint (the same
///        oracle the property suite uses). Anything else — a crash, a
///        foreign exception, an accepted-but-unstable document — aborts.

#include "testing/oracles.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    if (size > (1U << 16U))
    {
        return 0;  // keep per-input cost bounded; size is not the target
    }
    const std::string document{reinterpret_cast<const char*>(data), size};
    const auto result = mnt::pbt::check_fgl_document(document);
    if (!result.passed)
    {
        std::fprintf(stderr, "fgl oracle violation: %s\n", result.reason.c_str());
        std::abort();
    }
    return 0;
}
