module m(y);
output y;
assign y = y;
endmodule
