module m(a, y);
input a;
output y;
assign y = ~(a;
endmodule
