module m(a, b, y);
input a, b;
output y;
assign y = a;
assign y = b;
endmodule
