// shrunk by io.verilog.hostile: 'y2' is declared output twice, so the
// reader produced two POs named y2 and the writer emitted a document
// that re-reading rejected ("driven multiple times"). The reader must
// reject the duplicate port declaration up front.
module p();input x,x2;output y2;output y2;wire n;assign n=0;assign n7=1;assign y=n;assign y1=x;assign y2=x;endmodule
