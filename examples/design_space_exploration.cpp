/// \file design_space_exploration.cpp
/// \brief Runs the full MNT Bench tool portfolio (exact, NanoPlaceR
///        substitute, ortho with InOrd/PLO/45°) on one function across both
///        gate libraries and all clocking schemes — the workload the paper's
///        website automates per benchmark, shown here end to end. The
///        output demonstrates the paper's core message: the best tool
///        combination differs per function and beats any fixed flow.

#include "benchmarks/functions.hpp"
#include "gate_library/bestagon.hpp"
#include "gate_library/qca_one.hpp"
#include "physical_design/portfolio.hpp"
#include "verification/equivalence.hpp"

#include <cstdio>

int main()
{
    using namespace mnt;

    const auto network = bm::one_bit_adder_maj();
    std::printf("design space of '%s' (%zu inputs, %zu outputs, %zu gates)\n\n", network.network_name().c_str(),
                network.num_pis(), network.num_pos(), network.num_gates());

    pd::portfolio_params params{};
    params.verify = true;  // every layout is checked against the network
    params.exact_timeout_s = 3.0;

    std::printf("%-10s %-30s %-8s %14s %8s\n", "Library", "Flow", "Clk.", "w x h = A", "t [s]");
    std::printf("-------------------------------------------------------------------------------\n");

    const auto report = [](const char* library, const std::vector<pd::layout_result>& results)
    {
        for (const auto& r : results)
        {
            const auto dims = std::to_string(r.layout.width()) + " x " + std::to_string(r.layout.height()) +
                              " = " + std::to_string(r.layout.area());
            std::printf("%-10s %-30s %-8s %14s %8.2f\n", library, r.label().c_str(), r.clocking.c_str(),
                        dims.c_str(), r.runtime);
        }
        if (const auto* best = pd::best_by_area(results); best != nullptr)
        {
            std::printf("%-10s BEST: %s on %s with %lu tiles\n\n", library, best->label().c_str(),
                        best->clocking.c_str(), static_cast<unsigned long>(best->layout.area()));
        }
    };

    const auto cartesian = pd::run_cartesian_portfolio(network, params);
    report("QCA ONE", cartesian);

    const auto hexagonal = pd::run_hexagonal_portfolio(network, params);
    report("Bestagon", hexagonal);

    // cell-level handoff for the winners
    if (const auto* best_hex = pd::best_by_area(hexagonal); best_hex != nullptr)
    {
        const auto cells = gl::apply_bestagon(best_hex->layout);
        std::printf("Bestagon cell level: %zu dots, approx. %.0f nm^2\n", cells.num_cells(),
                    gl::bestagon_physical_area_nm2(cells));
    }

    return 0;
}
