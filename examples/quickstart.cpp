/// \file quickstart.cpp
/// \brief MNT Bench quickstart: parse a Verilog network, run physical
///        design, inspect the layout, verify it, and write the .fgl file —
///        the end-to-end path a new user takes first.

#include "io/ascii_printer.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_reader.hpp"
#include "layout/layout_utils.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <cstdio>
#include <iostream>

int main()
{
    using namespace mnt;

    // 1. a benchmark function at the "Network (.v)" abstraction level
    const auto network = io::read_verilog_string(R"(
        module mux21( s, a, b, y );
          input s, a, b;
          output y;
          assign y = (~s & a) | (s & b);
        endmodule
    )");
    std::printf("network '%s': %zu inputs, %zu outputs, %zu gates\n", network.network_name().c_str(),
                network.num_pis(), network.num_pos(), network.num_gates());

    // 2. scalable physical design (ortho) on a 2DDWave-clocked grid
    const auto layout = pd::ortho(network);
    std::printf("\northo layout: %u x %u = %lu tiles\n", layout.width(), layout.height(),
                static_cast<unsigned long>(layout.area()));
    io::print_layout(layout, std::cout);

    // 3. post-layout optimization shrinks it
    const auto optimized = pd::post_layout_optimization(layout);
    std::printf("\nafter PLO: %u x %u = %lu tiles\n", optimized.width(), optimized.height(),
                static_cast<unsigned long>(optimized.area()));
    io::print_layout(optimized, std::cout);

    // 4. never skip verification
    const auto drc = ver::gate_level_drc(optimized);
    const auto equivalence = ver::check_layout_equivalence(network, optimized);
    std::printf("\nDRC: %s (%zu warnings) — equivalence: %s (%s)\n", drc.passed() ? "clean" : "VIOLATED",
                drc.warnings.size(), equivalence ? "holds" : "BROKEN",
                equivalence.formal ? "formally proven" : "random vectors");

    // 5. ship it as the standardized .fgl gate-level format
    const auto fgl = io::write_fgl_string(optimized);
    std::printf("\n.fgl document (%zu bytes), first lines:\n", fgl.size());
    std::printf("%.*s...\n", 200, fgl.c_str());

    return drc.passed() && equivalence ? 0 : 1;
}
