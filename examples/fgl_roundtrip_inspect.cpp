/// \file fgl_roundtrip_inspect.cpp
/// \brief Demonstrates the .fgl file format (the paper's contribution #4):
///        generates a layout with a wire crossing, serializes it, prints the
///        human-readable document, reads it back with the validating reader,
///        and shows that structure and function survive the round trip.

#include "io/ascii_printer.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "layout/layout_utils.hpp"
#include "layout/routing.hpp"
#include "verification/equivalence.hpp"

#include <cstdio>
#include <iostream>

int main()
{
    using namespace mnt;
    using ntk::gate_type;

    // two independent signals crossing at (2, 2)
    lyt::gate_level_layout layout{"crossing_demo", lyt::layout_topology::cartesian,
                                  lyt::clocking_scheme::twoddwave(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "v_out");
    lyt::route(layout, {2, 0}, {2, 4});
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "h_out");
    lyt::route(layout, {0, 2}, {4, 2});

    std::printf("layout with %zu crossing(s):\n", layout.num_crossings());
    io::print_layout(layout, std::cout);

    const auto document = io::write_fgl_string(layout);
    std::printf("\n--- .fgl document -------------------------------------------\n%s", document.c_str());
    std::printf("--------------------------------------------------------------\n\n");

    // validating read-back (with full design rule checking)
    io::fgl_reader_options options{};
    options.run_drc = true;
    const auto reread = io::read_fgl_string(document, options);

    const auto equivalence = ver::check_layout_equivalence(lyt::extract_network(layout), reread);
    std::printf("round trip: %zu tiles -> %zu tiles, function %s\n", layout.num_occupied(),
                reread.num_occupied(), equivalence ? "preserved" : "BROKEN");

    // error handling: the reader rejects corrupted documents with precise messages
    try
    {
        static_cast<void>(io::read_fgl_string("<fgl><layout><name>x</name></layout></fgl>"));
    }
    catch (const mnt_error& e)
    {
        std::printf("reader rejects malformed input: %s\n", e.what());
    }

    return equivalence ? 0 : 1;
}
