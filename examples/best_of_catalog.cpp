/// \file best_of_catalog.cpp
/// \brief Uses the MNT Bench catalog like the website: populate it with
///        layouts for the Trindade16 set, filter by facets, pick the best
///        layouts, and export the benchmark files (.v + .fgl + cell level) —
///        the "researcher downloads benchmarks" scenario from the paper's
///        introduction.

#include "benchmarks/suites.hpp"
#include "core/best_selection.hpp"
#include "core/catalog.hpp"
#include "core/export.hpp"
#include "core/filters.hpp"
#include "physical_design/portfolio.hpp"

#include <cstdio>
#include <filesystem>

int main()
{
    using namespace mnt;

    cat::catalog catalog;

    // populate: all tool combinations for the Trindade16 set, both libraries
    pd::portfolio_params params{};
    params.exact_timeout_s = 2.0;
    params.nanoplacer_iterations = 800;
    params.input_orderings = 4;

    for (const auto& entry : bm::trindade16())
    {
        const auto network = entry.build();
        catalog.add_network(entry.set, entry.name, network);
        for (const auto library : {cat::gate_library_kind::qca_one, cat::gate_library_kind::bestagon})
        {
            const auto results = library == cat::gate_library_kind::qca_one ?
                                     pd::run_cartesian_portfolio(network, params) :
                                     pd::run_hexagonal_portfolio(network, params);
            for (const auto& r : results)
            {
                cat::layout_record record{};
                record.benchmark_set = entry.set;
                record.benchmark_name = entry.name;
                record.library = library;
                record.clocking = r.clocking;
                record.algorithm = r.algorithm;
                record.optimizations = r.optimizations;
                record.runtime = r.runtime;
                record.layout = r.layout;
                catalog.add_layout(std::move(record));
            }
        }
    }

    std::printf("catalog: %zu networks, %zu layouts\n\n", catalog.num_networks(), catalog.num_layouts());

    // the paper's headline feature: best layout per function with dA
    for (const auto library : {cat::gate_library_kind::qca_one, cat::gate_library_kind::bestagon})
    {
        std::printf("best layouts, %s library (dA vs '%s'):\n", cat::gate_library_name(library).c_str(),
                    cat::baseline_label(library).c_str());
        for (const auto& [network, entry] : cat::best_per_function(catalog, library))
        {
            if (entry.best == nullptr)
            {
                continue;
            }
            std::printf("  %-14s %4u x %-4u = %6lu tiles  via %-28s", network->benchmark_name.c_str(),
                        entry.best->width, entry.best->height, static_cast<unsigned long>(entry.best->area),
                        entry.best->label().c_str());
            if (entry.delta_area_percent.has_value())
            {
                std::printf("  dA %+6.1f%%", *entry.delta_area_percent);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }

    // download: export the best QCA ONE layouts with cell level
    cat::filter_query query{};
    query.libraries = {cat::gate_library_kind::qca_one};
    query.best_only = true;
    const auto selection = cat::apply_filter(catalog, query);

    const auto dir = std::filesystem::temp_directory_path() / "mnt_bench_best_of_catalog";
    std::filesystem::remove_all(dir);
    cat::export_options options{};
    options.write_cell_level = true;
    const auto report = cat::export_selection(catalog, selection, dir, options);
    std::printf("exported %zu files (%zu skipped at cell level) to %s\n", report.written.size(),
                report.skipped.size(), dir.string().c_str());
    for (const auto& note : report.skipped)
    {
        std::printf("  skipped: %.100s\n", note.c_str());
    }
    std::filesystem::remove_all(dir);

    return 0;
}
