/// \file mnt_bench_serve.cpp
/// \brief The MNT Bench catalog server: generates layouts into a persistent
///        store (incrementally — already-present combinations are skipped),
///        loads the store into the indexed query engine, and serves the
///        website's facet queries plus .fgl downloads over HTTP.
///
/// Usage:
///   mnt_bench_serve [--store <dir>] [--generate] [--set <name>] [--name <fn>]
///                   [--family <name>] [--family-count <n>] [--family-seed <s>]
///                   [--port <p>] [--threads <n>] [--jobs <n>] [--pd-threads <n>]
///                   [--deadline <s>] [--retries <n>] [--no-serve]
///                   [--report <file.json>] [--verbose-telemetry]
///                   [--trace-out <file.json>] [--event-log <file.jsonl>]
///                   [--resume] [--supervise] [--shards <n>] [--deterministic]
///                   [--idle-timeout <s>] [--cache-mb <mb>] [--max-connections <n>]
///
/// Typical session:
///   mnt_bench_serve --store bench_store --generate --set Trindade16   # populate
///   mnt_bench_serve --store bench_store --port 8080                   # serve
///
/// Crash-contained regeneration (PR 7): --supervise/--shards fork each
/// benchmark × library job into a sandboxed worker process; a SIGKILLed or
/// interrupted run resumes with --resume, replaying the store's journal.
///
/// On startup the server prints one machine-readable line to stdout:
///   serving <N> layouts on http://127.0.0.1:<port>
/// (used by the CI smoke job to discover the ephemeral port).

#include "benchmarks/families.hpp"
#include "benchmarks/suites.hpp"
#include "common/supervisor.hpp"
#include "common/taskrt/taskrt.hpp"
#include "service/populate.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "service/store.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace mnt;

struct serve_options
{
    std::string store_dir{"mnt_bench_store"};
    bool generate{false};
    bool serve{true};
    std::optional<std::string> set;
    std::optional<std::string> name;
    std::uint16_t port{0};
    std::size_t threads{4};
    std::size_t jobs{1};
    /// Keep-alive idle timeout (seconds).
    double idle_timeout_s{15.0};
    /// Response-cache byte budget in megabytes.
    std::size_t cache_mb{8};
    /// Open-connection cap across all event loops.
    std::size_t max_connections{1024};
    /// Physical-design task-runtime threads (0 = auto). --threads here means
    /// *server* worker threads, so the compute pool gets its own flag:
    /// --pd-threads > MNT_THREADS > hardware concurrency.
    std::optional<std::size_t> pd_threads;
    double deadline_s{0.0};
    std::optional<std::size_t> max_attempts;
    std::optional<std::string> report_path;
    std::optional<std::string> trace_path;
    std::optional<std::string> event_log_path;
    bool verbose_telemetry{false};
    bool help{false};

    /// Resume a killed/interrupted regeneration from the store's journal.
    bool resume{false};
    /// Run generation jobs in supervised worker processes.
    bool supervise{false};
    /// Number of concurrent supervised workers (implies --supervise).
    std::size_t shards{1};
    /// Deterministic output mode (zeroed wall-clock fields, no exact).
    bool deterministic{false};
    /// Worker rlimits (0 = off).
    double worker_cpu_s{0.0};
    std::uint64_t worker_mem_mb{0};
    double worker_hang_s{0.0};
    /// Hidden: run exactly one regeneration job and exit (worker mode).
    std::optional<std::string> worker_job;

    /// Synthetic family selection (reference family name + overrides);
    /// --generate then populates the family instead of the curated sets.
    std::optional<std::string> family;
    std::optional<std::size_t> family_count;
    std::optional<std::string> family_seed;
};

serve_options parse_args(const int argc, const char** argv)
{
    serve_options options{};
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string
        { return i + 1 < argc ? argv[++i] : std::string{}; };
        if (arg == "--store")
        {
            options.store_dir = next();
        }
        else if (arg == "--generate")
        {
            options.generate = true;
        }
        else if (arg == "--no-serve")
        {
            options.serve = false;
        }
        else if (arg == "--set")
        {
            options.set = next();
        }
        else if (arg == "--name")
        {
            options.name = next();
        }
        else if (arg == "--port")
        {
            options.port = static_cast<std::uint16_t>(std::stoul(next()));
        }
        else if (arg == "--threads")
        {
            options.threads = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--jobs")
        {
            options.jobs = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--idle-timeout")
        {
            options.idle_timeout_s = std::stod(next());
        }
        else if (arg == "--cache-mb")
        {
            options.cache_mb = std::stoul(next());
        }
        else if (arg == "--max-connections")
        {
            options.max_connections = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--pd-threads")
        {
            options.pd_threads = std::stoul(next());
        }
        else if (arg == "--deadline")
        {
            options.deadline_s = std::stod(next());
        }
        else if (arg == "--retries")
        {
            options.max_attempts = static_cast<std::size_t>(std::stoul(next())) + 1;
        }
        else if (arg == "--report")
        {
            options.report_path = next();
        }
        else if (arg == "--verbose-telemetry")
        {
            options.verbose_telemetry = true;
        }
        else if (arg == "--trace-out")
        {
            options.trace_path = next();
        }
        else if (arg == "--event-log")
        {
            options.event_log_path = next();
        }
        else if (arg == "--resume")
        {
            options.resume = true;
            options.generate = true;
        }
        else if (arg == "--supervise")
        {
            options.supervise = true;
        }
        else if (arg == "--shards")
        {
            options.shards = std::max<std::size_t>(1, std::stoul(next()));
            options.supervise = true;
        }
        else if (arg == "--deterministic")
        {
            options.deterministic = true;
        }
        else if (arg == "--worker-cpu")
        {
            options.worker_cpu_s = std::stod(next());
        }
        else if (arg == "--worker-mem")
        {
            options.worker_mem_mb = std::stoull(next());
        }
        else if (arg == "--worker-hang-timeout")
        {
            options.worker_hang_s = std::stod(next());
        }
        else if (arg == "--worker-job")
        {
            options.worker_job = next();
        }
        else if (arg == "--family")
        {
            options.family = next();
        }
        else if (arg == "--family-count")
        {
            options.family_count = std::stoul(next());
        }
        else if (arg == "--family-seed")
        {
            options.family_seed = next();
        }
        else if (arg == "--help" || arg == "-h")
        {
            options.help = true;
        }
        else
        {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            options.help = true;
        }
    }
    return options;
}

/// Resolves --family/--family-count/--family-seed into a concrete spec.
///
/// \throws mnt::mnt_error on an unknown family name
std::optional<bm::family_spec> family_for(const serve_options& options)
{
    if (!options.family.has_value())
    {
        return std::nullopt;
    }
    auto spec = bm::find_reference_family(*options.family);
    if (!spec.has_value())
    {
        throw mnt_error{"unknown family '" + *options.family + "' (known: aoi, xor, maj)"};
    }
    if (options.family_count.has_value())
    {
        spec->count = *options.family_count;
    }
    if (options.family_seed.has_value())
    {
        spec->seed = std::stoull(*options.family_seed, nullptr, 0);
    }
    return spec;
}

std::vector<bm::benchmark_entry> selected_entries(const serve_options& options)
{
    // family mode: generation targets the synthetic family's functions
    // instead of the curated sets (--name still narrows to one function)
    if (const auto family = family_for(options); family.has_value())
    {
        auto entries = bm::family_entries(*family);
        if (options.name.has_value())
        {
            std::erase_if(entries, [&](const bm::benchmark_entry& e) { return e.name != *options.name; });
        }
        return entries;
    }

    std::vector<bm::benchmark_entry> selection;
    for (const auto& entry : bm::all_suites())
    {
        if (options.set.has_value() && entry.set != *options.set)
        {
            continue;
        }
        if (options.name.has_value() && entry.name != *options.name)
        {
            continue;
        }
        // interactive default: skip the big sets unless explicitly requested
        if (!options.set.has_value() && (entry.set == "ISCAS85" || entry.set == "EPFL"))
        {
            continue;
        }
        selection.push_back(entry);
    }
    return selection;
}

std::atomic<bool> interrupted{false};
std::atomic<int> interrupt_signal{0};
std::atomic<bool> reload_requested{false};

void on_signal(const int sig)
{
    // async-signal-safe: only set flags; generation observes the flag via
    // portfolio_params::stop and checkpoints the journal on the normal path
    interrupt_signal.store(sig);
    interrupted.store(true);
}

void on_reload(const int)
{
    // SIGHUP = "the store changed on disk, pick it up": the serve loop
    // reloads the store and publishes a fresh snapshot without dropping
    // connections
    reload_requested.store(true);
}

/// Non-owning view of the global interrupt flag for populate/portfolio.
std::shared_ptr<const std::atomic<bool>> interrupt_flag()
{
    return {&interrupted, [](const std::atomic<bool>*) {}};
}

void write_telemetry(const serve_options& options)
{
    if (!options.report_path.has_value() && !options.verbose_telemetry)
    {
        return;
    }
    const auto report = tel::capture_report();
    if (options.report_path.has_value())
    {
        tel::write_report_json_file(report, *options.report_path);
        std::fprintf(stderr, "wrote telemetry report %s\n", options.report_path->c_str());
    }
    if (options.verbose_telemetry)
    {
        tel::write_report_text(report, std::cerr);
    }
}

/// Emits the Chrome trace requested via --trace-out (or MNT_TRACE_OUT).
void write_trace(const serve_options& options)
{
    if (options.trace_path.has_value())
    {
        tel::write_chrome_trace_file(*options.trace_path);
        std::fprintf(stderr, "wrote trace %s\n", options.trace_path->c_str());
        return;
    }
    if (const auto path = tel::export_trace_if_requested(); !path.empty())
    {
        std::fprintf(stderr, "wrote trace %s\n", path.c_str());
    }
}

svc::populate_options build_populate_options(const serve_options& options)
{
    svc::populate_options populate{};
    populate.params.deadline_s = options.deadline_s;
    populate.params.jobs = options.jobs;
    if (options.max_attempts.has_value())
    {
        populate.params.max_attempts = *options.max_attempts;
    }
    populate.resume = options.resume;
    populate.deterministic = options.deterministic;
    populate.cancel = interrupt_flag();
    return populate;
}

/// argv prefix that re-invokes this very binary as a one-job worker; the
/// populate layer appends `--worker-job <id>`.
std::vector<std::string> worker_command(const serve_options& options)
{
    std::vector<std::string> argv{sup::self_executable(), "--store", options.store_dir, "--no-serve"};
    if (options.set.has_value())
    {
        argv.insert(argv.end(), {"--set", *options.set});
    }
    if (options.name.has_value())
    {
        argv.insert(argv.end(), {"--name", *options.name});
    }
    // workers must rebuild the exact same entry list, so the family
    // selection travels with them
    if (options.family.has_value())
    {
        argv.insert(argv.end(), {"--family", *options.family});
        if (options.family_count.has_value())
        {
            argv.insert(argv.end(), {"--family-count", std::to_string(*options.family_count)});
        }
        if (options.family_seed.has_value())
        {
            argv.insert(argv.end(), {"--family-seed", *options.family_seed});
        }
    }
    if (options.deadline_s > 0.0)
    {
        argv.insert(argv.end(), {"--deadline", std::to_string(options.deadline_s)});
    }
    if (options.max_attempts.has_value())
    {
        argv.insert(argv.end(), {"--retries", std::to_string(*options.max_attempts - 1)});
    }
    if (options.jobs > 1)
    {
        argv.insert(argv.end(), {"--jobs", std::to_string(options.jobs)});
    }
    // fair-share compute threads per shard worker (cores/shards, min 1)
    // unless the user pinned an explicit count
    const auto worker_threads =
        options.pd_threads.has_value()
            ? *options.pd_threads
            : std::max<std::size_t>(1, trt::resolve_auto_threads() / std::max<std::size_t>(1, options.shards));
    argv.insert(argv.end(), {"--pd-threads", std::to_string(worker_threads)});
    if (options.deterministic)
    {
        argv.push_back("--deterministic");
    }
    return argv;
}

int run(const serve_options& options)
{
    // regeneration must be interruptible from the very first job: the
    // handlers set a flag that the portfolio observes cooperatively, the
    // journal records a checkpoint, and the run exits resumable
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    if (options.worker_job.has_value())
    {
        // supervised worker mode: run exactly one job into a shard manifest
        const auto report =
            svc::run_regen_job(options.store_dir, selected_entries(options), *options.worker_job,
                               build_populate_options(options));
        return report.interrupted ? 1 : 0;
    }

    // store corruption / repair reports flow through the structured event
    // log (echoed to stderr via the warn mirror) instead of ad-hoc prints
    svc::layout_store store{options.store_dir};

    if (options.generate)
    {
        auto populate = build_populate_options(options);
        if (options.supervise)
        {
            populate.workers = options.shards;
            populate.worker_command = worker_command(options);
            populate.worker_cpu_limit_s = options.worker_cpu_s;
            populate.worker_address_space_bytes = options.worker_mem_mb * 1024 * 1024;
            populate.worker_hang_timeout_s = options.worker_hang_s;
        }
        const auto report = svc::populate_store(store, selected_entries(options), populate);
        std::printf("generated: %zu layouts added, %zu failures, %zu combos run, %zu cached combos skipped\n",
                    report.layouts_added, report.failures_recorded, report.combos_run,
                    report.cached_combos_skipped);
        if (report.jobs_total > 0)
        {
            std::printf("jobs: %zu total, %zu run, %zu resumed-skip, %zu crashed%s\n", report.jobs_total,
                        report.jobs_run, report.jobs_skipped_resume, report.jobs_crashed,
                        report.interrupted ? ", interrupted (resume with --resume)" : "");
        }
        std::fflush(stdout);
        if (report.interrupted)
        {
            // journal is checkpointed; flush observability sinks and exit
            // with the conventional 128+signal status
            write_telemetry(options);
            write_trace(options);
            tel::event_log::instance().flush();
            return 128 + interrupt_signal.load();
        }
    }

    if (!options.serve)
    {
        const auto snapshot = store.load();
        std::printf("store %s: %zu networks, %zu layouts, %zu failures\n", options.store_dir.c_str(),
                    snapshot.catalog.num_networks(), snapshot.catalog.num_layouts(),
                    snapshot.catalog.num_failures());
        write_telemetry(options);
        write_trace(options);
        return 0;
    }

    // the engine indexes (and references) its store snapshot, so the two
    // travel as one shared bundle; catalog_snapshot's engine shared_ptr
    // aliases the bundle, keeping the catalog alive for as long as any
    // in-flight request still reads it — which is what makes SIGHUP reloads
    // safe while serving
    struct engine_bundle
    {
        svc::store_snapshot snapshot;
        std::unique_ptr<svc::query_engine> engine;
    };
    const auto load_engine = [&store]
    {
        auto bundle = std::make_shared<engine_bundle>();
        bundle->snapshot = store.load();
        bundle->engine =
            std::make_unique<svc::query_engine>(bundle->snapshot.catalog, bundle->snapshot.layout_ids);
        return std::shared_ptr<const svc::query_engine>{bundle, bundle->engine.get()};
    };

    auto engine = load_engine();
    const auto num_layouts = engine->catalog().num_layouts();
    svc::server_options server_options{};
    server_options.port = options.port;
    server_options.threads = options.threads;
    server_options.idle_timeout_s = options.idle_timeout_s;
    server_options.cache_capacity_bytes = options.cache_mb << 20U;
    server_options.max_connections = options.max_connections;
    svc::catalog_server server{std::move(engine), server_options};
    server.attach_store(&store);
    server.start();

    std::printf("serving %zu layouts on http://127.0.0.1:%u\n", num_layouts,
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    // the server sends with MSG_NOSIGNAL, but ignore SIGPIPE process-wide
    // too so no stray write to a disconnected peer can kill the process
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGHUP, on_reload);
    while (!interrupted.load())
    {
        if (reload_requested.exchange(false))
        {
            auto reloaded = load_engine();
            std::fprintf(stderr, "reloading store: %zu layouts\n", reloaded->catalog().num_layouts());
            server.publish(std::move(reloaded));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{100});
    }
    std::fprintf(stderr, "shutting down ...\n");
    server.stop();
    write_telemetry(options);
    write_trace(options);
    return 0;
}

}  // namespace

int main(const int argc, const char** argv)
{
    const auto options = parse_args(argc, argv);
    if (options.pd_threads.has_value())
    {
        trt::set_thread_count(*options.pd_threads);
    }
    if (options.help)
    {
        std::printf("MNT Bench catalog server (reproduction)\n"
                    "usage: mnt_bench_serve [options]\n"
                    "  --store <dir>          store root (default mnt_bench_store)\n"
                    "  --generate             populate the store before serving (incremental:\n"
                    "                         already-present combinations are skipped)\n"
                    "  --set <name>           restrict generation to one benchmark set\n"
                    "  --name <fn>            restrict generation to one function\n"
                    "  --family <name>        generate a synthetic benchmark family instead of the\n"
                    "                         curated sets (reference families: aoi, xor, maj)\n"
                    "  --family-count <n>     number of functions to expand the family to\n"
                    "  --family-seed <seed>   override the family seed (decimal or 0x-hex)\n"
                    "  --port <p>             TCP port (default 0 = ephemeral; printed on startup)\n"
                    "  --threads <n>          server event-loop threads (default 4)\n"
                    "  --idle-timeout <s>     close idle keep-alive connections after s seconds (default 15)\n"
                    "  --cache-mb <mb>        response-cache byte budget (default 8)\n"
                    "  --max-connections <n>  open-connection cap; past it the oldest idle\n"
                    "                         keep-alive connection is shed (default 1024)\n"
                    "  --jobs <n>             portfolio worker threads (default 1)\n"
                    "  --pd-threads <n>       physical-design compute threads, 0 = auto\n"
                    "                         (precedence --pd-threads > MNT_THREADS > hardware)\n"
                    "  --deadline <seconds>   wall-clock budget per portfolio run\n"
                    "  --retries <n>          retries per combination for transient failures\n"
                    "  --no-serve             exit after generation / store inspection\n"
                    "  --report <file.json>   write a JSON telemetry run report on exit\n"
                    "  --verbose-telemetry    print the run report as text to stderr\n"
                    "  --trace-out <file>     write a Chrome/Perfetto trace on exit (or MNT_TRACE_OUT)\n"
                    "  --event-log <file>     append the structured JSONL event log (or MNT_EVENT_LOG)\n"
                    "  --resume               resume a killed regeneration from the store's journal\n"
                    "  --supervise            run each generation job in a supervised worker process\n"
                    "  --shards <n>           concurrent supervised workers (implies --supervise)\n"
                    "  --deterministic        byte-reproducible output (zeroed runtimes, no exact)\n"
                    "  --worker-cpu <s>       RLIMIT_CPU seconds per worker process\n"
                    "  --worker-mem <mb>      RLIMIT_AS megabytes per worker process\n"
                    "  --worker-hang-timeout <s>  kill a worker silent for this long\n"
                    "signals: SIGTERM/SIGINT drain and exit; SIGHUP reloads the store and publishes\n"
                    "         a fresh serving snapshot without dropping connections\n"
                    "endpoints: /healthz /metrics /statz /benchmarks /layouts /facets /best /download/<id>\n");
        return 0;
    }
    if (options.report_path.has_value() || options.verbose_telemetry)
    {
        tel::set_enabled(true);
    }
    if (options.trace_path.has_value())
    {
        tel::set_trace_recording(true);
    }
    if (options.event_log_path.has_value())
    {
        tel::event_log::instance().open_sink(*options.event_log_path);
    }
    tel::event_log::instance().set_stderr_echo(true);
    try
    {
        return run(options);
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
