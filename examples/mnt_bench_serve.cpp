/// \file mnt_bench_serve.cpp
/// \brief The MNT Bench catalog server: generates layouts into a persistent
///        store (incrementally — already-present combinations are skipped),
///        loads the store into the indexed query engine, and serves the
///        website's facet queries plus .fgl downloads over HTTP.
///
/// Usage:
///   mnt_bench_serve [--store <dir>] [--generate] [--set <name>] [--name <fn>]
///                   [--port <p>] [--threads <n>] [--jobs <n>]
///                   [--deadline <s>] [--retries <n>] [--no-serve]
///                   [--report <file.json>] [--verbose-telemetry]
///                   [--trace-out <file.json>] [--event-log <file.jsonl>]
///
/// Typical session:
///   mnt_bench_serve --store bench_store --generate --set Trindade16   # populate
///   mnt_bench_serve --store bench_store --port 8080                   # serve
///
/// On startup the server prints one machine-readable line to stdout:
///   serving <N> layouts on http://127.0.0.1:<port>
/// (used by the CI smoke job to discover the ephemeral port).

#include "benchmarks/suites.hpp"
#include "service/populate.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "service/store.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace mnt;

struct serve_options
{
    std::string store_dir{"mnt_bench_store"};
    bool generate{false};
    bool serve{true};
    std::optional<std::string> set;
    std::optional<std::string> name;
    std::uint16_t port{0};
    std::size_t threads{4};
    std::size_t jobs{1};
    double deadline_s{0.0};
    std::optional<std::size_t> max_attempts;
    std::optional<std::string> report_path;
    std::optional<std::string> trace_path;
    std::optional<std::string> event_log_path;
    bool verbose_telemetry{false};
    bool help{false};
};

serve_options parse_args(const int argc, const char** argv)
{
    serve_options options{};
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string
        { return i + 1 < argc ? argv[++i] : std::string{}; };
        if (arg == "--store")
        {
            options.store_dir = next();
        }
        else if (arg == "--generate")
        {
            options.generate = true;
        }
        else if (arg == "--no-serve")
        {
            options.serve = false;
        }
        else if (arg == "--set")
        {
            options.set = next();
        }
        else if (arg == "--name")
        {
            options.name = next();
        }
        else if (arg == "--port")
        {
            options.port = static_cast<std::uint16_t>(std::stoul(next()));
        }
        else if (arg == "--threads")
        {
            options.threads = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--jobs")
        {
            options.jobs = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--deadline")
        {
            options.deadline_s = std::stod(next());
        }
        else if (arg == "--retries")
        {
            options.max_attempts = static_cast<std::size_t>(std::stoul(next())) + 1;
        }
        else if (arg == "--report")
        {
            options.report_path = next();
        }
        else if (arg == "--verbose-telemetry")
        {
            options.verbose_telemetry = true;
        }
        else if (arg == "--trace-out")
        {
            options.trace_path = next();
        }
        else if (arg == "--event-log")
        {
            options.event_log_path = next();
        }
        else if (arg == "--help" || arg == "-h")
        {
            options.help = true;
        }
        else
        {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            options.help = true;
        }
    }
    return options;
}

std::vector<bm::benchmark_entry> selected_entries(const serve_options& options)
{
    std::vector<bm::benchmark_entry> selection;
    for (const auto& entry : bm::all_suites())
    {
        if (options.set.has_value() && entry.set != *options.set)
        {
            continue;
        }
        if (options.name.has_value() && entry.name != *options.name)
        {
            continue;
        }
        // interactive default: skip the big sets unless explicitly requested
        if (!options.set.has_value() && (entry.set == "ISCAS85" || entry.set == "EPFL"))
        {
            continue;
        }
        selection.push_back(entry);
    }
    return selection;
}

std::atomic<bool> interrupted{false};

void on_signal(const int)
{
    interrupted.store(true);
}

void write_telemetry(const serve_options& options)
{
    if (!options.report_path.has_value() && !options.verbose_telemetry)
    {
        return;
    }
    const auto report = tel::capture_report();
    if (options.report_path.has_value())
    {
        tel::write_report_json_file(report, *options.report_path);
        std::fprintf(stderr, "wrote telemetry report %s\n", options.report_path->c_str());
    }
    if (options.verbose_telemetry)
    {
        tel::write_report_text(report, std::cerr);
    }
}

/// Emits the Chrome trace requested via --trace-out (or MNT_TRACE_OUT).
void write_trace(const serve_options& options)
{
    if (options.trace_path.has_value())
    {
        tel::write_chrome_trace_file(*options.trace_path);
        std::fprintf(stderr, "wrote trace %s\n", options.trace_path->c_str());
        return;
    }
    if (const auto path = tel::export_trace_if_requested(); !path.empty())
    {
        std::fprintf(stderr, "wrote trace %s\n", path.c_str());
    }
}

int run(const serve_options& options)
{
    // store corruption / repair reports flow through the structured event
    // log (echoed to stderr via the warn mirror) instead of ad-hoc prints
    svc::layout_store store{options.store_dir};

    if (options.generate)
    {
        svc::populate_options populate{};
        populate.params.deadline_s = options.deadline_s;
        populate.params.jobs = options.jobs;
        if (options.max_attempts.has_value())
        {
            populate.params.max_attempts = *options.max_attempts;
        }
        const auto report = svc::populate_store(store, selected_entries(options), populate);
        std::printf("generated: %zu layouts added, %zu failures, %zu combos run, %zu cached combos skipped\n",
                    report.layouts_added, report.failures_recorded, report.combos_run,
                    report.cached_combos_skipped);
        std::fflush(stdout);
    }

    const auto snapshot = store.load();

    if (!options.serve)
    {
        std::printf("store %s: %zu networks, %zu layouts, %zu failures\n", options.store_dir.c_str(),
                    snapshot.catalog.num_networks(), snapshot.catalog.num_layouts(),
                    snapshot.catalog.num_failures());
        write_telemetry(options);
        write_trace(options);
        return 0;
    }

    const svc::query_engine engine{snapshot.catalog, snapshot.layout_ids};
    svc::server_options server_options{};
    server_options.port = options.port;
    server_options.threads = options.threads;
    svc::catalog_server server{engine, server_options};
    server.attach_store(&store);
    server.start();

    std::printf("serving %zu layouts on http://127.0.0.1:%u\n", snapshot.catalog.num_layouts(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    // the server sends with MSG_NOSIGNAL, but ignore SIGPIPE process-wide
    // too so no stray write to a disconnected peer can kill the process
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!interrupted.load())
    {
        std::this_thread::sleep_for(std::chrono::milliseconds{100});
    }
    std::fprintf(stderr, "shutting down ...\n");
    server.stop();
    write_telemetry(options);
    write_trace(options);
    return 0;
}

}  // namespace

int main(const int argc, const char** argv)
{
    const auto options = parse_args(argc, argv);
    if (options.help)
    {
        std::printf("MNT Bench catalog server (reproduction)\n"
                    "usage: mnt_bench_serve [options]\n"
                    "  --store <dir>          store root (default mnt_bench_store)\n"
                    "  --generate             populate the store before serving (incremental:\n"
                    "                         already-present combinations are skipped)\n"
                    "  --set <name>           restrict generation to one benchmark set\n"
                    "  --name <fn>            restrict generation to one function\n"
                    "  --port <p>             TCP port (default 0 = ephemeral; printed on startup)\n"
                    "  --threads <n>          server worker threads (default 4)\n"
                    "  --jobs <n>             portfolio worker threads (default 1)\n"
                    "  --deadline <seconds>   wall-clock budget per portfolio run\n"
                    "  --retries <n>          retries per combination for transient failures\n"
                    "  --no-serve             exit after generation / store inspection\n"
                    "  --report <file.json>   write a JSON telemetry run report on exit\n"
                    "  --verbose-telemetry    print the run report as text to stderr\n"
                    "  --trace-out <file>     write a Chrome/Perfetto trace on exit (or MNT_TRACE_OUT)\n"
                    "  --event-log <file>     append the structured JSONL event log (or MNT_EVENT_LOG)\n"
                    "endpoints: /healthz /metrics /statz /benchmarks /layouts /facets /best /download/<id>\n");
        return 0;
    }
    if (options.report_path.has_value() || options.verbose_telemetry)
    {
        tel::set_enabled(true);
    }
    if (options.trace_path.has_value())
    {
        tel::set_trace_recording(true);
    }
    if (options.event_log_path.has_value())
    {
        tel::event_log::instance().open_sink(*options.event_log_path);
    }
    tel::event_log::instance().set_stderr_echo(true);
    try
    {
        return run(options);
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
