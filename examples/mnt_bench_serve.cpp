/// \file mnt_bench_serve.cpp
/// \brief The MNT Bench catalog server: generates layouts into a persistent
///        store (incrementally — already-present combinations are skipped),
///        loads the store into the indexed query engine, and serves the
///        website's facet queries plus .fgl downloads over HTTP.
///
/// Usage:
///   mnt_bench_serve [--store <dir>] [--generate] [--set <name>] [--name <fn>]
///                   [--port <p>] [--threads <n>] [--jobs <n>]
///                   [--deadline <s>] [--retries <n>] [--no-serve]
///                   [--report <file.json>] [--verbose-telemetry]
///
/// Typical session:
///   mnt_bench_serve --store bench_store --generate --set Trindade16   # populate
///   mnt_bench_serve --store bench_store --port 8080                   # serve
///
/// On startup the server prints one machine-readable line to stdout:
///   serving <N> layouts on http://127.0.0.1:<port>
/// (used by the CI smoke job to discover the ephemeral port).

#include "benchmarks/suites.hpp"
#include "service/populate.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "service/store.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace mnt;

struct serve_options
{
    std::string store_dir{"mnt_bench_store"};
    bool generate{false};
    bool serve{true};
    std::optional<std::string> set;
    std::optional<std::string> name;
    std::uint16_t port{0};
    std::size_t threads{4};
    std::size_t jobs{1};
    double deadline_s{0.0};
    std::optional<std::size_t> max_attempts;
    std::optional<std::string> report_path;
    bool verbose_telemetry{false};
    bool help{false};
};

serve_options parse_args(const int argc, const char** argv)
{
    serve_options options{};
    for (int i = 1; i < argc; ++i)
    {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string
        { return i + 1 < argc ? argv[++i] : std::string{}; };
        if (arg == "--store")
        {
            options.store_dir = next();
        }
        else if (arg == "--generate")
        {
            options.generate = true;
        }
        else if (arg == "--no-serve")
        {
            options.serve = false;
        }
        else if (arg == "--set")
        {
            options.set = next();
        }
        else if (arg == "--name")
        {
            options.name = next();
        }
        else if (arg == "--port")
        {
            options.port = static_cast<std::uint16_t>(std::stoul(next()));
        }
        else if (arg == "--threads")
        {
            options.threads = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--jobs")
        {
            options.jobs = std::max<std::size_t>(1, std::stoul(next()));
        }
        else if (arg == "--deadline")
        {
            options.deadline_s = std::stod(next());
        }
        else if (arg == "--retries")
        {
            options.max_attempts = static_cast<std::size_t>(std::stoul(next())) + 1;
        }
        else if (arg == "--report")
        {
            options.report_path = next();
        }
        else if (arg == "--verbose-telemetry")
        {
            options.verbose_telemetry = true;
        }
        else if (arg == "--help" || arg == "-h")
        {
            options.help = true;
        }
        else
        {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            options.help = true;
        }
    }
    return options;
}

std::vector<bm::benchmark_entry> selected_entries(const serve_options& options)
{
    std::vector<bm::benchmark_entry> selection;
    for (const auto& entry : bm::all_suites())
    {
        if (options.set.has_value() && entry.set != *options.set)
        {
            continue;
        }
        if (options.name.has_value() && entry.name != *options.name)
        {
            continue;
        }
        // interactive default: skip the big sets unless explicitly requested
        if (!options.set.has_value() && (entry.set == "ISCAS85" || entry.set == "EPFL"))
        {
            continue;
        }
        selection.push_back(entry);
    }
    return selection;
}

std::atomic<bool> interrupted{false};

void on_signal(const int)
{
    interrupted.store(true);
}

void write_telemetry(const serve_options& options)
{
    if (!options.report_path.has_value() && !options.verbose_telemetry)
    {
        return;
    }
    const auto report = tel::capture_report();
    if (options.report_path.has_value())
    {
        tel::write_report_json_file(report, *options.report_path);
        std::fprintf(stderr, "wrote telemetry report %s\n", options.report_path->c_str());
    }
    if (options.verbose_telemetry)
    {
        tel::write_report_text(report, std::cerr);
    }
}

int run(const serve_options& options)
{
    svc::layout_store store{options.store_dir};
    for (const auto& issue : store.open_issues())
    {
        std::fprintf(stderr, "store issue [%s] %s: %s\n", res::outcome_kind_name(issue.kind),
                     issue.label.c_str(), issue.message.c_str());
    }

    if (options.generate)
    {
        svc::populate_options populate{};
        populate.params.deadline_s = options.deadline_s;
        populate.params.jobs = options.jobs;
        if (options.max_attempts.has_value())
        {
            populate.params.max_attempts = *options.max_attempts;
        }
        const auto report = svc::populate_store(store, selected_entries(options), populate);
        std::printf("generated: %zu layouts added, %zu failures, %zu combos run, %zu cached combos skipped\n",
                    report.layouts_added, report.failures_recorded, report.combos_run,
                    report.cached_combos_skipped);
        std::fflush(stdout);
    }

    const auto snapshot = store.load();
    for (const auto& issue : snapshot.issues)
    {
        std::fprintf(stderr, "store issue [%s] %s: %s\n", res::outcome_kind_name(issue.kind),
                     issue.label.c_str(), issue.message.c_str());
    }

    if (!options.serve)
    {
        std::printf("store %s: %zu networks, %zu layouts, %zu failures\n", options.store_dir.c_str(),
                    snapshot.catalog.num_networks(), snapshot.catalog.num_layouts(),
                    snapshot.catalog.num_failures());
        write_telemetry(options);
        return 0;
    }

    const svc::query_engine engine{snapshot.catalog, snapshot.layout_ids};
    svc::server_options server_options{};
    server_options.port = options.port;
    server_options.threads = options.threads;
    svc::catalog_server server{engine, server_options};
    server.attach_store(&store);
    server.start();

    std::printf("serving %zu layouts on http://127.0.0.1:%u\n", snapshot.catalog.num_layouts(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    // the server sends with MSG_NOSIGNAL, but ignore SIGPIPE process-wide
    // too so no stray write to a disconnected peer can kill the process
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (!interrupted.load())
    {
        std::this_thread::sleep_for(std::chrono::milliseconds{100});
    }
    std::fprintf(stderr, "shutting down ...\n");
    server.stop();
    write_telemetry(options);
    return 0;
}

}  // namespace

int main(const int argc, const char** argv)
{
    const auto options = parse_args(argc, argv);
    if (options.help)
    {
        std::printf("MNT Bench catalog server (reproduction)\n"
                    "usage: mnt_bench_serve [options]\n"
                    "  --store <dir>          store root (default mnt_bench_store)\n"
                    "  --generate             populate the store before serving (incremental:\n"
                    "                         already-present combinations are skipped)\n"
                    "  --set <name>           restrict generation to one benchmark set\n"
                    "  --name <fn>            restrict generation to one function\n"
                    "  --port <p>             TCP port (default 0 = ephemeral; printed on startup)\n"
                    "  --threads <n>          server worker threads (default 4)\n"
                    "  --jobs <n>             portfolio worker threads (default 1)\n"
                    "  --deadline <seconds>   wall-clock budget per portfolio run\n"
                    "  --retries <n>          retries per combination for transient failures\n"
                    "  --no-serve             exit after generation / store inspection\n"
                    "  --report <file.json>   write a JSON telemetry run report on exit\n"
                    "  --verbose-telemetry    print the run report as text to stderr\n"
                    "endpoints: /healthz /benchmarks /layouts /facets /best /download/<id>\n");
        return 0;
    }
    if (options.report_path.has_value() || options.verbose_telemetry)
    {
        tel::set_enabled(true);
    }
    try
    {
        return run(options);
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
