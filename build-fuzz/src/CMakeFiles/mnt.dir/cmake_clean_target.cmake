file(REMOVE_RECURSE
  "libmnt.a"
)
