
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/functions.cpp" "src/CMakeFiles/mnt.dir/benchmarks/functions.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/benchmarks/functions.cpp.o.d"
  "/root/repo/src/benchmarks/suites.cpp" "src/CMakeFiles/mnt.dir/benchmarks/suites.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/benchmarks/suites.cpp.o.d"
  "/root/repo/src/benchmarks/synthetic.cpp" "src/CMakeFiles/mnt.dir/benchmarks/synthetic.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/benchmarks/synthetic.cpp.o.d"
  "/root/repo/src/common/resilience.cpp" "src/CMakeFiles/mnt.dir/common/resilience.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/common/resilience.cpp.o.d"
  "/root/repo/src/core/best_selection.cpp" "src/CMakeFiles/mnt.dir/core/best_selection.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/core/best_selection.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/CMakeFiles/mnt.dir/core/catalog.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/core/catalog.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/CMakeFiles/mnt.dir/core/export.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/core/export.cpp.o.d"
  "/root/repo/src/core/filters.cpp" "src/CMakeFiles/mnt.dir/core/filters.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/core/filters.cpp.o.d"
  "/root/repo/src/core/json_export.cpp" "src/CMakeFiles/mnt.dir/core/json_export.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/core/json_export.cpp.o.d"
  "/root/repo/src/gate_library/bestagon.cpp" "src/CMakeFiles/mnt.dir/gate_library/bestagon.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/gate_library/bestagon.cpp.o.d"
  "/root/repo/src/gate_library/cell_layout.cpp" "src/CMakeFiles/mnt.dir/gate_library/cell_layout.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/gate_library/cell_layout.cpp.o.d"
  "/root/repo/src/gate_library/qca_one.cpp" "src/CMakeFiles/mnt.dir/gate_library/qca_one.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/gate_library/qca_one.cpp.o.d"
  "/root/repo/src/io/ascii_printer.cpp" "src/CMakeFiles/mnt.dir/io/ascii_printer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/ascii_printer.cpp.o.d"
  "/root/repo/src/io/cell_readers.cpp" "src/CMakeFiles/mnt.dir/io/cell_readers.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/cell_readers.cpp.o.d"
  "/root/repo/src/io/fgl_reader.cpp" "src/CMakeFiles/mnt.dir/io/fgl_reader.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/fgl_reader.cpp.o.d"
  "/root/repo/src/io/fgl_writer.cpp" "src/CMakeFiles/mnt.dir/io/fgl_writer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/fgl_writer.cpp.o.d"
  "/root/repo/src/io/qca_writer.cpp" "src/CMakeFiles/mnt.dir/io/qca_writer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/qca_writer.cpp.o.d"
  "/root/repo/src/io/sqd_writer.cpp" "src/CMakeFiles/mnt.dir/io/sqd_writer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/sqd_writer.cpp.o.d"
  "/root/repo/src/io/verilog_reader.cpp" "src/CMakeFiles/mnt.dir/io/verilog_reader.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/verilog_reader.cpp.o.d"
  "/root/repo/src/io/verilog_writer.cpp" "src/CMakeFiles/mnt.dir/io/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/verilog_writer.cpp.o.d"
  "/root/repo/src/io/xml.cpp" "src/CMakeFiles/mnt.dir/io/xml.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/io/xml.cpp.o.d"
  "/root/repo/src/layout/clocking_scheme.cpp" "src/CMakeFiles/mnt.dir/layout/clocking_scheme.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/clocking_scheme.cpp.o.d"
  "/root/repo/src/layout/coordinates.cpp" "src/CMakeFiles/mnt.dir/layout/coordinates.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/coordinates.cpp.o.d"
  "/root/repo/src/layout/gate_level_layout.cpp" "src/CMakeFiles/mnt.dir/layout/gate_level_layout.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/gate_level_layout.cpp.o.d"
  "/root/repo/src/layout/layout_utils.cpp" "src/CMakeFiles/mnt.dir/layout/layout_utils.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/layout_utils.cpp.o.d"
  "/root/repo/src/layout/net_surgery.cpp" "src/CMakeFiles/mnt.dir/layout/net_surgery.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/net_surgery.cpp.o.d"
  "/root/repo/src/layout/routing.cpp" "src/CMakeFiles/mnt.dir/layout/routing.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/layout/routing.cpp.o.d"
  "/root/repo/src/network/gate_type.cpp" "src/CMakeFiles/mnt.dir/network/gate_type.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/gate_type.cpp.o.d"
  "/root/repo/src/network/logic_network.cpp" "src/CMakeFiles/mnt.dir/network/logic_network.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/logic_network.cpp.o.d"
  "/root/repo/src/network/network_utils.cpp" "src/CMakeFiles/mnt.dir/network/network_utils.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/network_utils.cpp.o.d"
  "/root/repo/src/network/optimization.cpp" "src/CMakeFiles/mnt.dir/network/optimization.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/optimization.cpp.o.d"
  "/root/repo/src/network/simulation.cpp" "src/CMakeFiles/mnt.dir/network/simulation.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/simulation.cpp.o.d"
  "/root/repo/src/network/transforms.cpp" "src/CMakeFiles/mnt.dir/network/transforms.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/network/transforms.cpp.o.d"
  "/root/repo/src/physical_design/exact.cpp" "src/CMakeFiles/mnt.dir/physical_design/exact.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/exact.cpp.o.d"
  "/root/repo/src/physical_design/hexagonalization.cpp" "src/CMakeFiles/mnt.dir/physical_design/hexagonalization.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/hexagonalization.cpp.o.d"
  "/root/repo/src/physical_design/input_ordering.cpp" "src/CMakeFiles/mnt.dir/physical_design/input_ordering.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/input_ordering.cpp.o.d"
  "/root/repo/src/physical_design/nanoplacer.cpp" "src/CMakeFiles/mnt.dir/physical_design/nanoplacer.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/nanoplacer.cpp.o.d"
  "/root/repo/src/physical_design/ortho.cpp" "src/CMakeFiles/mnt.dir/physical_design/ortho.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/ortho.cpp.o.d"
  "/root/repo/src/physical_design/portfolio.cpp" "src/CMakeFiles/mnt.dir/physical_design/portfolio.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/portfolio.cpp.o.d"
  "/root/repo/src/physical_design/post_layout_optimization.cpp" "src/CMakeFiles/mnt.dir/physical_design/post_layout_optimization.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/physical_design/post_layout_optimization.cpp.o.d"
  "/root/repo/src/service/json.cpp" "src/CMakeFiles/mnt.dir/service/json.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/service/json.cpp.o.d"
  "/root/repo/src/service/populate.cpp" "src/CMakeFiles/mnt.dir/service/populate.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/service/populate.cpp.o.d"
  "/root/repo/src/service/query.cpp" "src/CMakeFiles/mnt.dir/service/query.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/service/query.cpp.o.d"
  "/root/repo/src/service/server.cpp" "src/CMakeFiles/mnt.dir/service/server.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/service/server.cpp.o.d"
  "/root/repo/src/service/store.cpp" "src/CMakeFiles/mnt.dir/service/store.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/service/store.cpp.o.d"
  "/root/repo/src/telemetry/report.cpp" "src/CMakeFiles/mnt.dir/telemetry/report.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/telemetry/report.cpp.o.d"
  "/root/repo/src/telemetry/telemetry.cpp" "src/CMakeFiles/mnt.dir/telemetry/telemetry.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/telemetry/telemetry.cpp.o.d"
  "/root/repo/src/testing/generators.cpp" "src/CMakeFiles/mnt.dir/testing/generators.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/testing/generators.cpp.o.d"
  "/root/repo/src/testing/oracles.cpp" "src/CMakeFiles/mnt.dir/testing/oracles.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/testing/oracles.cpp.o.d"
  "/root/repo/src/testing/proptest.cpp" "src/CMakeFiles/mnt.dir/testing/proptest.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/testing/proptest.cpp.o.d"
  "/root/repo/src/testing/shrink.cpp" "src/CMakeFiles/mnt.dir/testing/shrink.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/testing/shrink.cpp.o.d"
  "/root/repo/src/verification/cell_drc.cpp" "src/CMakeFiles/mnt.dir/verification/cell_drc.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/verification/cell_drc.cpp.o.d"
  "/root/repo/src/verification/drc.cpp" "src/CMakeFiles/mnt.dir/verification/drc.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/verification/drc.cpp.o.d"
  "/root/repo/src/verification/equivalence.cpp" "src/CMakeFiles/mnt.dir/verification/equivalence.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/verification/equivalence.cpp.o.d"
  "/root/repo/src/verification/synchronization.cpp" "src/CMakeFiles/mnt.dir/verification/synchronization.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/verification/synchronization.cpp.o.d"
  "/root/repo/src/verification/wave_simulation.cpp" "src/CMakeFiles/mnt.dir/verification/wave_simulation.cpp.o" "gcc" "src/CMakeFiles/mnt.dir/verification/wave_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
