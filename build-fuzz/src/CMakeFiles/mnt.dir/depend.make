# Empty dependencies file for mnt.
# This may be replaced when dependencies are built.
