# Empty compiler generated dependencies file for test_clocking_scheme.
# This may be replaced when dependencies are built.
