file(REMOVE_RECURSE
  "CMakeFiles/test_clocking_scheme.dir/test_clocking_scheme.cpp.o"
  "CMakeFiles/test_clocking_scheme.dir/test_clocking_scheme.cpp.o.d"
  "test_clocking_scheme"
  "test_clocking_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clocking_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
