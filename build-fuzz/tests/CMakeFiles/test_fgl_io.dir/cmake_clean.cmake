file(REMOVE_RECURSE
  "CMakeFiles/test_fgl_io.dir/test_fgl_io.cpp.o"
  "CMakeFiles/test_fgl_io.dir/test_fgl_io.cpp.o.d"
  "test_fgl_io"
  "test_fgl_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fgl_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
