# Empty dependencies file for test_fgl_io.
# This may be replaced when dependencies are built.
