# Empty dependencies file for test_proptest_harness.
# This may be replaced when dependencies are built.
