file(REMOVE_RECURSE
  "CMakeFiles/test_proptest_harness.dir/test_proptest_harness.cpp.o"
  "CMakeFiles/test_proptest_harness.dir/test_proptest_harness.cpp.o.d"
  "test_proptest_harness"
  "test_proptest_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proptest_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
