# Empty dependencies file for test_hexagonalization.
# This may be replaced when dependencies are built.
