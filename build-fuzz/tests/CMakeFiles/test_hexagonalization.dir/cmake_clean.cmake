file(REMOVE_RECURSE
  "CMakeFiles/test_hexagonalization.dir/test_hexagonalization.cpp.o"
  "CMakeFiles/test_hexagonalization.dir/test_hexagonalization.cpp.o.d"
  "test_hexagonalization"
  "test_hexagonalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hexagonalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
