file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_printer.dir/test_ascii_printer.cpp.o"
  "CMakeFiles/test_ascii_printer.dir/test_ascii_printer.cpp.o.d"
  "test_ascii_printer"
  "test_ascii_printer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
