# Empty compiler generated dependencies file for test_ascii_printer.
# This may be replaced when dependencies are built.
