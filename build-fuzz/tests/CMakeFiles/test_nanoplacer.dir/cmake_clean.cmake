file(REMOVE_RECURSE
  "CMakeFiles/test_nanoplacer.dir/test_nanoplacer.cpp.o"
  "CMakeFiles/test_nanoplacer.dir/test_nanoplacer.cpp.o.d"
  "test_nanoplacer"
  "test_nanoplacer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nanoplacer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
