# Empty compiler generated dependencies file for test_nanoplacer.
# This may be replaced when dependencies are built.
