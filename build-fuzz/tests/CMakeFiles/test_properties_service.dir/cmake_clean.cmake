file(REMOVE_RECURSE
  "CMakeFiles/test_properties_service.dir/test_properties_service.cpp.o"
  "CMakeFiles/test_properties_service.dir/test_properties_service.cpp.o.d"
  "test_properties_service"
  "test_properties_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
