file(REMOVE_RECURSE
  "CMakeFiles/test_optimization.dir/test_optimization.cpp.o"
  "CMakeFiles/test_optimization.dir/test_optimization.cpp.o.d"
  "test_optimization"
  "test_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
