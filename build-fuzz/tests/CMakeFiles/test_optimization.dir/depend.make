# Empty dependencies file for test_optimization.
# This may be replaced when dependencies are built.
