file(REMOVE_RECURSE
  "CMakeFiles/test_post_layout_optimization.dir/test_post_layout_optimization.cpp.o"
  "CMakeFiles/test_post_layout_optimization.dir/test_post_layout_optimization.cpp.o.d"
  "test_post_layout_optimization"
  "test_post_layout_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_post_layout_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
