# Empty compiler generated dependencies file for test_post_layout_optimization.
# This may be replaced when dependencies are built.
