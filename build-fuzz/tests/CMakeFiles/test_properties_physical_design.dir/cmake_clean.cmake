file(REMOVE_RECURSE
  "CMakeFiles/test_properties_physical_design.dir/test_properties_physical_design.cpp.o"
  "CMakeFiles/test_properties_physical_design.dir/test_properties_physical_design.cpp.o.d"
  "test_properties_physical_design"
  "test_properties_physical_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_physical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
