# Empty dependencies file for test_properties_physical_design.
# This may be replaced when dependencies are built.
