file(REMOVE_RECURSE
  "CMakeFiles/test_service_store.dir/test_service_store.cpp.o"
  "CMakeFiles/test_service_store.dir/test_service_store.cpp.o.d"
  "test_service_store"
  "test_service_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
