# Empty compiler generated dependencies file for test_service_store.
# This may be replaced when dependencies are built.
