# Empty dependencies file for test_malformed_inputs.
# This may be replaced when dependencies are built.
