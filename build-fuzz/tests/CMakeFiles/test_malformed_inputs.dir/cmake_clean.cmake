file(REMOVE_RECURSE
  "CMakeFiles/test_malformed_inputs.dir/test_malformed_inputs.cpp.o"
  "CMakeFiles/test_malformed_inputs.dir/test_malformed_inputs.cpp.o.d"
  "test_malformed_inputs"
  "test_malformed_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_malformed_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
