# Empty dependencies file for test_gate_level_layout.
# This may be replaced when dependencies are built.
