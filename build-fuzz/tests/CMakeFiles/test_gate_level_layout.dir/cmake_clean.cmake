file(REMOVE_RECURSE
  "CMakeFiles/test_gate_level_layout.dir/test_gate_level_layout.cpp.o"
  "CMakeFiles/test_gate_level_layout.dir/test_gate_level_layout.cpp.o.d"
  "test_gate_level_layout"
  "test_gate_level_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_level_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
