# Empty compiler generated dependencies file for test_cell_drc.
# This may be replaced when dependencies are built.
