file(REMOVE_RECURSE
  "CMakeFiles/test_cell_drc.dir/test_cell_drc.cpp.o"
  "CMakeFiles/test_cell_drc.dir/test_cell_drc.cpp.o.d"
  "test_cell_drc"
  "test_cell_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
