# Empty dependencies file for test_properties_io.
# This may be replaced when dependencies are built.
