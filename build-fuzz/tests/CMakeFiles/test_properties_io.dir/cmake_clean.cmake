file(REMOVE_RECURSE
  "CMakeFiles/test_properties_io.dir/test_properties_io.cpp.o"
  "CMakeFiles/test_properties_io.dir/test_properties_io.cpp.o.d"
  "test_properties_io"
  "test_properties_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
