file(REMOVE_RECURSE
  "CMakeFiles/test_logic_network.dir/test_logic_network.cpp.o"
  "CMakeFiles/test_logic_network.dir/test_logic_network.cpp.o.d"
  "test_logic_network"
  "test_logic_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
