# Empty dependencies file for test_logic_network.
# This may be replaced when dependencies are built.
