file(REMOVE_RECURSE
  "CMakeFiles/test_storage_differential.dir/test_storage_differential.cpp.o"
  "CMakeFiles/test_storage_differential.dir/test_storage_differential.cpp.o.d"
  "test_storage_differential"
  "test_storage_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
