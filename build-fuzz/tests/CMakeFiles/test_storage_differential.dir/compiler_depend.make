# Empty compiler generated dependencies file for test_storage_differential.
# This may be replaced when dependencies are built.
