file(REMOVE_RECURSE
  "CMakeFiles/test_service_query.dir/test_service_query.cpp.o"
  "CMakeFiles/test_service_query.dir/test_service_query.cpp.o.d"
  "test_service_query"
  "test_service_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
