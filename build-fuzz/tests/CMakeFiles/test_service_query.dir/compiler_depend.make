# Empty compiler generated dependencies file for test_service_query.
# This may be replaced when dependencies are built.
