# Empty dependencies file for test_net_surgery.
# This may be replaced when dependencies are built.
