file(REMOVE_RECURSE
  "CMakeFiles/test_net_surgery.dir/test_net_surgery.cpp.o"
  "CMakeFiles/test_net_surgery.dir/test_net_surgery.cpp.o.d"
  "test_net_surgery"
  "test_net_surgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_surgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
