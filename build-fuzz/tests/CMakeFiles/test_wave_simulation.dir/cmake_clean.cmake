file(REMOVE_RECURSE
  "CMakeFiles/test_wave_simulation.dir/test_wave_simulation.cpp.o"
  "CMakeFiles/test_wave_simulation.dir/test_wave_simulation.cpp.o.d"
  "test_wave_simulation"
  "test_wave_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
