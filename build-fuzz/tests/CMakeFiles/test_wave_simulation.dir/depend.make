# Empty dependencies file for test_wave_simulation.
# This may be replaced when dependencies are built.
