file(REMOVE_RECURSE
  "CMakeFiles/test_gate_type.dir/test_gate_type.cpp.o"
  "CMakeFiles/test_gate_type.dir/test_gate_type.cpp.o.d"
  "test_gate_type"
  "test_gate_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
