# Empty compiler generated dependencies file for test_gate_type.
# This may be replaced when dependencies are built.
