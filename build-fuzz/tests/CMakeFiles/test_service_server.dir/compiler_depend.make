# Empty compiler generated dependencies file for test_service_server.
# This may be replaced when dependencies are built.
