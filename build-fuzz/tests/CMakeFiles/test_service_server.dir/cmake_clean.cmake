file(REMOVE_RECURSE
  "CMakeFiles/test_service_server.dir/test_service_server.cpp.o"
  "CMakeFiles/test_service_server.dir/test_service_server.cpp.o.d"
  "test_service_server"
  "test_service_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
