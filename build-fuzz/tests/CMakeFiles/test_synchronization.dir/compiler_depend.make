# Empty compiler generated dependencies file for test_synchronization.
# This may be replaced when dependencies are built.
