file(REMOVE_RECURSE
  "CMakeFiles/test_synchronization.dir/test_synchronization.cpp.o"
  "CMakeFiles/test_synchronization.dir/test_synchronization.cpp.o.d"
  "test_synchronization"
  "test_synchronization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synchronization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
