file(REMOVE_RECURSE
  "CMakeFiles/test_cell_readers.dir/test_cell_readers.cpp.o"
  "CMakeFiles/test_cell_readers.dir/test_cell_readers.cpp.o.d"
  "test_cell_readers"
  "test_cell_readers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
