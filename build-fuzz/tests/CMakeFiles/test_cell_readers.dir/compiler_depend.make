# Empty compiler generated dependencies file for test_cell_readers.
# This may be replaced when dependencies are built.
