file(REMOVE_RECURSE
  "CMakeFiles/test_json_export.dir/test_json_export.cpp.o"
  "CMakeFiles/test_json_export.dir/test_json_export.cpp.o.d"
  "test_json_export"
  "test_json_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
