# Empty compiler generated dependencies file for test_json_export.
# This may be replaced when dependencies are built.
