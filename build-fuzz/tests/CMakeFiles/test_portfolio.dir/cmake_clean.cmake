file(REMOVE_RECURSE
  "CMakeFiles/test_portfolio.dir/test_portfolio.cpp.o"
  "CMakeFiles/test_portfolio.dir/test_portfolio.cpp.o.d"
  "test_portfolio"
  "test_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
