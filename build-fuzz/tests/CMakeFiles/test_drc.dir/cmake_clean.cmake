file(REMOVE_RECURSE
  "CMakeFiles/test_drc.dir/test_drc.cpp.o"
  "CMakeFiles/test_drc.dir/test_drc.cpp.o.d"
  "test_drc"
  "test_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
