# Empty compiler generated dependencies file for test_drc.
# This may be replaced when dependencies are built.
