# Empty dependencies file for test_input_ordering.
# This may be replaced when dependencies are built.
