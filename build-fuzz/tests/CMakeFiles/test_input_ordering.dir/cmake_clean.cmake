file(REMOVE_RECURSE
  "CMakeFiles/test_input_ordering.dir/test_input_ordering.cpp.o"
  "CMakeFiles/test_input_ordering.dir/test_input_ordering.cpp.o.d"
  "test_input_ordering"
  "test_input_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
