file(REMOVE_RECURSE
  "CMakeFiles/test_ortho.dir/test_ortho.cpp.o"
  "CMakeFiles/test_ortho.dir/test_ortho.cpp.o.d"
  "test_ortho"
  "test_ortho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ortho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
