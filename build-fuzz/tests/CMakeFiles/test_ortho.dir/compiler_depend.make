# Empty compiler generated dependencies file for test_ortho.
# This may be replaced when dependencies are built.
