# Empty dependencies file for test_layout_utils.
# This may be replaced when dependencies are built.
