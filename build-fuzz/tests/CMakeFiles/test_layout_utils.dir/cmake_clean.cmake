file(REMOVE_RECURSE
  "CMakeFiles/test_layout_utils.dir/test_layout_utils.cpp.o"
  "CMakeFiles/test_layout_utils.dir/test_layout_utils.cpp.o.d"
  "test_layout_utils"
  "test_layout_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
