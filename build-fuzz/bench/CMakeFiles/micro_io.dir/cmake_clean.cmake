file(REMOVE_RECURSE
  "CMakeFiles/micro_io.dir/micro_io.cpp.o"
  "CMakeFiles/micro_io.dir/micro_io.cpp.o.d"
  "micro_io"
  "micro_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
