# Empty compiler generated dependencies file for micro_io.
# This may be replaced when dependencies are built.
