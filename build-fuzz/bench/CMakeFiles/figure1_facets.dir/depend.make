# Empty dependencies file for figure1_facets.
# This may be replaced when dependencies are built.
