file(REMOVE_RECURSE
  "CMakeFiles/figure1_facets.dir/figure1_facets.cpp.o"
  "CMakeFiles/figure1_facets.dir/figure1_facets.cpp.o.d"
  "figure1_facets"
  "figure1_facets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_facets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
