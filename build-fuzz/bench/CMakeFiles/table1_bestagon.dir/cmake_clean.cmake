file(REMOVE_RECURSE
  "CMakeFiles/table1_bestagon.dir/table1_bestagon.cpp.o"
  "CMakeFiles/table1_bestagon.dir/table1_bestagon.cpp.o.d"
  "table1_bestagon"
  "table1_bestagon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bestagon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
