# Empty compiler generated dependencies file for table1_bestagon.
# This may be replaced when dependencies are built.
