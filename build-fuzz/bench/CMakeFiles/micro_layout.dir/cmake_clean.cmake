file(REMOVE_RECURSE
  "CMakeFiles/micro_layout.dir/micro_layout.cpp.o"
  "CMakeFiles/micro_layout.dir/micro_layout.cpp.o.d"
  "micro_layout"
  "micro_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
