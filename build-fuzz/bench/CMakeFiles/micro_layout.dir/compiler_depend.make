# Empty compiler generated dependencies file for micro_layout.
# This may be replaced when dependencies are built.
