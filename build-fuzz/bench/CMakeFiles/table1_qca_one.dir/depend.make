# Empty dependencies file for table1_qca_one.
# This may be replaced when dependencies are built.
