file(REMOVE_RECURSE
  "CMakeFiles/table1_qca_one.dir/table1_qca_one.cpp.o"
  "CMakeFiles/table1_qca_one.dir/table1_qca_one.cpp.o.d"
  "table1_qca_one"
  "table1_qca_one.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_qca_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
