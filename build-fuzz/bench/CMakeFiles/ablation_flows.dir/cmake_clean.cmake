file(REMOVE_RECURSE
  "CMakeFiles/ablation_flows.dir/ablation_flows.cpp.o"
  "CMakeFiles/ablation_flows.dir/ablation_flows.cpp.o.d"
  "ablation_flows"
  "ablation_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
