# Empty compiler generated dependencies file for best_of_catalog.
# This may be replaced when dependencies are built.
