file(REMOVE_RECURSE
  "CMakeFiles/best_of_catalog.dir/best_of_catalog.cpp.o"
  "CMakeFiles/best_of_catalog.dir/best_of_catalog.cpp.o.d"
  "best_of_catalog"
  "best_of_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_of_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
