file(REMOVE_RECURSE
  "CMakeFiles/mnt_bench_serve.dir/mnt_bench_serve.cpp.o"
  "CMakeFiles/mnt_bench_serve.dir/mnt_bench_serve.cpp.o.d"
  "mnt_bench_serve"
  "mnt_bench_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnt_bench_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
