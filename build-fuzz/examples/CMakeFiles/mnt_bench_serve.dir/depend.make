# Empty dependencies file for mnt_bench_serve.
# This may be replaced when dependencies are built.
