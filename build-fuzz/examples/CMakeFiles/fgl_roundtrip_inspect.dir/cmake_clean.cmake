file(REMOVE_RECURSE
  "CMakeFiles/fgl_roundtrip_inspect.dir/fgl_roundtrip_inspect.cpp.o"
  "CMakeFiles/fgl_roundtrip_inspect.dir/fgl_roundtrip_inspect.cpp.o.d"
  "fgl_roundtrip_inspect"
  "fgl_roundtrip_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgl_roundtrip_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
