# Empty dependencies file for fgl_roundtrip_inspect.
# This may be replaced when dependencies are built.
