# Empty compiler generated dependencies file for mnt_bench_cli.
# This may be replaced when dependencies are built.
