file(REMOVE_RECURSE
  "CMakeFiles/mnt_bench_cli.dir/mnt_bench_cli.cpp.o"
  "CMakeFiles/mnt_bench_cli.dir/mnt_bench_cli.cpp.o.d"
  "mnt_bench_cli"
  "mnt_bench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnt_bench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
