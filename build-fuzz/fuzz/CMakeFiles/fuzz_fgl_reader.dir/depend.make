# Empty dependencies file for fuzz_fgl_reader.
# This may be replaced when dependencies are built.
