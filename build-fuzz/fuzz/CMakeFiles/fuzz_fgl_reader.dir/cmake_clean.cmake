file(REMOVE_RECURSE
  "CMakeFiles/fuzz_fgl_reader.dir/fuzz_fgl_reader.cpp.o"
  "CMakeFiles/fuzz_fgl_reader.dir/fuzz_fgl_reader.cpp.o.d"
  "CMakeFiles/fuzz_fgl_reader.dir/standalone_driver.cpp.o"
  "CMakeFiles/fuzz_fgl_reader.dir/standalone_driver.cpp.o.d"
  "fuzz_fgl_reader"
  "fuzz_fgl_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_fgl_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
