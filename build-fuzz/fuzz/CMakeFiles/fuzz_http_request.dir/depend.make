# Empty dependencies file for fuzz_http_request.
# This may be replaced when dependencies are built.
