file(REMOVE_RECURSE
  "CMakeFiles/fuzz_http_request.dir/fuzz_http_request.cpp.o"
  "CMakeFiles/fuzz_http_request.dir/fuzz_http_request.cpp.o.d"
  "CMakeFiles/fuzz_http_request.dir/standalone_driver.cpp.o"
  "CMakeFiles/fuzz_http_request.dir/standalone_driver.cpp.o.d"
  "fuzz_http_request"
  "fuzz_http_request.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_http_request.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
