file(REMOVE_RECURSE
  "CMakeFiles/fuzz_verilog_reader.dir/fuzz_verilog_reader.cpp.o"
  "CMakeFiles/fuzz_verilog_reader.dir/fuzz_verilog_reader.cpp.o.d"
  "CMakeFiles/fuzz_verilog_reader.dir/standalone_driver.cpp.o"
  "CMakeFiles/fuzz_verilog_reader.dir/standalone_driver.cpp.o.d"
  "fuzz_verilog_reader"
  "fuzz_verilog_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_verilog_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
