# Empty dependencies file for fuzz_verilog_reader.
# This may be replaced when dependencies are built.
