#pragma once

/// \file optimization.hpp
/// \brief Logic-level optimization passes applied before physical design:
///        structural hashing / common-subexpression elimination and
///        associative chain rebalancing. Smaller and shallower networks
///        yield smaller layouts across every algorithm in the portfolio.
///
/// All passes are function-preserving (enforced by the test suite through
/// equivalence checking) and keep the PI/PO interface intact.

#include "network/logic_network.hpp"

namespace mnt::ntk
{

/// Structural hashing: merges structurally identical gates (same type, same
/// fanins; commutative inputs are canonicalized). Also canonicalizes
/// trivially reducible gates: x AND x -> x, x XOR x -> 0, INV(INV(x)) -> x,
/// and majority gates with repeated inputs.
[[nodiscard]] logic_network strash(const logic_network& network);

/// Rebalances chains of the same associative gate (AND/OR/XOR) into
/// balanced trees, reducing logic depth from O(n) to O(log n). Chains are
/// only collapsed through single-fanout intermediate nodes, so shared logic
/// is never duplicated.
[[nodiscard]] logic_network balance(const logic_network& network);

/// The standard cleanup pipeline: constant propagation, structural hashing,
/// balancing, and dead-node elimination, iterated until a fixpoint (at most
/// \p max_rounds rounds).
[[nodiscard]] logic_network optimize(const logic_network& network, std::size_t max_rounds = 4);

}  // namespace mnt::ntk
