#include "network/transforms.hpp"

#include "common/types.hpp"
#include "network/network_utils.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace mnt::ntk
{

namespace
{

using node = logic_network::node;

/// Marks all nodes that transitively drive a PO.
std::vector<bool> reachable_from_pos(const logic_network& network)
{
    std::vector<bool> keep(network.size(), false);
    std::deque<node> queue;
    network.foreach_po(
        [&](const node po)
        {
            keep[po] = true;
            queue.push_back(po);
        });
    while (!queue.empty())
    {
        const auto n = queue.front();
        queue.pop_front();
        for (const auto fi : network.fanins(n))
        {
            if (!keep[fi])
            {
                keep[fi] = true;
                queue.push_back(fi);
            }
        }
    }
    return keep;
}

}  // namespace

logic_network cleanup(const logic_network& network, const bool keep_buffers)
{
    const auto keep = reachable_from_pos(network);

    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    // PIs are always kept to preserve the I/O signature
    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node || !keep[n])
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1)
            {
                return;
            }
            if (t == gate_type::po)
            {
                return;  // created last, in PO order
            }
            const auto fis = network.fanins(n);
            if ((t == gate_type::buf || t == gate_type::fanout) && !keep_buffers)
            {
                map[n] = map[fis[0]];
                return;
            }
            std::vector<node> mapped;
            mapped.reserve(fis.size());
            for (const auto fi : fis)
            {
                mapped.push_back(map[fi]);
            }
            map[n] = result.create_gate(t, mapped);
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });

    return result;
}

logic_network propagate_constants(const logic_network& network)
{
    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    const auto c0 = result.get_constant(false);
    const auto c1 = result.get_constant(true);
    map[network.get_constant(false)] = c0;
    map[network.get_constant(true)] = c1;

    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    const auto is_c0 = [&](const node n) { return n == c0; };
    const auto is_c1 = [&](const node n) { return n == c1; };
    const auto is_const = [&](const node n) { return n == c0 || n == c1; };

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1 || t == gate_type::po)
            {
                return;
            }

            const auto fis = network.fanins(n);
            const auto a = map[fis[0]];
            const auto b = fis.size() > 1 ? map[fis[1]] : logic_network::invalid_node;
            const auto c = fis.size() > 2 ? map[fis[2]] : logic_network::invalid_node;

            switch (t)
            {
                case gate_type::buf:
                case gate_type::fanout: map[n] = a; return;
                case gate_type::inv:
                    map[n] = is_c0(a) ? c1 : is_c1(a) ? c0 : result.create_not(a);
                    return;
                case gate_type::and2:
                    if (is_c0(a) || is_c0(b))
                    {
                        map[n] = c0;
                    }
                    else if (is_c1(a))
                    {
                        map[n] = b;
                    }
                    else if (is_c1(b))
                    {
                        map[n] = a;
                    }
                    else
                    {
                        map[n] = result.create_and(a, b);
                    }
                    return;
                case gate_type::or2:
                    if (is_c1(a) || is_c1(b))
                    {
                        map[n] = c1;
                    }
                    else if (is_c0(a))
                    {
                        map[n] = b;
                    }
                    else if (is_c0(b))
                    {
                        map[n] = a;
                    }
                    else
                    {
                        map[n] = result.create_or(a, b);
                    }
                    return;
                case gate_type::xor2:
                    if (is_c0(a))
                    {
                        map[n] = b;
                    }
                    else if (is_c0(b))
                    {
                        map[n] = a;
                    }
                    else if (is_c1(a))
                    {
                        map[n] = is_c1(b) ? c0 : result.create_not(b);
                    }
                    else if (is_c1(b))
                    {
                        map[n] = result.create_not(a);
                    }
                    else
                    {
                        map[n] = result.create_xor(a, b);
                    }
                    return;
                case gate_type::maj3:
                    if (is_const(a) || is_const(b) || is_const(c))
                    {
                        // maj with one constant degenerates to AND/OR of the others
                        node x = a;
                        node y = b;
                        node k = c;
                        if (is_const(a))
                        {
                            k = a;
                            x = b;
                            y = c;
                        }
                        else if (is_const(b))
                        {
                            k = b;
                            x = a;
                            y = c;
                        }
                        if (is_c0(k))
                        {
                            map[n] = (is_c0(x) || is_c0(y)) ? c0 :
                                     is_c1(x)               ? y :
                                     is_c1(y)               ? x :
                                                              result.create_and(x, y);
                        }
                        else
                        {
                            map[n] = (is_c1(x) || is_c1(y)) ? c1 :
                                     is_c0(x)               ? y :
                                     is_c0(y)               ? x :
                                                              result.create_or(x, y);
                        }
                    }
                    else
                    {
                        map[n] = result.create_maj(a, b, c);
                    }
                    return;
                default:
                {
                    // remaining binary gates: fall back to generic creation if
                    // no constant is involved, otherwise expand via basis
                    if (!is_const(a) && (b == logic_network::invalid_node || !is_const(b)))
                    {
                        std::vector<node> mapped{a};
                        if (fis.size() > 1)
                        {
                            mapped.push_back(b);
                        }
                        map[n] = result.create_gate(t, mapped);
                        return;
                    }
                    // both inputs constant: the gate is a constant itself
                    // (reachable e.g. via xnor(c0, c0) after upstream folds)
                    if (is_const(a) && (b == logic_network::invalid_node || is_const(b)))
                    {
                        map[n] = evaluate_gate(t, is_c1(a), b != logic_network::invalid_node && is_c1(b)) ? c1 : c0;
                        return;
                    }
                    // evaluate the gate for both values of the non-constant
                    // input; implement the residual function directly
                    const bool a_const = is_const(a);
                    const auto var = a_const ? b : a;
                    const bool cval = a_const ? is_c1(a) : is_c1(b);
                    const bool f0 = a_const ? evaluate_gate(t, cval, false) : evaluate_gate(t, false, cval);
                    const bool f1 = a_const ? evaluate_gate(t, cval, true) : evaluate_gate(t, true, cval);
                    if (!f0 && !f1)
                    {
                        map[n] = c0;
                    }
                    else if (f0 && f1)
                    {
                        map[n] = c1;
                    }
                    else if (!f0 && f1)
                    {
                        map[n] = var;
                    }
                    else
                    {
                        map[n] = result.create_not(var);
                    }
                    return;
                }
            }
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });

    return cleanup(result);
}

logic_network substitute_fanouts(const logic_network& network, const std::uint32_t max_degree)
{
    if (max_degree < 2)
    {
        throw precondition_error{"substitute_fanouts: max_degree must be at least 2"};
    }

    const auto fos = fanout_lists(network);

    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    // per original node: queue of available output taps in the result network
    std::vector<std::deque<node>> taps(network.size());

    // Claims one driving signal for a user of original node n. When the node
    // has more users than allowed, fanout nodes are chained: each fanout node
    // provides (max_degree - 1) additional taps while consuming one.
    const auto claim = [&](const node n) -> node
    {
        auto& q = taps[n];
        if (q.empty())
        {
            throw precondition_error{"substitute_fanouts: internal tap bookkeeping error"};
        }
        const auto s = q.front();
        q.pop_front();
        return s;
    };

    const auto provision = [&](const node n, const node mapped)
    {
        // number of users (POs included); constants may feed many users
        // without wires. Every non-fanout node may drive exactly one
        // successor on a layout; branching requires explicit fanout nodes,
        // each of which offers up to max_degree outgoing taps.
        const auto degree = static_cast<std::uint32_t>(fos[n].size());
        auto& q = taps[n];
        if (network.is_constant(n) || degree <= 1)
        {
            q.assign(degree == 0 ? 1 : degree, mapped);
            return;
        }
        // chain/tree of fanout nodes; each fanout yields max_degree outputs
        // but one is consumed to extend the chain when more taps are needed
        std::uint32_t available = 0;
        auto current = mapped;
        std::vector<node> provided;
        // the original signal itself may directly drive max_degree users only
        // if no fanout node is needed; with fanouts, the driver feeds the
        // first fanout node exclusively (FCN semantics: a gate output feeds
        // either its successors directly or a fanout element).
        std::uint32_t remaining = degree;
        while (remaining > 0)
        {
            const auto f = result.create_fanout(current);
            // a fanout node offers max_degree outputs; reserve one to chain
            // further if still more taps are needed afterwards
            const auto offers = max_degree;
            if (remaining > offers)
            {
                for (std::uint32_t i = 0; i < offers - 1; ++i)
                {
                    provided.push_back(f);
                }
                remaining -= offers - 1;
                current = f;
            }
            else
            {
                for (std::uint32_t i = 0; i < remaining; ++i)
                {
                    provided.push_back(f);
                }
                remaining = 0;
            }
        }
        available = static_cast<std::uint32_t>(provided.size());
        static_cast<void>(available);
        q.assign(provided.cbegin(), provided.cend());
    };

    network.foreach_node(
        [&](const node n)
        {
            const auto t = network.type(n);
            switch (t)
            {
                case gate_type::const0:
                case gate_type::const1:
                {
                    provision(n, map[n]);
                    return;
                }
                case gate_type::pi:
                {
                    map[n] = result.create_pi(network.name_of(n));
                    provision(n, map[n]);
                    return;
                }
                case gate_type::po: return;  // handled at the end
                default:
                {
                    const auto fis = network.fanins(n);
                    std::vector<node> mapped;
                    mapped.reserve(fis.size());
                    for (const auto fi : fis)
                    {
                        mapped.push_back(claim(fi));
                    }
                    map[n] = result.create_gate(t, mapped);
                    provision(n, map[n]);
                    return;
                }
            }
        });

    network.foreach_po([&](const node po) { result.create_po(claim(network.fanins(po)[0]), network.name_of(po)); });

    return result;
}

logic_network decompose_maj(const logic_network& network)
{
    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1 || t == gate_type::po)
            {
                return;
            }
            const auto fis = network.fanins(n);
            if (t == gate_type::maj3)
            {
                const auto ab = result.create_and(map[fis[0]], map[fis[1]]);
                const auto ac = result.create_and(map[fis[0]], map[fis[2]]);
                const auto bc = result.create_and(map[fis[1]], map[fis[2]]);
                map[n] = result.create_or(result.create_or(ab, ac), bc);
                return;
            }
            std::vector<node> mapped;
            mapped.reserve(fis.size());
            for (const auto fi : fis)
            {
                mapped.push_back(map[fi]);
            }
            map[n] = result.create_gate(t, mapped);
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });

    return result;
}

logic_network to_aoi(const logic_network& network)
{
    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1 || t == gate_type::po)
            {
                return;
            }
            const auto fis = network.fanins(n);
            const auto a = map[fis[0]];
            const auto b = fis.size() > 1 ? map[fis[1]] : logic_network::invalid_node;
            switch (t)
            {
                case gate_type::buf:
                case gate_type::fanout: map[n] = a; break;
                case gate_type::inv: map[n] = result.create_not(a); break;
                case gate_type::and2: map[n] = result.create_and(a, b); break;
                case gate_type::or2: map[n] = result.create_or(a, b); break;
                case gate_type::nand2: map[n] = result.create_not(result.create_and(a, b)); break;
                case gate_type::nor2: map[n] = result.create_not(result.create_or(a, b)); break;
                case gate_type::xor2:
                {
                    const auto l = result.create_and(a, result.create_not(b));
                    const auto r = result.create_and(result.create_not(a), b);
                    map[n] = result.create_or(l, r);
                    break;
                }
                case gate_type::xnor2:
                {
                    const auto l = result.create_and(a, b);
                    const auto r = result.create_and(result.create_not(a), result.create_not(b));
                    map[n] = result.create_or(l, r);
                    break;
                }
                case gate_type::lt2: map[n] = result.create_and(result.create_not(a), b); break;
                case gate_type::gt2: map[n] = result.create_and(a, result.create_not(b)); break;
                case gate_type::le2: map[n] = result.create_or(result.create_not(a), b); break;
                case gate_type::ge2: map[n] = result.create_or(a, result.create_not(b)); break;
                case gate_type::maj3:
                {
                    const auto c = map[fis[2]];
                    const auto ab = result.create_and(a, b);
                    const auto ac = result.create_and(a, c);
                    const auto bc = result.create_and(b, c);
                    map[n] = result.create_or(result.create_or(ab, ac), bc);
                    break;
                }
                default: break;
            }
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });

    return result;
}

}  // namespace mnt::ntk
