#include "network/logic_network.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace mnt::ntk
{

logic_network::logic_network(std::string network_name) : design_name{std::move(network_name)}
{
    nodes.push_back(node_data{gate_type::const0, {invalid_node, invalid_node, invalid_node}, 0, 0});
    nodes.push_back(node_data{gate_type::const1, {invalid_node, invalid_node, invalid_node}, 0, 0});
}

logic_network::node logic_network::get_constant(const bool value) const noexcept
{
    return value ? 1u : 0u;
}

void logic_network::check_node(const node n, const char* ctx) const
{
    if (n >= nodes.size())
    {
        throw precondition_error{std::string{ctx} + ": node id " + std::to_string(n) + " out of range"};
    }
}

logic_network::node logic_network::add_node(const gate_type t, const std::span<const node> fanin_nodes)
{
    if (fanin_nodes.size() != gate_arity(t))
    {
        throw precondition_error{std::string{"create_gate: arity mismatch for "} + std::string{gate_type_name(t)} +
                                 ": expected " + std::to_string(gate_arity(t)) + ", got " +
                                 std::to_string(fanin_nodes.size())};
    }

    node_data d{};
    d.type = t;
    d.fanin_count = static_cast<std::uint8_t>(fanin_nodes.size());
    for (std::size_t i = 0; i < fanin_nodes.size(); ++i)
    {
        check_node(fanin_nodes[i], "create_gate (fanin)");
        if (nodes[fanin_nodes[i]].type == gate_type::po)
        {
            throw precondition_error{"create_gate: primary outputs cannot drive other nodes"};
        }
        d.fanin[i] = fanin_nodes[i];
    }

    const auto id = static_cast<node>(nodes.size());
    nodes.push_back(d);
    for (std::size_t i = 0; i < fanin_nodes.size(); ++i)
    {
        ++nodes[fanin_nodes[i]].fanout_count;
    }
    return id;
}

logic_network::node logic_network::create_pi(const std::string& name)
{
    auto pi_name = name;
    if (pi_name.empty())
    {
        pi_name = "pi" + std::to_string(primary_inputs.size());
    }
    if (pi_by_name.contains(pi_name))
    {
        throw precondition_error{"create_pi: duplicate input name '" + pi_name + "'"};
    }

    const auto id = add_node(gate_type::pi, {});
    primary_inputs.push_back(id);
    io_names.emplace(id, pi_name);
    pi_by_name.emplace(pi_name, id);
    return id;
}

logic_network::node logic_network::create_po(const node source, const std::string& name)
{
    auto po_name = name;
    if (po_name.empty())
    {
        po_name = "po" + std::to_string(primary_outputs.size());
    }

    const std::array<node, 1> fi{source};
    const auto id = add_node(gate_type::po, fi);
    primary_outputs.push_back(id);
    io_names.emplace(id, po_name);
    return id;
}

logic_network::node logic_network::create_buf(const node a)
{
    const std::array<node, 1> fi{a};
    return add_node(gate_type::buf, fi);
}

logic_network::node logic_network::create_fanout(const node a)
{
    const std::array<node, 1> fi{a};
    return add_node(gate_type::fanout, fi);
}

logic_network::node logic_network::create_not(const node a)
{
    const std::array<node, 1> fi{a};
    return add_node(gate_type::inv, fi);
}

#define MNT_DEFINE_BINARY(fn, gt)                                          \
    logic_network::node logic_network::fn(const node a, const node b)      \
    {                                                                      \
        const std::array<node, 2> fi{a, b};                                \
        return add_node(gate_type::gt, fi);                                \
    }

MNT_DEFINE_BINARY(create_and, and2)
MNT_DEFINE_BINARY(create_nand, nand2)
MNT_DEFINE_BINARY(create_or, or2)
MNT_DEFINE_BINARY(create_nor, nor2)
MNT_DEFINE_BINARY(create_xor, xor2)
MNT_DEFINE_BINARY(create_xnor, xnor2)
MNT_DEFINE_BINARY(create_lt, lt2)
MNT_DEFINE_BINARY(create_gt, gt2)
MNT_DEFINE_BINARY(create_le, le2)
MNT_DEFINE_BINARY(create_ge, ge2)

#undef MNT_DEFINE_BINARY

logic_network::node logic_network::create_maj(const node a, const node b, const node c)
{
    const std::array<node, 3> fi{a, b, c};
    return add_node(gate_type::maj3, fi);
}

logic_network::node logic_network::create_gate(const gate_type t, const std::span<const node> fanins)
{
    switch (t)
    {
        case gate_type::none:
        case gate_type::const0:
        case gate_type::const1:
        case gate_type::pi:
        case gate_type::po:
            throw precondition_error{"create_gate: use the dedicated interface for constants, PIs and POs"};
        default: return add_node(t, fanins);
    }
}

std::size_t logic_network::size() const noexcept
{
    return nodes.size();
}

std::size_t logic_network::num_pis() const noexcept
{
    return primary_inputs.size();
}

std::size_t logic_network::num_pos() const noexcept
{
    return primary_outputs.size();
}

std::size_t logic_network::num_gates() const noexcept
{
    return static_cast<std::size_t>(
        std::count_if(nodes.cbegin(), nodes.cend(), [](const node_data& d) { return is_logic_gate(d.type); }));
}

std::size_t logic_network::num_wires() const noexcept
{
    return static_cast<std::size_t>(std::count_if(nodes.cbegin(), nodes.cend(), [](const node_data& d)
                                                  { return d.type == gate_type::buf || d.type == gate_type::fanout; }));
}

gate_type logic_network::type(const node n) const
{
    check_node(n, "type");
    return nodes[n].type;
}

bool logic_network::is_constant(const node n) const
{
    check_node(n, "is_constant");
    return nodes[n].type == gate_type::const0 || nodes[n].type == gate_type::const1;
}

bool logic_network::is_pi(const node n) const
{
    check_node(n, "is_pi");
    return nodes[n].type == gate_type::pi;
}

bool logic_network::is_po(const node n) const
{
    check_node(n, "is_po");
    return nodes[n].type == gate_type::po;
}

std::span<const logic_network::node> logic_network::fanins(const node n) const
{
    check_node(n, "fanins");
    return {nodes[n].fanin.data(), nodes[n].fanin_count};
}

std::uint32_t logic_network::fanout_size(const node n) const
{
    check_node(n, "fanout_size");
    return nodes[n].fanout_count;
}

logic_network::node logic_network::pi_at(const std::size_t index) const
{
    if (index >= primary_inputs.size())
    {
        throw precondition_error{"pi_at: index out of range"};
    }
    return primary_inputs[index];
}

logic_network::node logic_network::po_at(const std::size_t index) const
{
    if (index >= primary_outputs.size())
    {
        throw precondition_error{"po_at: index out of range"};
    }
    return primary_outputs[index];
}

const std::vector<logic_network::node>& logic_network::pis() const noexcept
{
    return primary_inputs;
}

const std::vector<logic_network::node>& logic_network::pos() const noexcept
{
    return primary_outputs;
}

const std::string& logic_network::name_of(const node n) const
{
    check_node(n, "name_of");
    static const std::string empty{};
    const auto it = io_names.find(n);
    return it == io_names.cend() ? empty : it->second;
}

std::optional<logic_network::node> logic_network::find_pi(const std::string& name) const
{
    const auto it = pi_by_name.find(name);
    if (it == pi_by_name.cend())
    {
        return std::nullopt;
    }
    return it->second;
}

const std::string& logic_network::network_name() const noexcept
{
    return design_name;
}

void logic_network::set_network_name(std::string network_name)
{
    design_name = std::move(network_name);
}

std::vector<logic_network::node> logic_network::topological_order() const
{
    std::vector<node> order(nodes.size());
    std::iota(order.begin(), order.end(), 0u);
    return order;
}

bool logic_network::structurally_equal(const logic_network& other) const
{
    if (nodes.size() != other.nodes.size() || primary_inputs != other.primary_inputs ||
        primary_outputs != other.primary_outputs)
    {
        return false;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
    {
        if (nodes[i].type != other.nodes[i].type || nodes[i].fanin_count != other.nodes[i].fanin_count ||
            nodes[i].fanin != other.nodes[i].fanin)
        {
            return false;
        }
    }
    for (const auto& [n, name] : io_names)
    {
        const auto it = other.io_names.find(n);
        if (it == other.io_names.cend() || it->second != name)
        {
            return false;
        }
    }
    return true;
}

}  // namespace mnt::ntk
