#pragma once

/// \file transforms.hpp
/// \brief Function-preserving network transformations used as preprocessing
///        by the physical design algorithms:
///
/// - fanout substitution: bounds the fanout degree by inserting explicit
///   fanout-node trees (FCN tiles can drive at most two successors),
/// - buffer removal / cleanup: canonicalizes networks after file reading,
/// - constant propagation and dead-node elimination,
/// - majority decomposition for gate libraries without a MAJ cell.
///
/// All transforms return a fresh network; the input is never modified.

#include "network/logic_network.hpp"

#include <cstdint>

namespace mnt::ntk
{

/// Copies \p network, keeping only nodes that (transitively) drive a primary
/// output. Also removes buffer nodes (their users are reconnected to the
/// buffer's fanin) unless \p keep_buffers is true. PI/PO order and names are
/// preserved; dangling PIs are kept so that the I/O signature is unchanged.
[[nodiscard]] logic_network cleanup(const logic_network& network, bool keep_buffers = false);

/// Propagates constant inputs through the network (e.g. AND(x, 0) -> 0,
/// XOR(x, 1) -> INV(x)) and then performs a \ref cleanup.
[[nodiscard]] logic_network propagate_constants(const logic_network& network);

/// Bounds the fanout degree of every node to \p max_degree (>= 2) by
/// inserting balanced trees of explicit \ref gate_type::fanout nodes.
///
/// Physical FCN gates drive at most two wire branches, so the physical
/// design algorithms call this with max_degree = 2 before placement.
///
/// \throws precondition_error if max_degree < 2
[[nodiscard]] logic_network substitute_fanouts(const logic_network& network, std::uint32_t max_degree = 2);

/// Rewrites all MAJ gates into AND/OR 2-level networks:
/// maj(a,b,c) = (a&b) | (a&c) | (b&c). Needed for gate libraries that do not
/// provide a majority cell (e.g. Bestagon).
[[nodiscard]] logic_network decompose_maj(const logic_network& network);

/// Rewrites all gates into the {INV, AND, OR} basis: XOR/XNOR/NAND/NOR/
/// comparison gates and MAJ are expanded. Used to stress-test algorithms on
/// canonical AOI networks.
[[nodiscard]] logic_network to_aoi(const logic_network& network);

}  // namespace mnt::ntk
