#include "network/simulation.hpp"

#include "common/types.hpp"
#include "verification/simd/simd.hpp"

#include <algorithm>
#include <bit>
#include <random>

namespace mnt::ntk
{

truth_table::truth_table(const std::size_t vars_count) : vars{vars_count}
{
    if (vars > 26)
    {
        throw precondition_error{"truth_table: more than 26 variables are not supported"};
    }
    const auto words_needed = vars <= 6 ? std::size_t{1} : (std::size_t{1} << (vars - 6));
    storage.assign(words_needed, 0ull);
}

std::size_t truth_table::num_vars() const noexcept
{
    return vars;
}

std::uint64_t truth_table::num_bits() const noexcept
{
    return 1ull << vars;
}

bool truth_table::get_bit(const std::uint64_t index) const
{
    if (index >= num_bits())
    {
        throw precondition_error{"truth_table::get_bit: index out of range"};
    }
    return ((storage[index >> 6u] >> (index & 63u)) & 1ull) != 0ull;
}

void truth_table::set_bit(const std::uint64_t index, const bool value)
{
    if (index >= num_bits())
    {
        throw precondition_error{"truth_table::set_bit: index out of range"};
    }
    if (value)
    {
        storage[index >> 6u] |= (1ull << (index & 63u));
    }
    else
    {
        storage[index >> 6u] &= ~(1ull << (index & 63u));
    }
}

const std::vector<std::uint64_t>& truth_table::words() const noexcept
{
    return storage;
}

std::vector<std::uint64_t>& truth_table::words() noexcept
{
    return storage;
}

std::string truth_table::to_hex() const
{
    static constexpr char digits[] = "0123456789abcdef";
    const auto nibbles = std::max<std::uint64_t>(1, num_bits() / 4);
    std::string out;
    out.reserve(nibbles);
    for (std::uint64_t i = 0; i < nibbles; ++i)
    {
        const auto nibble_index = nibbles - 1 - i;
        const auto word = storage[(nibble_index * 4) >> 6u];
        const auto shift = (nibble_index * 4) & 63u;
        auto nib = (word >> shift) & 0xfull;
        if (num_bits() < 4)
        {
            nib &= (1ull << num_bits()) - 1ull;
        }
        out.push_back(digits[nib]);
    }
    return out;
}

std::uint64_t truth_table::count_ones() const noexcept
{
    std::uint64_t ones = 0;
    const auto total_bits = num_bits();
    for (std::size_t w = 0; w < storage.size(); ++w)
    {
        auto word = storage[w];
        if (total_bits < 64 && w == 0)
        {
            word &= (1ull << total_bits) - 1ull;
        }
        ones += static_cast<std::uint64_t>(std::popcount(word));
    }
    return ones;
}

std::vector<std::uint64_t> simulate_word(const logic_network& network, const std::vector<std::uint64_t>& pi_words)
{
    if (pi_words.size() != network.num_pis())
    {
        throw precondition_error{"simulate_word: one input word per PI required"};
    }

    std::vector<std::uint64_t> values(network.size(), 0ull);
    std::size_t pi_index = 0;

    network.foreach_node(
        [&](const logic_network::node n)
        {
            const auto t = network.type(n);
            switch (t)
            {
                case gate_type::const0: values[n] = 0ull; break;
                case gate_type::const1: values[n] = ~0ull; break;
                case gate_type::pi: values[n] = pi_words[pi_index++]; break;
                default:
                {
                    const auto fis = network.fanins(n);
                    const auto a = fis.size() > 0 ? values[fis[0]] : 0ull;
                    const auto b = fis.size() > 1 ? values[fis[1]] : 0ull;
                    const auto c = fis.size() > 2 ? values[fis[2]] : 0ull;
                    values[n] = evaluate_gate_word(t, a, b, c);
                    break;
                }
            }
        });

    std::vector<std::uint64_t> out;
    out.reserve(network.num_pos());
    network.foreach_po([&](const logic_network::node po) { out.push_back(values[po]); });
    return out;
}

std::vector<std::uint64_t> simulate_rows(const logic_network& network, const std::vector<std::uint64_t>& pi_rows,
                                         const std::size_t n)
{
    if (pi_rows.size() != network.num_pis() * n)
    {
        throw precondition_error{"simulate_rows: num_pis * n input words required"};
    }

    const auto& kernel = simd::kernels();

    std::vector<std::uint64_t> values(network.size() * n, 0ull);
    std::size_t pi_index = 0;

    network.foreach_node(
        [&](const logic_network::node node)
        {
            const auto t = network.type(node);
            auto* row = values.data() + static_cast<std::size_t>(node) * n;
            switch (t)
            {
                case gate_type::const0: break;  // already zero-initialized
                case gate_type::const1: std::fill_n(row, n, ~0ull); break;
                case gate_type::pi:
                    std::copy_n(pi_rows.data() + pi_index * n, n, row);
                    ++pi_index;
                    break;
                default:
                {
                    const auto fis = network.fanins(node);
                    const auto* a = fis.size() > 0 ? values.data() + static_cast<std::size_t>(fis[0]) * n : nullptr;
                    const auto* b = fis.size() > 1 ? values.data() + static_cast<std::size_t>(fis[1]) * n : nullptr;
                    const auto* c = fis.size() > 2 ? values.data() + static_cast<std::size_t>(fis[2]) * n : nullptr;
                    kernel.gate_row(t, row, a, b, c, n);
                    break;
                }
            }
        });

    std::vector<std::uint64_t> out;
    out.reserve(network.num_pos() * n);
    network.foreach_po(
        [&](const logic_network::node po)
        { out.insert(out.end(), values.cbegin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(po) * n),
                     values.cbegin() + static_cast<std::ptrdiff_t>((static_cast<std::size_t>(po) + 1u) * n)); });
    return out;
}

std::vector<truth_table> simulate_truth_tables(const logic_network& network)
{
    const auto k = network.num_pis();
    if (k > 26)
    {
        throw precondition_error{"simulate_truth_tables: network has more than 26 primary inputs"};
    }

    const auto total_bits = 1ull << k;
    const auto num_words = std::max<std::uint64_t>(1, total_bits / 64);

    std::vector<truth_table> tables(network.num_pos(), truth_table{k});

    // row-batched: evaluate up to `block_words` truth-table words per
    // topological pass through the simd kernels. Bit-identical to the former
    // one-word-per-pass loop (same variable patterns, pure bitwise kernels).
    constexpr std::uint64_t block_words = 256;
    std::vector<std::uint64_t> pi_rows;

    for (std::uint64_t w0 = 0; w0 < num_words; w0 += block_words)
    {
        const auto n = static_cast<std::size_t>(std::min(block_words, num_words - w0));
        pi_rows.assign(k * n, 0ull);

        // variable v pattern within a word of 64 assignments starting at w*64
        for (std::size_t v = 0; v < k; ++v)
        {
            auto* row = pi_rows.data() + v * n;
            if (v < 6)
            {
                static constexpr std::uint64_t patterns[6] = {0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
                                                              0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
                                                              0xffff0000ffff0000ull, 0xffffffff00000000ull};
                std::fill_n(row, n, patterns[v]);
            }
            else
            {
                for (std::size_t i = 0; i < n; ++i)
                {
                    const auto base_index = (w0 + i) * 64ull;
                    row[i] = ((base_index >> v) & 1ull) ? ~0ull : 0ull;
                }
            }
        }

        const auto po_rows = simulate_rows(network, pi_rows, n);
        for (std::size_t o = 0; o < network.num_pos(); ++o)
        {
            for (std::size_t i = 0; i < n; ++i)
            {
                tables[o].words()[w0 + i] = po_rows[o * n + i];
            }
        }
    }

    // mask off unused high bits for k < 6
    if (total_bits < 64)
    {
        for (auto& t : tables)
        {
            t.words()[0] &= (1ull << total_bits) - 1ull;
        }
    }

    return tables;
}

std::vector<std::uint64_t> simulate_random(const logic_network& network, const std::size_t rounds,
                                           const std::uint64_t seed)
{
    std::mt19937_64 rng{seed};
    std::vector<std::uint64_t> result;
    result.reserve(rounds * network.num_pos());

    std::vector<std::uint64_t> pi_words(network.num_pis());
    for (std::size_t r = 0; r < rounds; ++r)
    {
        std::generate(pi_words.begin(), pi_words.end(), [&rng] { return rng(); });
        const auto po_words = simulate_word(network, pi_words);
        result.insert(result.end(), po_words.cbegin(), po_words.cend());
    }
    return result;
}

}  // namespace mnt::ntk
