#pragma once

/// \file logic_network.hpp
/// \brief Technology-level logic network: the abstraction-level "Network
///        (.v)" artifact of MNT Bench.
///
/// A logic_network is a DAG of typed nodes (see \ref mnt::ntk::gate_type).
/// In contrast to AIG-style representations there are no complemented edges:
/// inverters, buffers and fan-outs are explicit nodes, because each of them
/// occupies a tile once placed on an FCN layout. Nodes are identified by
/// dense integer ids; node 0 and node 1 are always the constant-0/1 sources.

#include "network/gate_type.hpp"

#include "common/types.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace mnt::ntk
{

/// A combinational logic network with named primary inputs and outputs.
class logic_network
{
public:
    /// Node identifier. Dense, starting at 0; 0/1 are the constants.
    using node = std::uint32_t;

    /// Sentinel for "no node".
    static constexpr node invalid_node = static_cast<node>(-1);

    /// Maximum fanin arity of any node type.
    static constexpr std::size_t max_fanin_size = 3u;

    /// Constructs an empty network (containing only the two constants) with
    /// an optional design name.
    explicit logic_network(std::string network_name = "top");

    // ------------------------------------------------------------ creation

    /// Returns the node representing constant \p value.
    [[nodiscard]] node get_constant(bool value) const noexcept;

    /// Creates a primary input with the given \p name. Names must be unique;
    /// an empty name is auto-generated as "pi<k>".
    node create_pi(const std::string& name = {});

    /// Creates a primary output driven by \p source with the given \p name
    /// (auto-generated as "po<k>" when empty).
    node create_po(node source, const std::string& name = {});

    /// Creates a buffer node forwarding \p a.
    node create_buf(node a);

    /// Creates an explicit fan-out node forwarding \p a.
    node create_fanout(node a);

    /// Creates an inverter on \p a.
    node create_not(node a);

    node create_and(node a, node b);
    node create_nand(node a, node b);
    node create_or(node a, node b);
    node create_nor(node a, node b);
    node create_xor(node a, node b);
    node create_xnor(node a, node b);
    node create_lt(node a, node b);
    node create_gt(node a, node b);
    node create_le(node a, node b);
    node create_ge(node a, node b);
    node create_maj(node a, node b, node c);

    /// Generic creation: \p fanins.size() must equal gate_arity(\p t).
    ///
    /// \throws precondition_error on arity mismatch, unknown fanin ids, or
    ///         attempts to create pi/po/constant through this interface.
    node create_gate(gate_type t, std::span<const node> fanins);

    // ------------------------------------------------------------- queries

    /// Total number of nodes including constants, PIs and POs.
    [[nodiscard]] std::size_t size() const noexcept;

    [[nodiscard]] std::size_t num_pis() const noexcept;
    [[nodiscard]] std::size_t num_pos() const noexcept;

    /// Number of logic gates (see \ref is_logic_gate): the "N" column of MNT
    /// Bench's Table I counts these plus buffers/fan-outs are excluded.
    [[nodiscard]] std::size_t num_gates() const noexcept;

    /// Number of buffer + fanout nodes.
    [[nodiscard]] std::size_t num_wires() const noexcept;

    [[nodiscard]] gate_type type(node n) const;

    [[nodiscard]] bool is_constant(node n) const;
    [[nodiscard]] bool is_pi(node n) const;
    [[nodiscard]] bool is_po(node n) const;

    /// Fanins of \p n in creation order.
    [[nodiscard]] std::span<const node> fanins(node n) const;

    /// Number of nodes that reference \p n as a fanin.
    [[nodiscard]] std::uint32_t fanout_size(node n) const;

    /// The \p index-th primary input node (in creation order).
    [[nodiscard]] node pi_at(std::size_t index) const;

    /// The \p index-th primary output node (in creation order).
    [[nodiscard]] node po_at(std::size_t index) const;

    /// All primary inputs in creation order.
    [[nodiscard]] const std::vector<node>& pis() const noexcept;

    /// All primary outputs in creation order.
    [[nodiscard]] const std::vector<node>& pos() const noexcept;

    /// Name of a PI/PO node; empty for other nodes.
    [[nodiscard]] const std::string& name_of(node n) const;

    /// Looks up a PI by name.
    [[nodiscard]] std::optional<node> find_pi(const std::string& name) const;

    /// The design name given at construction.
    [[nodiscard]] const std::string& network_name() const noexcept;

    /// Overwrites the design name.
    void set_network_name(std::string network_name);

    // ----------------------------------------------------------- traversal

    /// Calls \p fn(node) for every node id in [0, size()).
    template <typename Fn>
    void foreach_node(Fn&& fn) const
    {
        for (node n = 0; n < static_cast<node>(nodes.size()); ++n)
        {
            fn(n);
        }
    }

    /// Calls \p fn(node) for every logic gate / buffer / fanout (excludes
    /// constants, PIs and POs).
    template <typename Fn>
    void foreach_gate(Fn&& fn) const
    {
        for (node n = 0; n < static_cast<node>(nodes.size()); ++n)
        {
            const auto t = nodes[n].type;
            if (is_logic_gate(t) || t == gate_type::buf || t == gate_type::fanout)
            {
                fn(n);
            }
        }
    }

    template <typename Fn>
    void foreach_pi(Fn&& fn) const
    {
        for (const auto n : primary_inputs)
        {
            fn(n);
        }
    }

    template <typename Fn>
    void foreach_po(Fn&& fn) const
    {
        for (const auto n : primary_outputs)
        {
            fn(n);
        }
    }

    /// Returns all node ids in a topological order (fanins before fanouts).
    /// Constants come first, then the remaining nodes. Because nodes can only
    /// reference already-existing nodes at creation, ascending id order *is*
    /// topological; this function exists for readability at call sites.
    [[nodiscard]] std::vector<node> topological_order() const;

    /// True if the two networks are structurally identical (same node table,
    /// same PI/PO order and names). Used by round-trip tests.
    [[nodiscard]] bool structurally_equal(const logic_network& other) const;

private:
    struct node_data
    {
        gate_type type{gate_type::none};
        std::array<node, max_fanin_size> fanin{invalid_node, invalid_node, invalid_node};
        std::uint8_t fanin_count{0};
        std::uint32_t fanout_count{0};
    };

    node add_node(gate_type t, std::span<const node> fanin_nodes);

    void check_node(node n, const char* ctx) const;

    std::vector<node_data> nodes;
    std::vector<node> primary_inputs;
    std::vector<node> primary_outputs;
    std::unordered_map<node, std::string> io_names;
    std::unordered_map<std::string, node> pi_by_name;
    std::string design_name;
};

}  // namespace mnt::ntk
