#include "network/optimization.hpp"

#include "common/types.hpp"
#include "network/network_utils.hpp"
#include "network/transforms.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <tuple>
#include <vector>

namespace mnt::ntk
{

namespace
{

using node = logic_network::node;

bool is_commutative(const gate_type t)
{
    switch (t)
    {
        case gate_type::and2:
        case gate_type::nand2:
        case gate_type::or2:
        case gate_type::nor2:
        case gate_type::xor2:
        case gate_type::xnor2:
        case gate_type::maj3: return true;
        default: return false;
    }
}

}  // namespace

logic_network strash(const logic_network& network)
{
    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    const auto c0 = result.get_constant(false);
    const auto c1 = result.get_constant(true);
    map[network.get_constant(false)] = c0;
    map[network.get_constant(true)] = c1;

    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    // (type, canonical fanins) -> representative node in the result
    std::map<std::tuple<gate_type, node, node, node>, node> table;
    // inverter pairing: representative -> its inverter in the result
    std::map<node, node> inverter_of;

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1 || t == gate_type::po)
            {
                return;
            }

            const auto fis = network.fanins(n);
            node a = map[fis[0]];
            node b = fis.size() > 1 ? map[fis[1]] : logic_network::invalid_node;
            node c = fis.size() > 2 ? map[fis[2]] : logic_network::invalid_node;

            // local simplifications on repeated inputs
            switch (t)
            {
                case gate_type::buf:
                case gate_type::fanout: map[n] = a; return;
                case gate_type::and2:
                case gate_type::or2:
                    if (a == b)
                    {
                        map[n] = a;  // x AND x = x OR x = x
                        return;
                    }
                    break;
                case gate_type::xor2:
                    if (a == b)
                    {
                        map[n] = c0;
                        return;
                    }
                    break;
                case gate_type::xnor2:
                    if (a == b)
                    {
                        map[n] = c1;
                        return;
                    }
                    break;
                case gate_type::maj3:
                    if (a == b || a == c)
                    {
                        map[n] = a;  // maj(x, x, y) = x
                        return;
                    }
                    if (b == c)
                    {
                        map[n] = b;
                        return;
                    }
                    break;
                case gate_type::inv:
                {
                    // INV(INV(x)) = x: if a is itself a known inverter output
                    for (const auto& [rep, inv] : inverter_of)
                    {
                        if (inv == a)
                        {
                            map[n] = rep;
                            return;
                        }
                    }
                    break;
                }
                default: break;
            }

            // canonicalize commutative fanins
            if (is_commutative(t))
            {
                std::array<node, 3> sorted{a, b, c};
                const auto arity = gate_arity(t);
                std::sort(sorted.begin(), sorted.begin() + arity);
                a = sorted[0];
                if (arity > 1)
                {
                    b = sorted[1];
                }
                if (arity > 2)
                {
                    c = sorted[2];
                }
            }

            const auto key = std::make_tuple(t, a, b, c);
            if (const auto it = table.find(key); it != table.cend())
            {
                map[n] = it->second;
                return;
            }

            std::vector<node> mapped{a};
            if (b != logic_network::invalid_node)
            {
                mapped.push_back(b);
            }
            if (c != logic_network::invalid_node)
            {
                mapped.push_back(c);
            }
            const auto created = result.create_gate(t, mapped);
            table.emplace(key, created);
            if (t == gate_type::inv)
            {
                inverter_of.emplace(a, created);
            }
            map[n] = created;
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });
    return cleanup(result);
}

logic_network balance(const logic_network& network)
{
    const auto fanout = fanout_lists(network);

    logic_network result{network.network_name()};
    std::vector<node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    network.foreach_pi([&](const node pi) { map[pi] = result.create_pi(network.name_of(pi)); });

    // collects the leaves of a maximal single-fanout chain of gate type t
    const auto collect_leaves = [&](const node root, const gate_type t)
    {
        std::vector<node> leaves;
        std::vector<node> stack{root};
        while (!stack.empty())
        {
            const auto n = stack.back();
            stack.pop_back();
            const auto fis = network.fanins(n);
            for (const auto fi : fis)
            {
                // descend only through same-type, single-fanout gates
                if (network.type(fi) == t && fanout[fi].size() == 1)
                {
                    stack.push_back(fi);
                }
                else
                {
                    leaves.push_back(fi);
                }
            }
        }
        return leaves;
    };

    network.foreach_node(
        [&](const node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == gate_type::pi || t == gate_type::const0 || t == gate_type::const1 || t == gate_type::po)
            {
                return;
            }
            const auto fis = network.fanins(n);

            const bool associative = t == gate_type::and2 || t == gate_type::or2 || t == gate_type::xor2;
            if (associative)
            {
                auto leaves = collect_leaves(n, t);
                if (leaves.size() > 2)
                {
                    // balanced tree over the mapped leaves (creation order =
                    // topological, so all leaves are mapped already)
                    std::vector<node> layer;
                    layer.reserve(leaves.size());
                    for (const auto leaf : leaves)
                    {
                        layer.push_back(map[leaf]);
                    }
                    while (layer.size() > 1)
                    {
                        std::vector<node> next;
                        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
                        {
                            const std::vector<node> pair{layer[i], layer[i + 1]};
                            next.push_back(result.create_gate(t, pair));
                        }
                        if (layer.size() % 2 == 1)
                        {
                            next.push_back(layer.back());
                        }
                        layer = std::move(next);
                    }
                    map[n] = layer[0];
                    return;
                }
            }

            if (t == gate_type::buf || t == gate_type::fanout)
            {
                map[n] = map[fis[0]];
                return;
            }
            std::vector<node> mapped;
            mapped.reserve(fis.size());
            for (const auto fi : fis)
            {
                mapped.push_back(map[fi]);
            }
            map[n] = result.create_gate(t, mapped);
        });

    network.foreach_po([&](const node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });
    return cleanup(result);
}

logic_network optimize(const logic_network& network, const std::size_t max_rounds)
{
    auto current = network;
    for (std::size_t round = 0; round < max_rounds; ++round)
    {
        const auto before = current.size();
        current = balance(strash(propagate_constants(current)));
        if (current.size() >= before)
        {
            break;
        }
    }
    return current;
}

}  // namespace mnt::ntk
