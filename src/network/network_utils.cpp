#include "network/network_utils.hpp"

#include <algorithm>

namespace mnt::ntk
{

std::vector<std::uint32_t> compute_levels(const logic_network& network)
{
    std::vector<std::uint32_t> levels(network.size(), 0u);
    network.foreach_node(
        [&](const logic_network::node n)
        {
            const auto fis = network.fanins(n);
            std::uint32_t lvl = 0;
            for (const auto fi : fis)
            {
                lvl = std::max(lvl, levels[fi] + 1u);
            }
            levels[n] = fis.empty() ? 0u : lvl;
        });
    return levels;
}

std::uint32_t depth(const logic_network& network)
{
    const auto levels = compute_levels(network);
    std::uint32_t d = 0;
    network.foreach_po([&](const logic_network::node po) { d = std::max(d, levels[po]); });
    return d;
}

std::vector<std::vector<logic_network::node>> fanout_lists(const logic_network& network)
{
    std::vector<std::vector<logic_network::node>> fos(network.size());
    network.foreach_node(
        [&](const logic_network::node n)
        {
            for (const auto fi : network.fanins(n))
            {
                fos[fi].push_back(n);
            }
        });
    return fos;
}

network_statistics collect_statistics(const logic_network& network)
{
    network_statistics stats{};
    stats.name = network.network_name();
    stats.num_pis = network.num_pis();
    stats.num_pos = network.num_pos();
    stats.num_gates = network.num_gates();
    stats.num_wires = network.num_wires();
    stats.depth = depth(network);
    network.foreach_node([&](const logic_network::node n)
                         { ++stats.per_type[static_cast<std::size_t>(network.type(n))]; });
    return stats;
}

std::uint32_t max_fanout_degree(const logic_network& network)
{
    std::uint32_t m = 0;
    network.foreach_node(
        [&](const logic_network::node n)
        {
            if (!network.is_po(n))
            {
                m = std::max(m, network.fanout_size(n));
            }
        });
    return m;
}

std::vector<std::string> sanity_check(const logic_network& network)
{
    std::vector<std::string> problems;

    network.foreach_node(
        [&](const logic_network::node n)
        {
            const auto t = network.type(n);
            if (t == gate_type::none)
            {
                problems.push_back("node " + std::to_string(n) + " has type 'none'");
            }
            for (const auto fi : network.fanins(n))
            {
                if (fi >= n)
                {
                    problems.push_back("node " + std::to_string(n) + " references non-preceding fanin " +
                                       std::to_string(fi));
                }
            }
        });

    network.foreach_po(
        [&](const logic_network::node po)
        {
            if (network.fanins(po).empty())
            {
                problems.push_back("PO node " + std::to_string(po) + " has no driver");
            }
        });

    if (network.num_pos() == 0)
    {
        problems.emplace_back("network has no primary outputs");
    }

    return problems;
}

}  // namespace mnt::ntk
