#pragma once

/// \file network_utils.hpp
/// \brief Analysis helpers for logic networks: levels/depth, fanout lists,
///        statistics, and the I/O/N triple reported by MNT Bench's Table I.

#include "network/logic_network.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mnt::ntk
{

/// Per-node logic level: constants and PIs are level 0; every other node is
/// 1 + max(level of fanins).
[[nodiscard]] std::vector<std::uint32_t> compute_levels(const logic_network& network);

/// Depth of the network: maximum PO level.
[[nodiscard]] std::uint32_t depth(const logic_network& network);

/// Explicit fanout adjacency: result[n] lists all nodes that have n as fanin,
/// in ascending order.
[[nodiscard]] std::vector<std::vector<logic_network::node>> fanout_lists(const logic_network& network);

/// Statistics record mirroring MNT Bench's benchmark metadata.
struct network_statistics
{
    std::string name;
    std::size_t num_pis{};
    std::size_t num_pos{};
    /// Logic gates only (no constants, PIs, POs, buffers, fan-outs): the "N"
    /// column of Table I.
    std::size_t num_gates{};
    std::size_t num_wires{};
    std::uint32_t depth{};
    /// Gate count per gate_type (indexed by static_cast<size_t>(type)).
    std::array<std::size_t, num_gate_types> per_type{};
};

/// Gathers \ref network_statistics for \p network.
[[nodiscard]] network_statistics collect_statistics(const logic_network& network);

/// Maximum fanout degree over all non-PO nodes.
[[nodiscard]] std::uint32_t max_fanout_degree(const logic_network& network);

/// Checks structural sanity: every PO has a driver, every fanin id is valid
/// and precedes its user (DAG property by-construction), every reachable node
/// has a valid type. Returns a list of human-readable problems (empty if OK).
[[nodiscard]] std::vector<std::string> sanity_check(const logic_network& network);

}  // namespace mnt::ntk
