#pragma once

/// \file gate_type.hpp
/// \brief Enumeration of the gate/node functions supported by MNT logic
///        networks and gate-level layouts, plus evaluation helpers.
///
/// The set mirrors the technology-mapped networks used by the fiction
/// framework and the gates realizable in the QCA ONE and Bestagon libraries:
/// inverters and fan-outs are explicit nodes because they occupy tiles in an
/// FCN layout — the resource the MNT Bench benchmarks measure.

#include <cstdint>
#include <string_view>

namespace mnt::ntk
{

/// Function computed by a network node or a layout tile.
enum class gate_type : std::uint8_t
{
    /// Sentinel for "no gate" (e.g. an empty layout tile).
    none = 0,
    /// Constant logic 0 source.
    const0,
    /// Constant logic 1 source.
    const1,
    /// Primary input.
    pi,
    /// Primary output (forwards its single fanin).
    po,
    /// Buffer / wire segment (identity).
    buf,
    /// Fan-out element: identity with up to two (Cartesian) or two
    /// (hexagonal) outgoing branches. Functionally identical to \ref buf but
    /// kept distinct because gate libraries implement it with a dedicated
    /// cell pattern.
    fanout,
    /// Inverter.
    inv,
    /// 2-input AND.
    and2,
    /// 2-input NAND.
    nand2,
    /// 2-input OR.
    or2,
    /// 2-input NOR.
    nor2,
    /// 2-input XOR.
    xor2,
    /// 2-input XNOR.
    xnor2,
    /// 2-input less-than (~a & b).
    lt2,
    /// 2-input greater-than (a & ~b).
    gt2,
    /// 2-input less-or-equal (~a | b).
    le2,
    /// 2-input greater-or-equal (a | ~b).
    ge2,
    /// 3-input majority.
    maj3
};

/// Number of distinct gate_type values (for table sizing).
inline constexpr std::size_t num_gate_types = static_cast<std::size_t>(gate_type::maj3) + 1u;

/// Returns the number of fanins a node of type \p t expects.
///
/// \ref gate_type::none, constants and PIs take 0; \ref gate_type::maj3
/// takes 3; all other logic functions take their natural arity.
[[nodiscard]] constexpr std::uint8_t gate_arity(const gate_type t) noexcept
{
    switch (t)
    {
        case gate_type::none:
        case gate_type::const0:
        case gate_type::const1:
        case gate_type::pi: return 0;
        case gate_type::po:
        case gate_type::buf:
        case gate_type::fanout:
        case gate_type::inv: return 1;
        case gate_type::maj3: return 3;
        default: return 2;
    }
}

/// Evaluates the Boolean function of \p t on up to three inputs.
///
/// Unused inputs are ignored. Constants evaluate to their value; \ref
/// gate_type::pi and \ref gate_type::none must not be evaluated and yield
/// false.
[[nodiscard]] constexpr bool evaluate_gate(const gate_type t, const bool a = false, const bool b = false,
                                           const bool c = false) noexcept
{
    switch (t)
    {
        case gate_type::const0: return false;
        case gate_type::const1: return true;
        case gate_type::po:
        case gate_type::buf:
        case gate_type::fanout: return a;
        case gate_type::inv: return !a;
        case gate_type::and2: return a && b;
        case gate_type::nand2: return !(a && b);
        case gate_type::or2: return a || b;
        case gate_type::nor2: return !(a || b);
        case gate_type::xor2: return a != b;
        case gate_type::xnor2: return a == b;
        case gate_type::lt2: return !a && b;
        case gate_type::gt2: return a && !b;
        case gate_type::le2: return !a || b;
        case gate_type::ge2: return a || !b;
        case gate_type::maj3: return (a && b) || (a && c) || (b && c);
        default: return false;
    }
}

/// Word-parallel variant of \ref evaluate_gate: evaluates 64 assignments at
/// once on uint64 words.
[[nodiscard]] constexpr std::uint64_t evaluate_gate_word(const gate_type t, const std::uint64_t a = 0,
                                                         const std::uint64_t b = 0,
                                                         const std::uint64_t c = 0) noexcept
{
    switch (t)
    {
        case gate_type::const0: return 0ull;
        case gate_type::const1: return ~0ull;
        case gate_type::po:
        case gate_type::buf:
        case gate_type::fanout: return a;
        case gate_type::inv: return ~a;
        case gate_type::and2: return a & b;
        case gate_type::nand2: return ~(a & b);
        case gate_type::or2: return a | b;
        case gate_type::nor2: return ~(a | b);
        case gate_type::xor2: return a ^ b;
        case gate_type::xnor2: return ~(a ^ b);
        case gate_type::lt2: return ~a & b;
        case gate_type::gt2: return a & ~b;
        case gate_type::le2: return ~a | b;
        case gate_type::ge2: return a | ~b;
        case gate_type::maj3: return (a & b) | (a & c) | (b & c);
        default: return 0ull;
    }
}

/// Returns a stable lower-case identifier for \p t (used by the .fgl format
/// and all printers). The inverse operation is \ref gate_type_from_name.
[[nodiscard]] std::string_view gate_type_name(gate_type t) noexcept;

/// Parses a gate-type identifier as produced by \ref gate_type_name.
///
/// \returns the parsed type, or \ref gate_type::none if \p name is unknown.
[[nodiscard]] gate_type gate_type_from_name(std::string_view name) noexcept;

/// True for node types that carry combinational logic or connectivity, i.e.
/// everything except \ref gate_type::none.
[[nodiscard]] constexpr bool is_valid_gate(const gate_type t) noexcept
{
    return t != gate_type::none;
}

/// True for types that represent "real" logic gates in the sense of the MNT
/// Bench node count N: excludes none, constants, PIs, POs, buffers and
/// fan-outs.
[[nodiscard]] constexpr bool is_logic_gate(const gate_type t) noexcept
{
    switch (t)
    {
        case gate_type::inv:
        case gate_type::and2:
        case gate_type::nand2:
        case gate_type::or2:
        case gate_type::nor2:
        case gate_type::xor2:
        case gate_type::xnor2:
        case gate_type::lt2:
        case gate_type::gt2:
        case gate_type::le2:
        case gate_type::ge2:
        case gate_type::maj3: return true;
        default: return false;
    }
}

/// True for types whose function is the identity (wire-like).
[[nodiscard]] constexpr bool is_wire_like(const gate_type t) noexcept
{
    return t == gate_type::buf || t == gate_type::fanout || t == gate_type::po;
}

}  // namespace mnt::ntk
