#include "network/gate_type.hpp"

#include <array>
#include <string_view>

namespace mnt::ntk
{

namespace
{

constexpr std::array<std::string_view, num_gate_types> names = {
    "none", "const0", "const1", "pi",  "po",  "buf", "fanout", "inv",  "and", "nand",
    "or",   "nor",    "xor",    "xnor", "lt",  "gt",  "le",     "ge",   "maj"};

}  // namespace

std::string_view gate_type_name(const gate_type t) noexcept
{
    const auto idx = static_cast<std::size_t>(t);
    if (idx >= names.size())
    {
        return "none";
    }
    return names[idx];
}

gate_type gate_type_from_name(const std::string_view name) noexcept
{
    for (std::size_t i = 0; i < names.size(); ++i)
    {
        if (names[i] == name)
        {
            return static_cast<gate_type>(i);
        }
    }
    // accepted aliases used by common Verilog netlists
    if (name == "not")
    {
        return gate_type::inv;
    }
    if (name == "wire" || name == "buffer")
    {
        return gate_type::buf;
    }
    if (name == "and2" || name == "AND")
    {
        return gate_type::and2;
    }
    if (name == "or2" || name == "OR")
    {
        return gate_type::or2;
    }
    if (name == "xor2" || name == "XOR")
    {
        return gate_type::xor2;
    }
    if (name == "maj3" || name == "MAJ")
    {
        return gate_type::maj3;
    }
    return gate_type::none;
}

}  // namespace mnt::ntk
