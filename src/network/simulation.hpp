#pragma once

/// \file simulation.hpp
/// \brief Bit-parallel simulation and truth-table computation for logic
///        networks. This is the semantic ground truth against which every
///        layout-producing algorithm in this repository is verified.

#include "network/logic_network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mnt::ntk
{

/// A truth table over `num_vars` variables stored as packed 64-bit words in
/// variable-minor order: bit `i` of the table is the function value under the
/// assignment whose bit `v` equals bit `v` of `i`.
class truth_table
{
public:
    /// Creates an all-zero table over \p vars variables (vars <= 26).
    explicit truth_table(std::size_t vars);

    [[nodiscard]] std::size_t num_vars() const noexcept;

    /// Number of rows, i.e. 2^num_vars.
    [[nodiscard]] std::uint64_t num_bits() const noexcept;

    [[nodiscard]] bool get_bit(std::uint64_t index) const;
    void set_bit(std::uint64_t index, bool value);

    /// Raw word storage (num_bits()/64 words, at least one).
    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept;
    [[nodiscard]] std::vector<std::uint64_t>& words() noexcept;

    /// Hex string representation (most significant word first), e.g. "8" for
    /// AND2. Useful for test expectations and debugging.
    [[nodiscard]] std::string to_hex() const;

    /// Number of satisfying assignments.
    [[nodiscard]] std::uint64_t count_ones() const noexcept;

    bool operator==(const truth_table& other) const = default;

private:
    std::size_t vars;
    std::vector<std::uint64_t> storage;
};

/// Simulates one 64-assignment word through the network.
///
/// \param network the network to simulate
/// \param pi_words one 64-bit word per primary input (assignment-parallel)
/// \returns one word per primary output, in PO creation order
/// \throws precondition_error if pi_words.size() != network.num_pis()
[[nodiscard]] std::vector<std::uint64_t> simulate_word(const logic_network& network,
                                                       const std::vector<std::uint64_t>& pi_words);

/// Row-batched variant of \ref simulate_word: simulates \p n 64-assignment
/// words per primary input in one topological pass, using the active
/// \ref mnt::simd kernels for the per-gate row evaluation.
///
/// \param pi_rows flat row-major input rows: word \c i of PI \c p lives at
///                `pi_rows[p * n + i]`; size must be num_pis() * n
/// \returns flat row-major output rows: word \c i of PO \c o at
///          `result[o * n + i]`
///
/// Bit-identical to calling \ref simulate_word once per word column — the
/// kernels are pure bitwise arithmetic; the differential property suite
/// enforces this.
[[nodiscard]] std::vector<std::uint64_t> simulate_rows(const logic_network& network,
                                                       const std::vector<std::uint64_t>& pi_rows, std::size_t n);

/// Computes complete truth tables for all primary outputs.
///
/// Feasible up to ~26 inputs (2^26 bits per signal); intended for the formal
/// equivalence checking of the small/medium benchmark functions.
///
/// \throws precondition_error if the network has more than 26 PIs
[[nodiscard]] std::vector<truth_table> simulate_truth_tables(const logic_network& network);

/// Simulates \p rounds pseudo-random 64-assignment words (deterministic in
/// \p seed) and returns the per-PO output words concatenated round-major:
/// result[r * num_pos + o]. Used for randomized equivalence on networks too
/// large for truth tables.
[[nodiscard]] std::vector<std::uint64_t> simulate_random(const logic_network& network, std::size_t rounds,
                                                         std::uint64_t seed);

}  // namespace mnt::ntk
