#pragma once

/// \file filters.hpp
/// \brief The filter machinery behind MNT Bench's web interface (Figure 1):
///        users narrow the layout collection by gate library, clocking
///        scheme, physical design algorithm and optimization algorithms,
///        and can ask for the "most optimal" (area-minimal) layout per
///        function.

#include "core/catalog.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mnt::cat
{

/// A facet query mirroring the selection boxes of the website. Empty
/// vectors mean "no restriction" on that facet.
struct filter_query
{
    /// Restrict to one benchmark set ("Trindade16", ...).
    std::optional<std::string> benchmark_set;

    /// Restrict to one function name.
    std::optional<std::string> benchmark_name;

    /// Gate libraries to include.
    std::vector<gate_library_kind> libraries;

    /// Clocking scheme names to include.
    std::vector<std::string> clockings;

    /// Physical design algorithms to include ("exact", "ortho", "NPR").
    std::vector<std::string> algorithms;

    /// Optimizations that must ALL have been applied ("PLO", "InOrd (SDN)",
    /// "45°").
    std::vector<std::string> required_optimizations;

    /// Synthetic-family ids to include (matches \ref layout_record::family;
    /// curated layouts have an empty family and never match a non-empty
    /// constraint).
    std::vector<std::string> families;

    /// Keep only the area-minimal layout per (set, function, library) —
    /// the "Most optimal: Best" switch of the web interface.
    bool best_only{false};
};

/// Canonical deterministic ordering of layout records, used by every result
/// surface (apply_filter, the service query engine, store round-trips) so
/// that pages are byte-stable across runs and processes. Records compare by
///
///   (benchmark_set, benchmark_name, library name, area, label(), clocking,
///    num_wires, num_crossings)
///
/// in that order, each ascending lexicographically/numerically. Records equal
/// on the full key keep their relative catalog insertion order (callers sort
/// with std::stable_sort).
[[nodiscard]] bool canonical_layout_less(const layout_record& a, const layout_record& b);

/// Applies \p query to the catalog's layout collection. Results are returned
/// in the canonical order of \ref canonical_layout_less (ties broken by
/// catalog insertion order), so repeated runs — in the same process or after
/// a store round-trip — produce byte-identical serializations.
[[nodiscard]] std::vector<const layout_record*> apply_filter(const catalog& cat, const filter_query& query);

/// Facet histograms over a layout selection — the counts the website shows
/// next to each filter option. The maps are ordered: iteration yields facet
/// values in ascending lexicographic (byte-wise) order of their names, so
/// serialized facet blocks are deterministic too.
struct facet_counts
{
    std::map<std::string, std::size_t> per_set;
    std::map<std::string, std::size_t> per_library;
    std::map<std::string, std::size_t> per_clocking;
    std::map<std::string, std::size_t> per_algorithm;
    std::map<std::string, std::size_t> per_optimization;
    /// Synthetic-family histogram; curated layouts (empty family) are not
    /// counted.
    std::map<std::string, std::size_t> per_family;
};

/// Computes facet histograms over \p selection.
[[nodiscard]] facet_counts compute_facets(const std::vector<const layout_record*>& selection);

/// Convenience: facets over the whole catalog.
[[nodiscard]] facet_counts compute_facets(const catalog& cat);

}  // namespace mnt::cat
