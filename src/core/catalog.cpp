#include "core/catalog.hpp"

#include "common/provenance.hpp"
#include "common/types.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <utility>

namespace mnt::cat
{

std::string gate_library_name(const gate_library_kind kind)
{
    return kind == gate_library_kind::qca_one ? "QCA ONE" : "Bestagon";
}

gate_library_kind gate_library_from_name(const std::string& name)
{
    std::string lower(name.size(), '\0');
    std::transform(name.cbegin(), name.cend(), lower.begin(),
                   [](const unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
    if (lower == "qca one" || lower == "qca_one" || lower == "qcaone" || lower == "qca")
    {
        return gate_library_kind::qca_one;
    }
    if (lower == "bestagon" || lower == "sidb")
    {
        return gate_library_kind::bestagon;
    }
    throw mnt_error{"unknown gate library '" + name + "'"};
}

std::string layout_record::label() const
{
    return prov::label(algorithm, optimizations);
}

void catalog::add_network(const std::string& set, const std::string& name, ntk::logic_network network,
                          const std::string& family)
{
    if (find_network(set, name) != nullptr)
    {
        throw precondition_error{"add_network: benchmark '" + set + "/" + name + "' is already registered"};
    }
    network_record record;
    record.benchmark_set = set;
    record.benchmark_name = name;
    record.num_pis = network.num_pis();
    record.num_pos = network.num_pos();
    record.num_gates = network.num_gates();
    record.family = family;
    record.network = std::move(network);
    network_records.push_back(std::move(record));
}

void catalog::add_layout(layout_record record)
{
    const tel::stopwatch watch;
    record.width = record.layout.width();
    record.height = record.layout.height();
    record.area = record.layout.area();
    record.num_gates = record.layout.num_gates();
    record.num_wires = record.layout.num_wires();
    record.num_crossings = record.layout.num_crossings();
    layout_records.push_back(std::move(record));
    if (tel::enabled())
    {
        tel::count("catalog.inserts");
        tel::observe("catalog.insert_s", watch.seconds());
    }
}

void catalog::add_failure(failure_record record)
{
    failure_records.push_back(std::move(record));
    tel::count("catalog.failures");
}

const std::vector<network_record>& catalog::networks() const noexcept
{
    return network_records;
}

const std::vector<layout_record>& catalog::layouts() const noexcept
{
    return layout_records;
}

const std::vector<failure_record>& catalog::failures() const noexcept
{
    return failure_records;
}

const network_record* catalog::find_network(const std::string& set, const std::string& name) const
{
    for (const auto& r : network_records)
    {
        if (r.benchmark_set == set && r.benchmark_name == name)
        {
            return &r;
        }
    }
    return nullptr;
}

std::vector<const layout_record*> catalog::layouts_of(const std::string& set, const std::string& name) const
{
    std::vector<const layout_record*> result;
    for (const auto& r : layout_records)
    {
        if (r.benchmark_set == set && r.benchmark_name == name)
        {
            result.push_back(&r);
        }
    }
    return result;
}

std::size_t catalog::num_networks() const noexcept
{
    return network_records.size();
}

std::size_t catalog::num_layouts() const noexcept
{
    return layout_records.size();
}

std::size_t catalog::num_failures() const noexcept
{
    return failure_records.size();
}

}  // namespace mnt::cat
