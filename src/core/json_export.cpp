#include "core/json_export.hpp"

#include <cstdio>
#include <sstream>

namespace mnt::cat
{

namespace
{

/// Length of the well-formed UTF-8 sequence starting at raw[i], or 0 when the
/// bytes are not valid UTF-8 (bad lead byte, truncated or malformed
/// continuation, overlong encoding, surrogate, or beyond U+10FFFF).
std::size_t utf8_sequence_length(const std::string& raw, const std::size_t i)
{
    const auto byte = [&](const std::size_t k) { return static_cast<unsigned char>(raw[k]); };
    const auto is_continuation = [&](const std::size_t k)
    { return k < raw.size() && (byte(k) & 0xC0U) == 0x80U; };

    const auto lead = byte(i);
    if (lead < 0x80U)
    {
        return 1;
    }
    if ((lead & 0xE0U) == 0xC0U)  // 2-byte sequence, U+0080..U+07FF
    {
        return lead >= 0xC2U && is_continuation(i + 1) ? 2 : 0;
    }
    if ((lead & 0xF0U) == 0xE0U)  // 3-byte sequence, U+0800..U+FFFF minus surrogates
    {
        if (!is_continuation(i + 1) || !is_continuation(i + 2))
        {
            return 0;
        }
        if (lead == 0xE0U && byte(i + 1) < 0xA0U)  // overlong
        {
            return 0;
        }
        if (lead == 0xEDU && byte(i + 1) >= 0xA0U)  // UTF-16 surrogate range
        {
            return 0;
        }
        return 3;
    }
    if ((lead & 0xF8U) == 0xF0U)  // 4-byte sequence, U+10000..U+10FFFF
    {
        if (!is_continuation(i + 1) || !is_continuation(i + 2) || !is_continuation(i + 3))
        {
            return 0;
        }
        if (lead == 0xF0U && byte(i + 1) < 0x90U)  // overlong
        {
            return 0;
        }
        if (lead > 0xF4U || (lead == 0xF4U && byte(i + 1) >= 0x90U))  // beyond U+10FFFF
        {
            return 0;
        }
        return 4;
    }
    return 0;  // continuation byte in lead position, or 0xF8..0xFF
}

}  // namespace

std::string json_escape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (std::size_t i = 0; i < raw.size();)
    {
        const auto c = static_cast<unsigned char>(raw[i]);
        switch (c)
        {
            case '"': out += "\\\""; ++i; continue;
            case '\\': out += "\\\\"; ++i; continue;
            case '\b': out += "\\b"; ++i; continue;
            case '\f': out += "\\f"; ++i; continue;
            case '\n': out += "\\n"; ++i; continue;
            case '\r': out += "\\r"; ++i; continue;
            case '\t': out += "\\t"; ++i; continue;
            default: break;
        }
        if (c < 0x20 || c == 0x7F)  // remaining control characters, incl. DEL
        {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
            ++i;
            continue;
        }
        const auto length = utf8_sequence_length(raw, i);
        if (length == 0)
        {
            // invalid byte: substitute U+FFFD (escaped, so the output stays
            // pure ASCII-or-valid-UTF-8 regardless of input) and resync at
            // the next byte
            out += "\\ufffd";
            ++i;
            continue;
        }
        out.append(raw, i, length);
        i += length;
    }
    return out;
}

namespace
{

void write_network(const network_record& n, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(n.benchmark_set) << "\", \"name\": \""
           << json_escape(n.benchmark_name) << "\", \"inputs\": " << n.num_pis << ", \"outputs\": " << n.num_pos
           << ", \"gates\": " << n.num_gates << "}";
}

void write_layout(const layout_record& r, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(r.benchmark_set) << "\", \"name\": \""
           << json_escape(r.benchmark_name) << "\", \"library\": \"" << json_escape(gate_library_name(r.library))
           << "\", \"clocking\": \"" << json_escape(r.clocking) << "\", \"algorithm\": \""
           << json_escape(r.algorithm) << "\", \"optimizations\": [";
    for (std::size_t i = 0; i < r.optimizations.size(); ++i)
    {
        output << (i == 0 ? "" : ", ") << '"' << json_escape(r.optimizations[i]) << '"';
    }
    output << "], \"width\": " << r.width << ", \"height\": " << r.height << ", \"area\": " << r.area
           << ", \"gates\": " << r.num_gates << ", \"wires\": " << r.num_wires
           << ", \"crossings\": " << r.num_crossings << ", \"runtime_s\": " << r.runtime << "}";
}

void write_failure(const failure_record& f, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(f.benchmark_set) << "\", \"name\": \""
           << json_escape(f.benchmark_name) << "\", \"library\": \"" << json_escape(gate_library_name(f.library))
           << "\", \"combination\": \"" << json_escape(f.combination) << "\", \"kind\": \""
           << json_escape(f.kind) << "\", \"message\": \"" << json_escape(f.message)
           << "\", \"elapsed_s\": " << f.elapsed_s << ", \"attempts\": " << f.attempts << "}";
}

template <typename NetworkRange, typename LayoutRange, typename FailureRange>
void write_document(const NetworkRange& networks, const LayoutRange& layouts, const FailureRange& failures,
                    std::ostream& output)
{
    output << "{\n  \"networks\": [\n";
    bool first = true;
    for (const auto& n : networks)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_network(n, output, "    ");
    }
    output << "\n  ],\n  \"layouts\": [\n";
    first = true;
    for (const auto* r : layouts)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_layout(*r, output, "    ");
    }
    output << "\n  ],\n  \"failures\": [\n";
    first = true;
    for (const auto* f : failures)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_failure(*f, output, "    ");
    }
    output << "\n  ]\n}\n";
}

}  // namespace

void write_catalog_json(const catalog& cat, std::ostream& output)
{
    std::vector<const layout_record*> all;
    all.reserve(cat.num_layouts());
    for (const auto& r : cat.layouts())
    {
        all.push_back(&r);
    }
    std::vector<const failure_record*> failed;
    failed.reserve(cat.num_failures());
    for (const auto& f : cat.failures())
    {
        failed.push_back(&f);
    }
    write_document(cat.networks(), all, failed, output);
}

void write_selection_json(const catalog& cat, const std::vector<const layout_record*>& selection,
                          std::ostream& output)
{
    // referenced networks only, in catalog order
    std::vector<network_record> networks;
    for (const auto& n : cat.networks())
    {
        for (const auto* r : selection)
        {
            if (r->benchmark_set == n.benchmark_set && r->benchmark_name == n.benchmark_name)
            {
                networks.push_back(n);
                break;
            }
        }
    }
    // failures of the selected benchmarks only
    std::vector<const failure_record*> failed;
    for (const auto& f : cat.failures())
    {
        for (const auto& n : networks)
        {
            if (f.benchmark_set == n.benchmark_set && f.benchmark_name == n.benchmark_name)
            {
                failed.push_back(&f);
                break;
            }
        }
    }
    write_document(networks, selection, failed, output);
}

std::string catalog_json_string(const catalog& cat)
{
    std::ostringstream stream;
    write_catalog_json(cat, stream);
    return stream.str();
}

}  // namespace mnt::cat
