#include "core/json_export.hpp"

#include <cstdio>
#include <sstream>

namespace mnt::cat
{

std::string json_escape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (const unsigned char c : raw)
    {
        switch (c)
        {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20)
                {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                }
                else
                {
                    out.push_back(static_cast<char>(c));
                }
                break;
        }
    }
    return out;
}

namespace
{

void write_network(const network_record& n, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(n.benchmark_set) << "\", \"name\": \""
           << json_escape(n.benchmark_name) << "\", \"inputs\": " << n.num_pis << ", \"outputs\": " << n.num_pos
           << ", \"gates\": " << n.num_gates << "}";
}

void write_layout(const layout_record& r, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(r.benchmark_set) << "\", \"name\": \""
           << json_escape(r.benchmark_name) << "\", \"library\": \"" << json_escape(gate_library_name(r.library))
           << "\", \"clocking\": \"" << json_escape(r.clocking) << "\", \"algorithm\": \""
           << json_escape(r.algorithm) << "\", \"optimizations\": [";
    for (std::size_t i = 0; i < r.optimizations.size(); ++i)
    {
        output << (i == 0 ? "" : ", ") << '"' << json_escape(r.optimizations[i]) << '"';
    }
    output << "], \"width\": " << r.width << ", \"height\": " << r.height << ", \"area\": " << r.area
           << ", \"gates\": " << r.num_gates << ", \"wires\": " << r.num_wires
           << ", \"crossings\": " << r.num_crossings << ", \"runtime_s\": " << r.runtime << "}";
}

void write_failure(const failure_record& f, std::ostream& output, const char* indent)
{
    output << indent << "{\"set\": \"" << json_escape(f.benchmark_set) << "\", \"name\": \""
           << json_escape(f.benchmark_name) << "\", \"library\": \"" << json_escape(gate_library_name(f.library))
           << "\", \"combination\": \"" << json_escape(f.combination) << "\", \"kind\": \""
           << json_escape(f.kind) << "\", \"message\": \"" << json_escape(f.message)
           << "\", \"elapsed_s\": " << f.elapsed_s << ", \"attempts\": " << f.attempts << "}";
}

template <typename NetworkRange, typename LayoutRange, typename FailureRange>
void write_document(const NetworkRange& networks, const LayoutRange& layouts, const FailureRange& failures,
                    std::ostream& output)
{
    output << "{\n  \"networks\": [\n";
    bool first = true;
    for (const auto& n : networks)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_network(n, output, "    ");
    }
    output << "\n  ],\n  \"layouts\": [\n";
    first = true;
    for (const auto* r : layouts)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_layout(*r, output, "    ");
    }
    output << "\n  ],\n  \"failures\": [\n";
    first = true;
    for (const auto* f : failures)
    {
        if (!first)
        {
            output << ",\n";
        }
        first = false;
        write_failure(*f, output, "    ");
    }
    output << "\n  ]\n}\n";
}

}  // namespace

void write_catalog_json(const catalog& cat, std::ostream& output)
{
    std::vector<const layout_record*> all;
    all.reserve(cat.num_layouts());
    for (const auto& r : cat.layouts())
    {
        all.push_back(&r);
    }
    std::vector<const failure_record*> failed;
    failed.reserve(cat.num_failures());
    for (const auto& f : cat.failures())
    {
        failed.push_back(&f);
    }
    write_document(cat.networks(), all, failed, output);
}

void write_selection_json(const catalog& cat, const std::vector<const layout_record*>& selection,
                          std::ostream& output)
{
    // referenced networks only, in catalog order
    std::vector<network_record> networks;
    for (const auto& n : cat.networks())
    {
        for (const auto* r : selection)
        {
            if (r->benchmark_set == n.benchmark_set && r->benchmark_name == n.benchmark_name)
            {
                networks.push_back(n);
                break;
            }
        }
    }
    // failures of the selected benchmarks only
    std::vector<const failure_record*> failed;
    for (const auto& f : cat.failures())
    {
        for (const auto& n : networks)
        {
            if (f.benchmark_set == n.benchmark_set && f.benchmark_name == n.benchmark_name)
            {
                failed.push_back(&f);
                break;
            }
        }
    }
    write_document(networks, selection, failed, output);
}

std::string catalog_json_string(const catalog& cat)
{
    std::ostringstream stream;
    write_catalog_json(cat, stream);
    return stream.str();
}

}  // namespace mnt::cat
