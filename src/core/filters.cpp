#include "core/filters.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace mnt::cat
{

bool canonical_layout_less(const layout_record& a, const layout_record& b)
{
    const auto key = [](const layout_record& r)
    {
        return std::tuple<const std::string&, const std::string&, std::string, std::uint64_t, std::string,
                          const std::string&, std::size_t, std::size_t>{
            r.benchmark_set, r.benchmark_name, gate_library_name(r.library), r.area,
            r.label(),       r.clocking,       r.num_wires,                  r.num_crossings};
    };
    return key(a) < key(b);
}

std::vector<const layout_record*> apply_filter(const catalog& cat, const filter_query& query)
{
    const tel::stopwatch watch;
    std::vector<const layout_record*> selection;

    for (const auto& r : cat.layouts())
    {
        if (query.benchmark_set.has_value() && r.benchmark_set != *query.benchmark_set)
        {
            continue;
        }
        if (query.benchmark_name.has_value() && r.benchmark_name != *query.benchmark_name)
        {
            continue;
        }
        if (!query.libraries.empty() &&
            std::find(query.libraries.cbegin(), query.libraries.cend(), r.library) == query.libraries.cend())
        {
            continue;
        }
        if (!query.clockings.empty() &&
            std::find(query.clockings.cbegin(), query.clockings.cend(), r.clocking) == query.clockings.cend())
        {
            continue;
        }
        if (!query.algorithms.empty() &&
            std::find(query.algorithms.cbegin(), query.algorithms.cend(), r.algorithm) == query.algorithms.cend())
        {
            continue;
        }
        if (!query.families.empty() &&
            std::find(query.families.cbegin(), query.families.cend(), r.family) == query.families.cend())
        {
            continue;
        }
        const auto has_all_opts = std::all_of(
            query.required_optimizations.cbegin(), query.required_optimizations.cend(),
            [&](const std::string& opt)
            { return std::find(r.optimizations.cbegin(), r.optimizations.cend(), opt) != r.optimizations.cend(); });
        if (!has_all_opts)
        {
            continue;
        }
        selection.push_back(&r);
    }

    if (query.best_only)
    {
        std::map<std::tuple<std::string, std::string, gate_library_kind>, const layout_record*> best;
        for (const auto* r : selection)
        {
            auto& slot = best[{r->benchmark_set, r->benchmark_name, r->library}];
            if (slot == nullptr || r->area < slot->area ||
                (r->area == slot->area && r->num_wires < slot->num_wires))
            {
                slot = r;
            }
        }
        selection.clear();
        for (const auto& [key, r] : best)
        {
            selection.push_back(r);
        }
    }

    // canonical result order (see canonical_layout_less); stable_sort keeps
    // catalog insertion order as the final tie-break
    std::stable_sort(selection.begin(), selection.end(),
                     [](const layout_record* a, const layout_record* b) { return canonical_layout_less(*a, *b); });

    if (tel::enabled())
    {
        tel::count("catalog.filter_queries");
        tel::count("catalog.filter_hits", selection.size());
        tel::observe("catalog.filter_s", watch.seconds());
    }
    return selection;
}

facet_counts compute_facets(const std::vector<const layout_record*>& selection)
{
    facet_counts facets{};
    for (const auto* r : selection)
    {
        ++facets.per_set[r->benchmark_set];
        ++facets.per_library[gate_library_name(r->library)];
        ++facets.per_clocking[r->clocking];
        ++facets.per_algorithm[r->algorithm];
        for (const auto& opt : r->optimizations)
        {
            ++facets.per_optimization[opt];
        }
        if (!r->family.empty())
        {
            ++facets.per_family[r->family];
        }
    }
    return facets;
}

facet_counts compute_facets(const catalog& cat)
{
    std::vector<const layout_record*> all;
    all.reserve(cat.num_layouts());
    for (const auto& r : cat.layouts())
    {
        all.push_back(&r);
    }
    return compute_facets(all);
}

}  // namespace mnt::cat
