#include "core/export.hpp"

#include "common/types.hpp"
#include "gate_library/bestagon.hpp"
#include "gate_library/qca_one.hpp"
#include "io/fgl_writer.hpp"
#include "io/qca_writer.hpp"
#include "io/sqd_writer.hpp"
#include "io/verilog_writer.hpp"

#include <cctype>
#include <set>

namespace mnt::cat
{

std::string sanitize_filename(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw)
    {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.')
        {
            out.push_back(c);
        }
        else if (c == ' ' || c == '_' || c == ',' || c == ':' || c == '/')
        {
            if (!out.empty() && out.back() != '_')
            {
                out.push_back('_');
            }
        }
        // other characters (e.g. the degree sign) are dropped
    }
    while (!out.empty() && out.back() == '_')
    {
        out.pop_back();
    }
    return out.empty() ? "unnamed" : out;
}

export_report export_selection(const catalog& cat, const std::vector<const layout_record*>& selection,
                               const std::filesystem::path& directory, const export_options& options)
{
    std::filesystem::create_directories(directory);
    export_report report{};

    if (options.write_networks)
    {
        std::set<std::pair<std::string, std::string>> exported;
        for (const auto* r : selection)
        {
            const auto key = std::make_pair(r->benchmark_set, r->benchmark_name);
            if (!exported.insert(key).second)
            {
                continue;
            }
            const auto* n = cat.find_network(r->benchmark_set, r->benchmark_name);
            if (n == nullptr)
            {
                report.skipped.push_back("no network registered for " + r->benchmark_set + "/" +
                                         r->benchmark_name);
                continue;
            }
            const auto path = directory / (sanitize_filename(r->benchmark_set + "_" + r->benchmark_name) + ".v");
            io::write_verilog_file(n->network, path);
            report.written.push_back(path);
        }
    }

    for (const auto* r : selection)
    {
        const auto stem = sanitize_filename(r->benchmark_set + "_" + r->benchmark_name + "_" +
                                            gate_library_name(r->library) + "_" + r->clocking + "_" + r->label());
        const auto fgl_path = directory / (stem + ".fgl");
        io::write_fgl_file(r->layout, fgl_path);
        report.written.push_back(fgl_path);

        if (options.write_cell_level)
        {
            try
            {
                if (r->library == gate_library_kind::qca_one)
                {
                    const auto cells = gl::apply_qca_one(r->layout);
                    const auto path = directory / (stem + ".qca");
                    io::write_qca_file(cells, path);
                    report.written.push_back(path);
                }
                else
                {
                    const auto cells = gl::apply_bestagon(r->layout);
                    const auto path = directory / (stem + ".sqd");
                    io::write_sqd_file(cells, path);
                    report.written.push_back(path);
                }
            }
            catch (const mnt_error& e)
            {
                report.skipped.push_back(stem + ": " + e.what());
            }
        }
    }

    return report;
}

}  // namespace mnt::cat
