#include "core/best_selection.hpp"

#include "common/provenance.hpp"

namespace mnt::cat
{

std::string baseline_label(const gate_library_kind library)
{
    return library == gate_library_kind::qca_one ? prov::label(prov::algo_ortho, {}) :
                                                   prov::label(prov::algo_ortho, {prov::opt_hexagonalization});
}

best_entry select_best(const catalog& cat, const std::string& set, const std::string& name,
                       const gate_library_kind library)
{
    best_entry entry{};
    const auto base_label = baseline_label(library);

    for (const auto* r : cat.layouts_of(set, name))
    {
        if (r->library != library)
        {
            continue;
        }
        if (entry.best == nullptr || r->area < entry.best->area ||
            (r->area == entry.best->area && r->num_wires < entry.best->num_wires))
        {
            entry.best = r;
        }
        if (r->label() == base_label)
        {
            entry.baseline = r;
        }
    }

    if (entry.best != nullptr && entry.baseline != nullptr && entry.baseline->area > 0)
    {
        entry.delta_area_percent = 100.0 *
                                   (static_cast<double>(entry.best->area) -
                                    static_cast<double>(entry.baseline->area)) /
                                   static_cast<double>(entry.baseline->area);
    }
    return entry;
}

std::vector<std::pair<const network_record*, best_entry>> best_per_function(const catalog& cat,
                                                                            const gate_library_kind library)
{
    std::vector<std::pair<const network_record*, best_entry>> result;
    for (const auto& n : cat.networks())
    {
        result.emplace_back(&n, select_best(cat, n.benchmark_set, n.benchmark_name, library));
    }
    return result;
}

}  // namespace mnt::cat
