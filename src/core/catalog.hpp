#pragma once

/// \file catalog.hpp
/// \brief The MNT Bench catalog: the data model behind the website of the
///        paper (contribution #1/#2). Stores benchmark networks and all
///        generated gate-level layouts together with their provenance, and
///        answers the filter queries of the web interface (Figure 1).

#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mnt::cat
{

/// Abstraction level of a benchmark artifact (the first facet of Figure 1).
enum class abstraction_level : std::uint8_t
{
    /// Logic network, distributed as Verilog (.v).
    network,
    /// Gate-level layout, distributed as .fgl.
    gate_level
};

/// Gate library of a layout (the second facet of Figure 1).
enum class gate_library_kind : std::uint8_t
{
    qca_one,
    bestagon
};

/// Returns "QCA ONE" / "Bestagon".
[[nodiscard]] std::string gate_library_name(gate_library_kind kind);

/// Parses a gate library name (case-insensitive).
///
/// \throws mnt::mnt_error on unknown names
[[nodiscard]] gate_library_kind gate_library_from_name(const std::string& name);

/// A benchmark network registered in the catalog.
struct network_record
{
    std::string benchmark_set;
    std::string benchmark_name;
    ntk::logic_network network;
    std::size_t num_pis{};
    std::size_t num_pos{};
    /// Logic gate count ("N" of Table I).
    std::size_t num_gates{};
    /// Synthetic-family id (empty for curated functions).
    std::string family;
};

/// A generated layout registered in the catalog — one row of the website's
/// result table.
struct layout_record
{
    std::string benchmark_set;
    std::string benchmark_name;
    gate_library_kind library{gate_library_kind::qca_one};
    /// Clocking scheme name ("2DDWave", "USE", ...).
    std::string clocking;
    /// Physical design algorithm ("exact", "ortho", "NPR").
    std::string algorithm;
    /// Applied optimizations in order ("InOrd (SDN)", "45°", "PLO").
    std::vector<std::string> optimizations;
    std::uint32_t width{};
    std::uint32_t height{};
    /// width * height — the "A" column.
    std::uint64_t area{};
    std::size_t num_gates{};
    std::size_t num_wires{};
    std::size_t num_crossings{};
    /// Generation wall-clock seconds ("t" column).
    double runtime{};
    /// Synthetic-family id of the benchmark function (empty for the curated
    /// Table I functions); the service's `family` facet keys on this.
    std::string family;
    /// Per-function generator seed within the family; 0 when not a family
    /// member.
    std::uint64_t family_seed{0};
    /// The layout itself (for download/export).
    lyt::gate_level_layout layout;

    /// Combined algorithm label as printed in Table I, e.g.
    /// "ortho, InOrd (SDN), 45°, PLO".
    [[nodiscard]] std::string label() const;
};

/// A portfolio combination that failed to produce a layout for a benchmark,
/// registered next to the layouts it would have joined — the catalog-level
/// failure manifest (the website's "why is this cell empty" column).
struct failure_record
{
    std::string benchmark_set;
    std::string benchmark_name;
    gate_library_kind library{gate_library_kind::qca_one};
    /// Combination label, e.g. "NPR@USE" or "ortho@ROW+InOrd (SDN)+45°".
    std::string combination;
    /// Outcome kind name: "timeout", "verification_failed", "oom",
    /// "internal_error" (see mnt::res::outcome_kind_name).
    std::string kind;
    /// Failure detail (exception message).
    std::string message;
    /// Wall-clock seconds spent across all attempts.
    double elapsed_s{0.0};
    /// Attempts performed before giving up.
    std::size_t attempts{1};
};

/// The catalog: benchmark networks plus generated layouts.
class catalog
{
public:
    /// Registers a benchmark network; \p family carries the synthetic-family
    /// id (empty for curated functions).
    ///
    /// \throws mnt::precondition_error on duplicate (set, name) pairs
    void add_network(const std::string& set, const std::string& name, ntk::logic_network network,
                     const std::string& family = {});

    /// Registers a generated layout. Derived metrics (width/height/area/
    /// gate counts) are filled in from the layout automatically.
    void add_layout(layout_record record);

    /// Registers a failed portfolio combination.
    void add_failure(failure_record record);

    [[nodiscard]] const std::vector<network_record>& networks() const noexcept;
    [[nodiscard]] const std::vector<layout_record>& layouts() const noexcept;
    [[nodiscard]] const std::vector<failure_record>& failures() const noexcept;

    /// Finds a registered network.
    [[nodiscard]] const network_record* find_network(const std::string& set, const std::string& name) const;

    /// All layouts of a given benchmark function.
    [[nodiscard]] std::vector<const layout_record*> layouts_of(const std::string& set,
                                                               const std::string& name) const;

    [[nodiscard]] std::size_t num_networks() const noexcept;
    [[nodiscard]] std::size_t num_layouts() const noexcept;
    [[nodiscard]] std::size_t num_failures() const noexcept;

private:
    std::vector<network_record> network_records;
    std::vector<layout_record> layout_records;
    std::vector<failure_record> failure_records;
};

}  // namespace mnt::cat
