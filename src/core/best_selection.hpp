#pragma once

/// \file best_selection.hpp
/// \brief Best-layout selection and ΔA bookkeeping — contribution #3 of the
///        paper: the most area-efficient layout per benchmark function from
///        the optimal combination of design automation tools, compared
///        against the single-tool previous state of the art.

#include "core/catalog.hpp"

#include <optional>
#include <string>
#include <vector>

namespace mnt::cat
{

/// One row of Table I: the best layout of a function under one gate library
/// plus its improvement over the baseline flow.
struct best_entry
{
    const layout_record* best{nullptr};

    /// The baseline record (the previous state-of-the-art flow: plain
    /// "ortho" for QCA ONE, "ortho, 45°" for Bestagon), if present.
    const layout_record* baseline{nullptr};

    /// (best.area - baseline.area) / baseline.area, in percent
    /// (<= 0 when the portfolio improves on the baseline).
    std::optional<double> delta_area_percent;
};

/// Baseline flow label for a library ("ortho" / "ortho, 45°").
[[nodiscard]] std::string baseline_label(gate_library_kind library);

/// Selects the area-minimal layout of (set, name) under \p library and
/// computes ΔA against the baseline flow.
///
/// \returns best_entry with best == nullptr when no layout exists
[[nodiscard]] best_entry select_best(const catalog& cat, const std::string& set, const std::string& name,
                                     gate_library_kind library);

/// Best entries for every registered network under \p library, in
/// registration order.
[[nodiscard]] std::vector<std::pair<const network_record*, best_entry>> best_per_function(const catalog& cat,
                                                                                          gate_library_kind library);

}  // namespace mnt::cat
