#pragma once

/// \file json_export.hpp
/// \brief Machine-readable catalog index — the JSON metadata the MNT Bench
///        website serves next to the downloadable benchmark files, so that
///        scripts (like the original's pip package) can query the layout
///        collection without parsing tables.

#include "core/catalog.hpp"
#include "core/filters.hpp"

#include <ostream>
#include <string>
#include <vector>

namespace mnt::cat
{

/// Escapes a string for inclusion in a JSON document. The output is always a
/// valid JSON string body regardless of input:
///
/// - `"` and `\` are backslash-escaped; control characters use the short
///   escapes (\b \f \n \r \t) where they exist and `\u00xx` otherwise
///   (DEL/0x7F included).
/// - Well-formed UTF-8 passes through verbatim; every byte that is not part
///   of a well-formed sequence (bad lead byte, truncated or overlong
///   sequence, surrogate, > U+10FFFF) is replaced by an escaped U+FFFD
///   (`�`), one replacement per invalid byte.
[[nodiscard]] std::string json_escape(const std::string& raw);

/// Writes the catalog index as a JSON document:
///
/// \code{.json}
/// {
///   "networks": [ {"set": ..., "name": ..., "inputs": n, ...}, ... ],
///   "layouts":  [ {"set": ..., "library": ..., "area": n, ...}, ... ],
///   "failures": [ {"set": ..., "combination": "NPR@USE", "kind": "timeout",
///                  "message": ..., "elapsed_s": t, "attempts": n}, ... ]
/// }
/// \endcode
void write_catalog_json(const catalog& cat, std::ostream& output);

/// Serializes only \p selection (e.g. a filter result) plus the referenced
/// networks.
void write_selection_json(const catalog& cat, const std::vector<const layout_record*>& selection,
                          std::ostream& output);

/// Convenience: whole catalog into a string.
[[nodiscard]] std::string catalog_json_string(const catalog& cat);

}  // namespace mnt::cat
