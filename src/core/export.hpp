#pragma once

/// \file export.hpp
/// \brief File export of catalog content — the "download" function of the
///        MNT Bench website: benchmark networks as Verilog, layouts as
///        .fgl, and cell-level realizations as .qca / .sqd.

#include "core/catalog.hpp"

#include <filesystem>
#include <string>
#include <vector>

namespace mnt::cat
{

/// Options of \ref export_selection.
struct export_options
{
    /// Also write the benchmark networks as Verilog (.v).
    bool write_networks{true};

    /// Also compile and write cell-level layouts (.qca for QCA ONE,
    /// .sqd for Bestagon). Requires decomposed networks for QCA ONE;
    /// incompatible layouts are skipped with a note in the report.
    bool write_cell_level{false};
};

/// Result of an export run.
struct export_report
{
    std::vector<std::filesystem::path> written;
    std::vector<std::string> skipped;  ///< human-readable skip reasons
};

/// Sanitizes a benchmark/algorithm label into a filename component.
[[nodiscard]] std::string sanitize_filename(const std::string& raw);

/// Writes the selected layouts (and optionally their networks) into
/// \p directory, creating it if needed. File names follow
/// `<set>_<name>_<library>_<clocking>_<algorithm>.<ext>`.
[[nodiscard]] export_report export_selection(const catalog& cat,
                                             const std::vector<const layout_record*>& selection,
                                             const std::filesystem::path& directory,
                                             const export_options& options = {});

}  // namespace mnt::cat
