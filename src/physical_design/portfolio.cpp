#include "physical_design/portfolio.hpp"

#include "common/provenance.hpp"
#include "common/types.hpp"
#include "network/transforms.hpp"
#include "physical_design/exact.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "network/optimization.hpp"
#include "telemetry/telemetry.hpp"
#include "verification/equivalence.hpp"
#include "verification/wave_simulation.hpp"

#include <algorithm>

namespace mnt::pd
{

namespace
{

using lyt::gate_level_layout;
using ntk::logic_network;

/// Telemetry span name of one algorithm×clocking×optimization combination,
/// e.g. "NPR@USE" or "ortho@ROW+InOrd (SDN)+45°".
std::string combo_span_name(const std::string& algorithm, const std::string& clocking,
                            const std::vector<std::string>& optimizations)
{
    std::string s = algorithm + "@" + clocking;
    for (const auto& o : optimizations)
    {
        s += "+" + o;
    }
    return s;
}

/// Placeable node count after the standard preprocessing (used for tool
/// applicability thresholds).
std::size_t placeable_nodes(const logic_network& network)
{
    const auto net = ntk::substitute_fanouts(ntk::decompose_maj(ntk::propagate_constants(network)), 2);
    std::size_t count = 0;
    net.foreach_node(
        [&](const logic_network::node v)
        {
            if (!net.is_constant(v))
            {
                ++count;
            }
        });
    return count;
}

void verify_or_throw(const logic_network& network, const gate_level_layout& layout, const std::string& label)
{
    MNT_SPAN("verify");
    const auto result = ver::check_layout_equivalence(network, layout);
    if (!result.equivalent)
    {
        throw mnt_error{"portfolio: layout produced by '" + label + "' for '" + network.network_name() +
                        "' is NOT equivalent to its specification: " + result.reason};
    }
    // small layouts get the physical (clock-phase-accurate) check on top
    if (layout.num_occupied() <= 400)
    {
        const auto wave = ver::check_wave_equivalence(network, layout);
        if (!wave.equivalent)
        {
            throw mnt_error{"portfolio: layout produced by '" + label + "' for '" + network.network_name() +
                            "' fails wave simulation: " + wave.reason};
        }
    }
}

void add_result(std::vector<layout_result>& results, const logic_network& network, gate_level_layout layout,
                std::string algorithm, std::vector<std::string> optimizations, const double runtime,
                const bool verify)
{
    layout_result r{std::move(layout), std::move(algorithm), std::move(optimizations),
                    /*clocking=*/"", runtime};
    r.clocking = r.layout.clocking().name();
    if (verify)
    {
        verify_or_throw(network, r.layout, r.label());
    }
    tel::count("portfolio.layouts");
    results.push_back(std::move(r));
}

/// Applies PLO to the given result (if budgeted) and appends the optimized
/// variant as an additional portfolio entry.
void maybe_add_plo(std::vector<layout_result>& results, const logic_network& network, const layout_result& base,
                   const portfolio_params& params)
{
    if (!params.try_plo || base.layout.num_occupied() > params.plo_max_tiles)
    {
        if (params.try_plo)
        {
            tel::count("portfolio.skipped.plo");
        }
        return;
    }
    auto opts = base.optimizations;
    opts.emplace_back(prov::opt_post_layout);
    const tel::span combo{combo_span_name(base.algorithm, base.clocking, opts)};
    const tel::stopwatch watch;
    plo_params plo{};
    plo.max_gate_moves = params.plo_max_gate_moves;
    const auto optimized = post_layout_optimization(base.layout, plo);
    if (optimized.area() >= base.layout.area())
    {
        tel::count("portfolio.plo_no_gain");
        return;  // no improvement: not a distinct portfolio entry
    }
    add_result(results, network, optimized, base.algorithm, std::move(opts),
               base.runtime + watch.seconds(), params.verify);
}

}  // namespace

std::string layout_result::label() const
{
    return prov::label(algorithm, optimizations);
}

std::vector<layout_result> run_cartesian_portfolio(const logic_network& input, const portfolio_params& params)
{
    MNT_SPAN("portfolio/cartesian");
    const auto network = params.optimize_network ? ntk::optimize(input) : input;
    std::vector<layout_result> results;
    const auto nodes = placeable_nodes(network);

    // exact on every Cartesian scheme (small functions only)
    if (params.try_exact && nodes <= params.exact_max_nodes)
    {
        for (const auto scheme : params.cartesian_schemes)
        {
            if (scheme == lyt::clocking_kind::row)
            {
                continue;  // Cartesian ROW cannot host 2-input gates
            }
            const tel::span combo{combo_span_name(prov::algo_exact, lyt::clocking_name(scheme), {})};
            exact_params ep{};
            ep.topology = lyt::layout_topology::cartesian;
            ep.scheme = scheme;
            ep.timeout_s = params.exact_timeout_s;
            ep.max_area = params.exact_max_area;
            exact_stats es{};
            auto layout = exact(network, ep, &es);
            if (es.timed_out)
            {
                tel::count("portfolio.exact_timeouts");
            }
            if (layout.has_value())
            {
                add_result(results, network, std::move(*layout), prov::algo_exact, {}, es.runtime, params.verify);
            }
        }
    }
    else if (params.try_exact)
    {
        tel::count("portfolio.skipped.exact");
    }

    // NanoPlaceR substitute on every Cartesian scheme (small/medium)
    if (params.try_nanoplacer && nodes <= params.nanoplacer_max_nodes)
    {
        for (const auto scheme : params.cartesian_schemes)
        {
            if (scheme == lyt::clocking_kind::row)
            {
                continue;
            }
            bool placed = false;
            const auto base_index = results.size();
            {
                const tel::span combo{combo_span_name(prov::algo_nanoplacer, lyt::clocking_name(scheme), {})};
                nanoplacer_params np{};
                np.topology = lyt::layout_topology::cartesian;
                np.scheme = scheme;
                np.seed = params.seed;
                np.iterations = params.nanoplacer_iterations;
                nanoplacer_stats ns{};
                auto layout = nanoplacer(network, np, &ns);
                if (layout.has_value())
                {
                    add_result(results, network, std::move(*layout), prov::algo_nanoplacer, {}, ns.runtime,
                               params.verify);
                    placed = true;
                }
                else
                {
                    tel::count("portfolio.nanoplacer_failures");
                }
            }
            if (placed)
            {
                maybe_add_plo(results, network, results[base_index], params);
            }
        }
    }
    else if (params.try_nanoplacer)
    {
        tel::count("portfolio.skipped.nanoplacer");
    }

    // ortho (2DDWave by construction)
    if (params.try_ortho)
    {
        const auto base_index = results.size();
        {
            const tel::span combo{combo_span_name(prov::algo_ortho, lyt::clocking_name(lyt::clocking_kind::twoddwave), {})};
            ortho_stats os{};
            auto layout = ortho(network, {}, &os);
            add_result(results, network, std::move(layout), prov::algo_ortho, {}, os.runtime, params.verify);
        }
        maybe_add_plo(results, network, results[base_index], params);

        if (params.try_input_ordering && network.num_pis() > 1)
        {
            const auto ordered_index = results.size();
            {
                const tel::span combo{combo_span_name(prov::algo_ortho, lyt::clocking_name(lyt::clocking_kind::twoddwave), {prov::opt_input_ordering})};
                input_ordering_params ip{};
                ip.max_orderings = params.input_orderings;
                ip.seed = params.seed;
                input_ordering_stats is{};
                auto ordered = input_ordering_ortho(network, ip, &is);
                add_result(results, network, std::move(ordered), prov::algo_ortho, {prov::opt_input_ordering},
                           is.runtime, params.verify);
            }
            maybe_add_plo(results, network, results[ordered_index], params);
        }
    }

    tel::set_gauge("portfolio.results", static_cast<double>(results.size()));
    return results;
}

std::vector<layout_result> run_hexagonal_portfolio(const logic_network& input, const portfolio_params& params)
{
    MNT_SPAN("portfolio/hexagonal");
    const auto network = params.optimize_network ? ntk::optimize(input) : input;
    std::vector<layout_result> results;
    const auto nodes = placeable_nodes(network);

    // exact directly on the hexagonal ROW grid
    if (params.try_exact && nodes <= params.exact_max_nodes)
    {
        const tel::span combo{combo_span_name(prov::algo_exact, lyt::clocking_name(lyt::clocking_kind::row), {})};
        exact_params ep{};
        ep.topology = lyt::layout_topology::hexagonal_even_row;
        ep.scheme = lyt::clocking_kind::row;
        ep.timeout_s = params.exact_timeout_s;
        ep.max_area = params.exact_max_area;
        exact_stats es{};
        auto layout = exact(network, ep, &es);
        if (es.timed_out)
        {
            tel::count("portfolio.exact_timeouts");
        }
        if (layout.has_value())
        {
            add_result(results, network, std::move(*layout), prov::algo_exact, {}, es.runtime, params.verify);
        }
    }
    else if (params.try_exact)
    {
        tel::count("portfolio.skipped.exact");
    }

    // NanoPlaceR substitute directly on the hexagonal grid (small/medium)
    if (params.try_nanoplacer && nodes <= params.nanoplacer_max_nodes)
    {
        const auto base_index = results.size();
        bool produced = false;
        {
            const tel::span combo{combo_span_name(prov::algo_nanoplacer, lyt::clocking_name(lyt::clocking_kind::row), {})};
            nanoplacer_params np{};
            np.topology = lyt::layout_topology::hexagonal_even_row;
            np.scheme = lyt::clocking_kind::row;
            np.seed = params.seed;
            np.iterations = params.nanoplacer_iterations;
            nanoplacer_stats ns{};
            auto layout = nanoplacer(network, np, &ns);
            if (layout.has_value())
            {
                add_result(results, network, std::move(*layout), prov::algo_nanoplacer, {}, ns.runtime,
                           params.verify);
                produced = true;
            }
            else
            {
                tel::count("portfolio.nanoplacer_failures");
            }
        }
        if (produced)
        {
            maybe_add_plo(results, network, results[base_index], params);
        }
    }
    else if (params.try_nanoplacer)
    {
        tel::count("portfolio.skipped.nanoplacer");
    }

    // ortho + 45° hexagonalization
    if (params.try_ortho)
    {
        {
            const auto base_index = results.size();
            {
                const tel::span combo{
                    combo_span_name(prov::algo_ortho, lyt::clocking_name(lyt::clocking_kind::row), {prov::opt_hexagonalization})};
                const tel::stopwatch watch;
                const auto cartesian = ortho(network);
                auto hex = hexagonalization(cartesian);
                add_result(results, network, std::move(hex), prov::algo_ortho, {prov::opt_hexagonalization},
                           watch.seconds(), params.verify);
            }
            maybe_add_plo(results, network, results[base_index], params);
        }

        if (params.try_input_ordering && network.num_pis() > 1)
        {
            const auto base_index = results.size();
            {
                const tel::span combo{combo_span_name(prov::algo_ortho, lyt::clocking_name(lyt::clocking_kind::row),
                                                      {prov::opt_input_ordering, prov::opt_hexagonalization})};
                const tel::stopwatch watch;
                input_ordering_params ip{};
                ip.max_orderings = params.input_orderings;
                ip.seed = params.seed;
                const auto cartesian = input_ordering_ortho(network, ip);
                auto hex = hexagonalization(cartesian);
                add_result(results, network, std::move(hex), prov::algo_ortho,
                           {prov::opt_input_ordering, prov::opt_hexagonalization}, watch.seconds(),
                           params.verify);
            }
            maybe_add_plo(results, network, results[base_index], params);
        }
    }

    tel::set_gauge("portfolio.results", static_cast<double>(results.size()));
    return results;
}

const layout_result* best_by_area(const std::vector<layout_result>& results)
{
    const layout_result* best = nullptr;
    for (const auto& r : results)
    {
        if (best == nullptr || r.layout.area() < best->layout.area() ||
            (r.layout.area() == best->layout.area() &&
             (r.layout.num_wires() < best->layout.num_wires() ||
              (r.layout.num_wires() == best->layout.num_wires() && r.label() < best->label()))))
        {
            best = &r;
        }
    }
    return best;
}

}  // namespace mnt::pd
