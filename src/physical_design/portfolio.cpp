#include "physical_design/portfolio.hpp"

#include "common/provenance.hpp"
#include "common/taskrt/taskrt.hpp"
#include "common/types.hpp"
#include "network/transforms.hpp"
#include "physical_design/exact.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "network/optimization.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/telemetry.hpp"
#include "verification/equivalence.hpp"
#include "verification/wave_simulation.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <iterator>
#include <thread>

namespace mnt::pd
{

namespace
{

using lyt::gate_level_layout;
using ntk::logic_network;

/// Telemetry span name of one algorithm×clocking×optimization combination,
/// e.g. "NPR@USE" or "ortho@ROW+InOrd (SDN)+45°". Doubles as the combination
/// label in combo_outcomes, the failure manifest, and the service layer's
/// store cache keys — one vocabulary everywhere (see provenance.hpp).
std::string combo_span_name(const std::string& algorithm, const std::string& clocking,
                            const std::vector<std::string>& optimizations)
{
    return prov::combo_label(algorithm, clocking, optimizations);
}

/// Placeable node count after the standard preprocessing (used for tool
/// applicability thresholds).
std::size_t placeable_nodes(const logic_network& network)
{
    const auto net = ntk::substitute_fanouts(ntk::decompose_maj(ntk::propagate_constants(network)), 2);
    std::size_t count = 0;
    net.foreach_node(
        [&](const logic_network::node v)
        {
            if (!net.is_constant(v))
            {
                ++count;
            }
        });
    return count;
}

void verify_or_throw(const logic_network& network, const gate_level_layout& layout, const std::string& label)
{
    MNT_SPAN("verify");
    if (MNT_FAULT_FIRES("verify.check"))
    {
        throw verification_error{"injected fault at verify.check for '" + label + "' (MNT_FAULT_INJECT)"};
    }
    const auto result = ver::check_layout_equivalence(network, layout);
    if (!result.equivalent)
    {
        throw verification_error{"portfolio: layout produced by '" + label + "' for '" + network.network_name() +
                                 "' is NOT equivalent to its specification: " + result.reason};
    }
    // small layouts get the physical (clock-phase-accurate) check on top
    if (layout.num_occupied() <= 400)
    {
        const auto wave = ver::check_wave_equivalence(network, layout);
        if (!wave.equivalent)
        {
            throw verification_error{"portfolio: layout produced by '" + label + "' for '" +
                                     network.network_name() + "' fails wave simulation: " + wave.reason};
        }
    }
}

void add_result(std::vector<layout_result>& results, const logic_network& network, gate_level_layout layout,
                std::string algorithm, std::vector<std::string> optimizations, const double runtime,
                const bool verify)
{
    layout_result r{std::move(layout), std::move(algorithm), std::move(optimizations),
                    /*clocking=*/"", runtime};
    r.clocking = r.layout.clocking().name();
    if (verify)
    {
        verify_or_throw(network, r.layout, r.label());
    }
    tel::count("portfolio.layouts");
    results.push_back(std::move(r));
}

/// Shared state of one generate_portfolio invocation, threaded through the
/// per-combination helpers.
struct combo_context
{
    const logic_network& network;
    const portfolio_params& params;
    res::guard_params guard;
    std::vector<layout_result>& results;
    std::vector<res::combo_outcome>& outcomes;
};

/// Runs one combination under run_guarded: exceptions become outcomes,
/// transient failures are retried, and results appended by a failed attempt
/// are rolled back so retries and failures never leave partial entries.
template <typename Body>
void attempt_combo(combo_context& ctx, const std::string& label, Body&& body)
{
    // incremental regeneration: a combination whose result already exists in
    // the caller's store is skipped wholesale (no outcome entry either —
    // the cached run already recorded one)
    if (ctx.params.is_cached && ctx.params.is_cached(label))
    {
        tel::count("portfolio.cache_hits");
        return;
    }

    const auto mark = ctx.results.size();
    auto outcome = res::run_guarded(label, ctx.guard,
                                    [&](const std::size_t attempt)
                                    {
                                        ctx.results.resize(mark);  // drop partial entries of a prior attempt
                                        return body(attempt);
                                    });
    if (!outcome.is_ok())
    {
        ctx.results.resize(mark);
        tel::log_event(tel::log_severity::warn, "portfolio", "combination failed",
                       {{"combo", outcome.label},
                        {"kind", res::outcome_kind_name(outcome.kind)},
                        {"attempts", std::to_string(outcome.attempts)},
                        {"detail", outcome.message}});
    }

    if (tel::enabled())
    {
        tel::count(outcome.is_ok() ? "portfolio.combos_ok" : "portfolio.combos_failed");
        if (!outcome.is_ok())
        {
            tel::count(std::string{"portfolio.failed."} + res::outcome_kind_name(outcome.kind));
            tel::add_event({"combo_failure", outcome.label, res::outcome_kind_name(outcome.kind),
                            outcome.message, outcome.elapsed_s});
        }
        if (outcome.attempts > 1)
        {
            tel::count("portfolio.retries", outcome.attempts - 1);
        }
    }
    ctx.outcomes.push_back(std::move(outcome));
}

/// exact on one scheme (both grid families).
void attempt_exact(combo_context& ctx, const lyt::layout_topology topo, const lyt::clocking_kind scheme)
{
    const auto label = combo_span_name(prov::algo_exact, lyt::clocking_name(scheme), {});
    attempt_combo(ctx, label,
                  [&](const std::size_t) -> res::outcome_kind
                  {
                      const tel::span combo{label};
                      exact_params ep{};
                      ep.topology = topo;
                      ep.scheme = scheme;
                      ep.timeout_s = ctx.params.exact_timeout_s;
                      ep.max_area = ctx.params.exact_max_area;
                      ep.deadline = ctx.guard.deadline;
                      exact_stats es{};
                      auto layout = exact(ctx.network, ep, &es);
                      if (es.timed_out)
                      {
                          tel::count("portfolio.exact_timeouts");
                          return res::outcome_kind::timeout;  // soft per-tool budget, no unwind
                      }
                      if (layout.has_value())
                      {
                          add_result(ctx.results, ctx.network, std::move(*layout), prov::algo_exact, {}, es.runtime,
                                     ctx.params.verify);
                      }
                      return res::outcome_kind::ok;
                  });
}

/// Applies PLO to results[base_index] (if budgeted) and appends the optimized
/// variant as an additional portfolio entry, as its own guarded combination.
void maybe_add_plo(combo_context& ctx, const std::size_t base_index)
{
    // copy: the results vector may reallocate during the guarded attempt
    const auto base = ctx.results[base_index];
    if (!ctx.params.try_plo || base.layout.num_occupied() > ctx.params.plo_max_tiles)
    {
        if (ctx.params.try_plo)
        {
            tel::count("portfolio.skipped.plo");
        }
        return;
    }
    auto opts = base.optimizations;
    opts.emplace_back(prov::opt_post_layout);
    const auto label = combo_span_name(base.algorithm, base.clocking, opts);
    attempt_combo(ctx, label,
                  [&](const std::size_t)
                  {
                      const tel::span combo{label};
                      const tel::stopwatch watch;
                      plo_params plo{};
                      plo.max_gate_moves = ctx.params.plo_max_gate_moves;
                      plo.deadline = ctx.guard.deadline;
                      const auto optimized = post_layout_optimization(base.layout, plo);
                      if (optimized.area() >= base.layout.area())
                      {
                          tel::count("portfolio.plo_no_gain");
                          return;  // no improvement: not a distinct portfolio entry
                      }
                      add_result(ctx.results, ctx.network, optimized, base.algorithm, opts,
                                 base.runtime + watch.seconds(), ctx.params.verify);
                  });
}

/// NanoPlaceR substitute on one scheme, with the PLO follow-up.
void attempt_nanoplacer(combo_context& ctx, const lyt::layout_topology topo, const lyt::clocking_kind scheme)
{
    const auto label = combo_span_name(prov::algo_nanoplacer, lyt::clocking_name(scheme), {});
    const auto mark = ctx.results.size();
    attempt_combo(ctx, label,
                  [&](const std::size_t attempt)
                  {
                      const tel::span combo{label};
                      nanoplacer_params np{};
                      np.topology = topo;
                      np.scheme = scheme;
                      // shifted seed per retry: a stochastic tool that failed
                      // verification deserves a genuinely different run
                      np.seed = ctx.params.seed + (attempt - 1) * 7919;
                      np.iterations = ctx.params.nanoplacer_iterations;
                      np.deadline = ctx.guard.deadline;
                      nanoplacer_stats ns{};
                      auto layout = nanoplacer(ctx.network, np, &ns);
                      if (layout.has_value())
                      {
                          add_result(ctx.results, ctx.network, std::move(*layout), prov::algo_nanoplacer, {},
                                     ns.runtime, ctx.params.verify);
                      }
                      else
                      {
                          tel::count("portfolio.nanoplacer_failures");
                      }
                  });
    if (ctx.results.size() > mark)
    {
        maybe_add_plo(ctx, mark);
    }
}

/// One ortho-family combination: plain or input-ordered, optionally
/// hexagonalized (the Bestagon path), with the PLO follow-up.
void attempt_ortho_variant(combo_context& ctx, const bool hexagonal, const bool ordered)
{
    const auto clocking =
        lyt::clocking_name(hexagonal ? lyt::clocking_kind::row : lyt::clocking_kind::twoddwave);
    std::vector<std::string> opts;
    if (ordered)
    {
        opts.emplace_back(prov::opt_input_ordering);
    }
    if (hexagonal)
    {
        opts.emplace_back(prov::opt_hexagonalization);
    }
    const auto label = combo_span_name(prov::algo_ortho, clocking, opts);
    const auto mark = ctx.results.size();
    attempt_combo(ctx, label,
                  [&](const std::size_t attempt)
                  {
                      const tel::span combo{label};
                      const tel::stopwatch watch;
                      ortho_params op{};
                      op.deadline = ctx.guard.deadline;
                      gate_level_layout cartesian = [&]
                      {
                          if (!ordered)
                          {
                              return ortho(ctx.network, op);
                          }
                          input_ordering_params ip{};
                          ip.max_orderings = ctx.params.input_orderings;
                          ip.seed = ctx.params.seed + (attempt - 1) * 7919;
                          ip.ortho = op;
                          return input_ordering_ortho(ctx.network, ip);
                      }();
                      auto layout = hexagonal ? hexagonalization(cartesian) : std::move(cartesian);
                      add_result(ctx.results, ctx.network, std::move(layout), prov::algo_ortho, opts,
                                 watch.seconds(), ctx.params.verify);
                  });
    if (ctx.results.size() > mark)
    {
        maybe_add_plo(ctx, mark);
    }
}

}  // namespace

std::string layout_result::label() const
{
    return prov::label(algorithm, optimizations);
}

std::vector<res::combo_outcome> portfolio_run::failures() const
{
    std::vector<res::combo_outcome> failed;
    for (const auto& o : outcomes)
    {
        if (!o.is_ok())
        {
            failed.push_back(o);
        }
    }
    return failed;
}

portfolio_run generate_portfolio(const logic_network& input, const portfolio_flavor flavor,
                                 const portfolio_params& params)
{
    const tel::span top{flavor == portfolio_flavor::cartesian ? "portfolio/cartesian" : "portfolio/hexagonal"};
    const auto network = params.optimize_network ? ntk::optimize(input) : input;

    res::guard_params guard{};
    if (params.deadline_s > 0.0)
    {
        guard.deadline = res::deadline_clock::after(params.deadline_s);
    }
    if (params.stop != nullptr)
    {
        guard.deadline.attach_stop(params.stop);
    }
    guard.retry.max_attempts = std::max<std::size_t>(params.max_attempts, 1);
    guard.retry.backoff_base_s = params.retry_backoff_s;
    guard.retry.seed = params.seed;

    const auto nodes = placeable_nodes(network);
    const auto exact_applicable = params.try_exact && nodes <= params.exact_max_nodes;
    const auto npr_applicable = params.try_nanoplacer && nodes <= params.nanoplacer_max_nodes;

    // every independent top-level combination (including its follow-up chain,
    // e.g. NPR → PLO) becomes one task; the task list is the unit of
    // --jobs parallelism AND the deterministic merge order
    using combo_task = std::function<void(combo_context&)>;
    std::vector<combo_task> tasks;

    const auto hexagonal = flavor == portfolio_flavor::hexagonal;
    if (flavor == portfolio_flavor::cartesian)
    {
        for (const auto scheme : params.cartesian_schemes)
        {
            if (scheme == lyt::clocking_kind::row)
            {
                continue;  // Cartesian ROW cannot host 2-input gates
            }
            if (exact_applicable)
            {
                tasks.emplace_back([scheme](combo_context& ctx)
                                   { attempt_exact(ctx, lyt::layout_topology::cartesian, scheme); });
            }
        }
        for (const auto scheme : params.cartesian_schemes)
        {
            if (scheme == lyt::clocking_kind::row)
            {
                continue;
            }
            if (npr_applicable)
            {
                tasks.emplace_back([scheme](combo_context& ctx)
                                   { attempt_nanoplacer(ctx, lyt::layout_topology::cartesian, scheme); });
            }
        }
    }
    else
    {
        if (exact_applicable)
        {
            tasks.emplace_back(
                [](combo_context& ctx)
                { attempt_exact(ctx, lyt::layout_topology::hexagonal_even_row, lyt::clocking_kind::row); });
        }
        if (npr_applicable)
        {
            tasks.emplace_back(
                [](combo_context& ctx)
                { attempt_nanoplacer(ctx, lyt::layout_topology::hexagonal_even_row, lyt::clocking_kind::row); });
        }
    }
    if (params.try_exact && !exact_applicable)
    {
        tel::count("portfolio.skipped.exact");
    }
    if (params.try_nanoplacer && !npr_applicable)
    {
        tel::count("portfolio.skipped.nanoplacer");
    }
    if (params.try_ortho)
    {
        tasks.emplace_back([hexagonal](combo_context& ctx)
                           { attempt_ortho_variant(ctx, hexagonal, /*ordered=*/false); });
        if (params.try_input_ordering && network.num_pis() > 1)
        {
            tasks.emplace_back([hexagonal](combo_context& ctx)
                               { attempt_ortho_variant(ctx, hexagonal, /*ordered=*/true); });
        }
    }

    portfolio_run run{};
    const auto jobs = std::min(std::max<std::size_t>(params.jobs, 1), std::max<std::size_t>(tasks.size(), 1));
    if (jobs <= 1)
    {
        combo_context ctx{network, params, guard, run.results, run.outcomes};
        for (const auto& task : tasks)
        {
            task(ctx);
        }
    }
    else
    {
        // each task writes into its own slot; slots are merged in task order
        // afterwards, so the output is identical to the sequential run
        struct task_slot
        {
            std::vector<layout_result> results;
            std::vector<res::combo_outcome> outcomes;
        };
        std::vector<task_slot> slots(tasks.size());

        if (trt::parallel())
        {
            // in-process thread mode: combos become tasks of the shared
            // runtime, composing with any in-algorithm parallelism (exact
            // races, NPR chains) instead of oversubscribing with a second
            // thread pool. Span adoption is handled by the runtime itself.
            trt::parallel_for(0, tasks.size(), 1,
                              [&](const std::size_t chunk_begin, const std::size_t chunk_end)
                              {
                                  for (std::size_t i = chunk_begin; i < chunk_end; ++i)
                                  {
                                      combo_context ctx{network, params, guard, slots[i].results,
                                                        slots[i].outcomes};
                                      tasks[i](ctx);
                                  }
                              });
        }
        else
        {
            // the runtime is pinned serial (--threads 1 / single-core): honor
            // the explicit --jobs request with the classic dedicated pool
            std::atomic<std::size_t> next{0};

            // workers adopt the caller's trace position, so per-combo spans
            // nest under the portfolio root exactly as in the sequential run
            // instead of surfacing as orphan per-thread roots
            const auto parent_context = tel::current_span_context();
            const auto work = [&]
            {
                const tel::context_guard adopt{parent_context};
                while (true)
                {
                    const auto i = next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= tasks.size())
                    {
                        return;
                    }
                    combo_context ctx{network, params, guard, slots[i].results, slots[i].outcomes};
                    tasks[i](ctx);
                }
            };
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (std::size_t j = 0; j < jobs; ++j)
            {
                pool.emplace_back(work);
            }
            for (auto& worker : pool)
            {
                worker.join();
            }
        }

        for (auto& slot : slots)
        {
            std::move(slot.results.begin(), slot.results.end(), std::back_inserter(run.results));
            std::move(slot.outcomes.begin(), slot.outcomes.end(), std::back_inserter(run.outcomes));
        }
    }

    tel::set_gauge("portfolio.results", static_cast<double>(run.results.size()));
    return run;
}

std::vector<layout_result> run_cartesian_portfolio(const logic_network& input, const portfolio_params& params)
{
    return generate_portfolio(input, portfolio_flavor::cartesian, params).results;
}

std::vector<layout_result> run_hexagonal_portfolio(const logic_network& input, const portfolio_params& params)
{
    return generate_portfolio(input, portfolio_flavor::hexagonal, params).results;
}

const layout_result* best_by_area(const std::vector<layout_result>& results)
{
    const layout_result* best = nullptr;
    for (const auto& r : results)
    {
        if (best == nullptr || r.layout.area() < best->layout.area() ||
            (r.layout.area() == best->layout.area() &&
             (r.layout.num_wires() < best->layout.num_wires() ||
              (r.layout.num_wires() == best->layout.num_wires() && r.label() < best->label()))))
        {
            best = &r;
        }
    }
    return best;
}

}  // namespace mnt::pd
