#include "physical_design/hexagonalization.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <limits>

namespace mnt::pd
{

namespace
{

using lyt::coordinate;

}  // namespace

lyt::gate_level_layout hexagonalization(const lyt::gate_level_layout& cartesian)
{
    if (cartesian.topology() != lyt::layout_topology::cartesian ||
        cartesian.clocking().kind() != lyt::clocking_kind::twoddwave)
    {
        throw precondition_error{"hexagonalization: input must be a 2DDWave-clocked Cartesian layout"};
    }

    // the x offset must be even: the floor pairing of (x - y + offset) / 2
    // aligns east/south steps with the even/odd-row down-neighbors only for
    // even offsets (odd ones mirror the parity and break adjacency)
    const auto h = static_cast<std::int32_t>(cartesian.height() + (cartesian.height() & 1u));

    const auto to_hex = [h](const coordinate& c) -> coordinate
    {
        // x - y + h >= 1 for in-bounds tiles, so the division floors correctly
        return {(c.x - c.y + h) / 2, c.x + c.y, c.z};
    };

    // determine the horizontal extent to trim the empty left margin; the x
    // shift is unconstrained (ROW zones and row parity only depend on y)
    std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
    std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
    std::int32_t max_y = 0;
    cartesian.foreach_tile(
        [&](const coordinate& c, const lyt::gate_level_layout::tile_data&)
        {
            const auto hex = to_hex(c);
            min_x = std::min(min_x, hex.x);
            max_x = std::max(max_x, hex.x);
            max_y = std::max(max_y, hex.y);
        });
    if (min_x == std::numeric_limits<std::int32_t>::max())
    {
        min_x = 0;
        max_x = 0;
    }

    // NOTE: shifting x is safe for any amount, but shifting rows would flip
    // the even/odd row parity and break adjacency, so y is kept verbatim
    // (row 0 is always occupied for non-empty inputs since tile (0, 0)'s
    // diagonal is the minimum one present after ortho's shrink_to_fit; if
    // not, the blank top rows merely remain part of the bounding box).
    const auto shift = [&](const coordinate& c) -> coordinate
    {
        const auto hex = to_hex(c);
        return {hex.x - min_x, hex.y, hex.z};
    };

    lyt::gate_level_layout hex_layout{cartesian.layout_name(), lyt::layout_topology::hexagonal_even_row,
                                      lyt::clocking_scheme::row(), static_cast<std::uint32_t>(max_x - min_x + 1),
                                      static_cast<std::uint32_t>(max_y + 1)};

    // first pass: place all gates
    cartesian.foreach_tile([&](const coordinate& c, const lyt::gate_level_layout::tile_data& d)
                           { hex_layout.place(shift(c), d.type, d.io_name); });

    // second pass: transfer connections in slot order (deterministically)
    for (const auto& c : cartesian.tiles_sorted())
    {
        const auto& d = cartesian.get(c);
        const auto target = shift(c);
        for (const auto& in : d.incoming)
        {
            hex_layout.connect(shift(in), target);
        }
    }

    return hex_layout;
}

}  // namespace mnt::pd
