#include "physical_design/input_ordering.hpp"

#include "common/taskrt/taskrt.hpp"
#include "common/types.hpp"
#include "network/network_utils.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <random>
#include <utility>
#include <vector>

namespace mnt::pd
{

namespace
{

using ntk::logic_network;

/// Barycenter ordering: PIs sorted by the average node id of their direct
/// users (a proxy for where in the circuit the input is consumed).
std::vector<std::size_t> barycenter_ordering(const logic_network& network)
{
    const auto fos = ntk::fanout_lists(network);
    std::vector<std::pair<double, std::size_t>> keyed;
    for (std::size_t i = 0; i < network.num_pis(); ++i)
    {
        const auto pi = network.pi_at(i);
        const auto& users = fos[pi];
        double center = 0.0;
        for (const auto u : users)
        {
            center += static_cast<double>(u);
        }
        center = users.empty() ? 0.0 : center / static_cast<double>(users.size());
        keyed.emplace_back(center, i);
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<std::size_t> perm;
    perm.reserve(keyed.size());
    for (const auto& [key, idx] : keyed)
    {
        perm.push_back(idx);
    }
    return perm;
}

}  // namespace

logic_network reorder_pis(const logic_network& network, const std::vector<std::size_t>& permutation)
{
    if (permutation.size() != network.num_pis())
    {
        throw precondition_error{"reorder_pis: permutation size mismatch"};
    }
    {
        auto check = permutation;
        std::sort(check.begin(), check.end());
        for (std::size_t i = 0; i < check.size(); ++i)
        {
            if (check[i] != i)
            {
                throw precondition_error{"reorder_pis: not a permutation of [0, num_pis)"};
            }
        }
    }

    logic_network result{network.network_name()};
    std::vector<logic_network::node> map(network.size(), logic_network::invalid_node);
    map[network.get_constant(false)] = result.get_constant(false);
    map[network.get_constant(true)] = result.get_constant(true);

    for (const auto original_index : permutation)
    {
        const auto pi = network.pi_at(original_index);
        map[pi] = result.create_pi(network.name_of(pi));
    }

    network.foreach_node(
        [&](const logic_network::node n)
        {
            if (map[n] != logic_network::invalid_node)
            {
                return;
            }
            const auto t = network.type(n);
            if (t == ntk::gate_type::pi || t == ntk::gate_type::po)
            {
                return;
            }
            const auto fis = network.fanins(n);
            std::vector<logic_network::node> mapped;
            mapped.reserve(fis.size());
            for (const auto fi : fis)
            {
                mapped.push_back(map[fi]);
            }
            map[n] = result.create_gate(t, mapped);
        });

    network.foreach_po([&](const logic_network::node po)
                       { result.create_po(map[network.fanins(po)[0]], network.name_of(po)); });
    return result;
}

lyt::gate_level_layout input_ordering_ortho(const logic_network& network, const input_ordering_params& params,
                                            input_ordering_stats* stats)
{
    MNT_SPAN("input_ordering");
    const tel::stopwatch watch;

    const auto n = network.num_pis();

    std::vector<std::vector<std::size_t>> orderings;
    std::vector<std::size_t> identity(n);
    std::iota(identity.begin(), identity.end(), 0u);
    orderings.push_back(identity);
    if (n > 1)
    {
        auto reversed = identity;
        std::reverse(reversed.begin(), reversed.end());
        orderings.push_back(std::move(reversed));
        orderings.push_back(barycenter_ordering(network));
    }
    std::mt19937_64 rng{params.seed};
    while (orderings.size() < std::max<std::size_t>(params.max_orderings, 1))
    {
        auto shuffled = identity;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        orderings.push_back(std::move(shuffled));
        if (n <= 1)
        {
            break;
        }
    }
    // max_orderings is a hard cap (the heuristic orderings count toward it)
    if (orderings.size() > std::max<std::size_t>(params.max_orderings, 1))
    {
        orderings.resize(std::max<std::size_t>(params.max_orderings, 1));
    }

    input_ordering_stats local{};

    // One sweep cell per ordering, combined in submission order: the strict
    // `<` keeps the *earliest* ordering among equal areas, so the reduction
    // picks exactly the layout the old sequential loop kept — at any thread
    // count.
    struct sweep_acc
    {
        std::optional<lyt::gate_level_layout> best{};
        std::uint64_t worst_area{0};
        std::size_t tried{0};
    };

    auto swept = trt::parallel_map_reduce<sweep_acc>(
        orderings.size(), sweep_acc{},
        [&](const std::size_t i)
        {
            // each ortho run polls the deadline itself; this check stops the
            // ordering sweep between runs once the budget is gone
            params.ortho.deadline.throw_if_expired("input_ordering/sweep");
            const auto permuted = reorder_pis(network, orderings[i]);
            auto layout = ortho(permuted, params.ortho);
            sweep_acc cell{};
            cell.worst_area = layout.area();
            cell.best = std::move(layout);
            cell.tried = 1;
            return cell;
        },
        [](sweep_acc& acc, sweep_acc&& cell)
        {
            acc.tried += cell.tried;
            acc.worst_area = std::max(acc.worst_area, cell.worst_area);
            if (!acc.best.has_value() || (cell.best.has_value() && cell.best->area() < acc.best->area()))
            {
                acc.best = std::move(cell.best);
            }
        });

    local.orderings_tried = swept.tried;
    local.worst_area = swept.worst_area;
    auto best = std::move(swept.best);

    local.best_area = best->area();
    local.runtime = watch.seconds();

    if (tel::enabled())
    {
        tel::count("input_ordering.runs");
        tel::count("input_ordering.orderings_tried", local.orderings_tried);
        tel::observe("input_ordering.runtime_s", local.runtime);
    }

    if (stats != nullptr)
    {
        *stats = local;
    }
    return std::move(*best);
}

}  // namespace mnt::pd
