#pragma once

/// \file post_layout_optimization.hpp
/// \brief Post-layout optimization (PLO) for gate-level FCN layouts.
///
/// Reimplementation of Hofmann et al., "Post-Layout Optimization for
/// Field-coupled Nanotechnologies" (NANOARCH 2023): an already placed and
/// routed layout is improved by
///
/// 1. rip-up-and-reroute of every gate-to-gate connection onto a shortest
///    clocked path (wire reduction),
/// 2. relocation of gates (including I/O pins) toward the layout origin,
///    re-routing all incident connections after each move,
/// 3. cropping the bounding box.
///
/// Every accepted step must keep all connections routable; the pass is
/// therefore function-preserving by construction (and validated by the test
/// suite via equivalence checking). Works on Cartesian and hexagonal
/// layouts under any clocking scheme.

#include "common/resilience.hpp"
#include "layout/gate_level_layout.hpp"

#include <cstddef>

namespace mnt::pd
{

/// Parameters of \ref post_layout_optimization.
struct plo_params
{
    /// Maximum number of full optimization passes.
    std::size_t max_passes{8};

    /// Search radius for relocation candidates (window west/north of the
    /// gate).
    std::int32_t relocation_radius{16};

    /// Maximum candidate target tiles evaluated per gate and pass.
    std::size_t max_candidates_per_gate{24};

    /// Overall budget of attempted gate moves (0 = unlimited). Guards the
    /// runtime on very large layouts.
    std::size_t max_gate_moves{0};

    /// BFS expansion cap per routing query (0 = unlimited).
    std::size_t max_route_expansions{20000};

    /// Cooperative global run deadline: polled per optimization pass and per
    /// relocated gate (and forwarded to every routing query); the run unwinds
    /// with mnt::res::deadline_exceeded once expired. Unbounded by default.
    res::deadline_clock deadline{};
};

/// Statistics of a \ref post_layout_optimization run.
struct plo_stats
{
    double runtime{0.0};
    std::uint64_t area_before{0};
    std::uint64_t area_after{0};
    std::size_t wires_before{0};
    std::size_t wires_after{0};
    std::size_t accepted_moves{0};
    std::size_t rerouted_connections{0};
    std::size_t passes{0};
};

/// Optimizes a copy of \p layout and returns it.
[[nodiscard]] lyt::gate_level_layout post_layout_optimization(const lyt::gate_level_layout& layout,
                                                              const plo_params& params = {},
                                                              plo_stats* stats = nullptr);

}  // namespace mnt::pd
