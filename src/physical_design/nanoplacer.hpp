#pragma once

/// \file nanoplacer.hpp
/// \brief Stochastic placement and routing ("NanoPlaceR" substitute).
///
/// MNT Bench's portfolio includes NanoPlaceR (Hofmann et al., DAC 2023), a
/// reinforcement-learning placer. Its role — a stochastic optimizer that
/// explores placements a deterministic heuristic would not and sometimes
/// beats ortho on small and medium functions — is filled here by simulated
/// annealing over the same layout/routing substrate (see DESIGN.md §4 for
/// the substitution rationale):
///
/// 1. a greedy constructive placement (topological order, nearest routable
///    tile) establishes a feasible layout on a generous grid,
/// 2. annealing relocates random gates via rip-up-and-reroute, accepting by
///    the Metropolis criterion on cost = bounding-box area + lambda * wires,
/// 3. the result is cropped.
///
/// Unlike ortho, this works on *any* regular clocking scheme (USE, RES, ESR
/// routing via the generic clocked-grid BFS), which is how the portfolio
/// produces layouts for those schemes on functions too large for `exact`.

#include "common/resilience.hpp"
#include "layout/clocking_scheme.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <optional>

namespace mnt::pd
{

/// Parameters of \ref nanoplacer.
struct nanoplacer_params
{
    /// Grid topology of the result.
    lyt::layout_topology topology{lyt::layout_topology::cartesian};

    /// Clocking scheme of the result (regular).
    lyt::clocking_kind scheme{lyt::clocking_kind::twoddwave};

    /// RNG seed (results are deterministic per seed).
    std::uint64_t seed{1};

    /// Annealing moves.
    std::size_t iterations{3000};

    /// Start/end temperatures of the geometric cooling schedule.
    double t_start{5.0};
    double t_end{0.05};

    /// Wire-count weight in the cost function.
    double lambda{0.1};

    /// Initial grid side = ceil(sqrt(placeable nodes)) * this factor.
    double grid_factor{2.5};

    /// Constructive-placement retries with a grown grid before giving up.
    std::size_t max_restarts{4};

    /// BFS expansion cap per routing query.
    std::size_t max_route_expansions{50000};

    /// Cooperative global run deadline: polled by the constructive placement
    /// and the annealing loop (and forwarded to every routing query); the
    /// run unwinds with mnt::res::deadline_exceeded once expired.
    res::deadline_clock deadline{};

    /// Parallel annealing chains. 1 (the default) runs the classic
    /// single-chain annealer, byte-identical to all previous releases.
    /// More chains anneal independent copies of the seed layout — chain c
    /// seeded with \ref nanoplacer_chain_seed(seed, c), so any chain can be
    /// replayed in isolation — exchanging their best snapshot every
    /// \ref exchange_period iterations: the currently-worst chain restarts
    /// from the globally best layout. Exchanges happen at fixed iteration
    /// boundaries with a deterministic winner rule, so the result depends
    /// only on (seed, chains, iterations), never on the thread count.
    std::size_t chains{1};

    /// Iterations between best-exchange synchronization points (chains > 1).
    std::size_t exchange_period{512};
};

/// Derived RNG seed of annealing chain \p chain (splitmix64 over the base
/// seed, matching the pbt::rng derivation style): chains are individually
/// replayable by constructing a single-chain run with this seed.
[[nodiscard]] std::uint64_t nanoplacer_chain_seed(std::uint64_t base_seed, std::size_t chain) noexcept;

/// Statistics of a \ref nanoplacer run.
struct nanoplacer_stats
{
    double runtime{0.0};
    std::size_t accepted_moves{0};
    std::size_t attempted_moves{0};
    std::size_t restarts{0};
};

/// Places and routes \p network stochastically.
///
/// \returns the layout, or std::nullopt if no feasible constructive
///          placement was found within the restart budget
[[nodiscard]] std::optional<lyt::gate_level_layout> nanoplacer(const ntk::logic_network& network,
                                                               const nanoplacer_params& params = {},
                                                               nanoplacer_stats* stats = nullptr);

}  // namespace mnt::pd
