#pragma once

/// \file exact.hpp
/// \brief Exact (area-minimal) physical design for small FCN circuits.
///
/// Plays the role of Walter et al., "An Exact Method for Design Exploration
/// of Quantum-dot Cellular Automata" (DATE 2018) in the MNT Bench tool
/// portfolio. The published method encodes placement and routing as an SMT
/// problem over ascending aspect ratios; since no SMT solver is available in
/// this reproduction, the same contract is implemented with a native
/// backtracking search:
///
/// - aspect ratios (w, h) are enumerated by ascending area,
/// - nodes are placed in topological order, candidate tiles nearest their
///   fanins first,
/// - every fanin connection is routed over an enumeration of near-shortest
///   clocked paths (with crossings), with full backtracking across path and
///   tile choices.
///
/// The first aspect ratio that admits a solution is area-minimal within the
/// limits of the path enumeration (see \ref exact_params::path_slack and
/// \ref exact_params::max_paths_per_edge, which bound completeness) and the
/// timeout. Intended for functions with up to roughly a dozen placeable
/// nodes — exactly the regime where MNT Bench's Table I uses `exact`.

#include "common/resilience.hpp"
#include "layout/clocking_scheme.hpp"
#include "layout/coordinates.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <optional>

namespace mnt::pd
{

/// Parameters of \ref exact.
struct exact_params
{
    /// Grid topology of the result.
    lyt::layout_topology topology{lyt::layout_topology::cartesian};

    /// Clocking scheme of the result (must be regular).
    lyt::clocking_kind scheme{lyt::clocking_kind::twoddwave};

    /// Largest area (in tiles) explored before giving up.
    std::uint64_t max_area{80};

    /// Per-run wall-clock budget in seconds (soft: the search gives up and
    /// returns std::nullopt with stats.timed_out set).
    double timeout_s{10.0};

    /// Cooperative global run deadline (hard: the search unwinds with
    /// mnt::res::deadline_exceeded so the portfolio can classify the combo
    /// as timed out). Unbounded by default.
    res::deadline_clock deadline{};

    /// Permit wire crossings on layer z = 1.
    bool allow_crossings{true};

    /// Detour slack over the shortest path length per connection.
    std::uint32_t path_slack{2};

    /// Maximum alternative paths tried per connection.
    std::size_t max_paths_per_edge{6};
};

/// Statistics of an \ref exact run.
struct exact_stats
{
    double runtime{0.0};
    bool timed_out{false};
    /// Aspect ratios fully refuted before the solution (or the give-up).
    std::size_t explored_aspect_ratios{0};
    /// Number of placeable entities after preprocessing.
    std::size_t placeable_nodes{0};
    /// Backtracking search nodes expanded (recurse invocations).
    std::size_t search_nodes{0};
    /// Wall-clock deadline checks performed during the search.
    std::size_t deadline_checks{0};
};

/// Searches an area-minimal layout for \p network.
///
/// \returns the layout, or std::nullopt if none was found within the area
///          bound and timeout
[[nodiscard]] std::optional<lyt::gate_level_layout> exact(const ntk::logic_network& network,
                                                          const exact_params& params = {},
                                                          exact_stats* stats = nullptr);

/// Maximum number of same-zone-minus-one planar neighbors any tile has under
/// \p kind / \p topo, i.e. the largest realizable fanin arity. 2DDWave and
/// hexagonal ROW offer 2; RES offers 3 (native MAJ).
[[nodiscard]] std::uint8_t max_incoming_degree(lyt::clocking_kind kind, lyt::layout_topology topo);

}  // namespace mnt::pd
