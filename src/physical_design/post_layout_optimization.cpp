#include "physical_design/post_layout_optimization.hpp"

#include "common/types.hpp"
#include "layout/net_surgery.hpp"
#include "layout/routing.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

namespace mnt::pd
{

namespace
{

using lyt::connection;
using lyt::coordinate;
using lyt::gate_level_layout;
using lyt::net_surgeon;
using ntk::gate_type;

/// Cost of a layout during optimization: bounding-box area first, wire count
/// second.
struct layout_cost
{
    std::uint64_t bbox_area;
    std::size_t wires;

    auto operator<=>(const layout_cost&) const = default;
};

layout_cost cost_of(const gate_level_layout& layout)
{
    // origin-anchored area (regular schemes permit only 4-periodic
    // translations, so NW margins usually cannot be cropped away)
    const auto [min_c, max_c] = layout.bounding_box();
    static_cast<void>(min_c);
    const auto w = static_cast<std::uint64_t>(max_c.x + 1);
    const auto h = static_cast<std::uint64_t>(max_c.y + 1);
    return {w * h, layout.num_wires()};
}

/// Pass 1: reroute every connection onto a shortest path.
///
/// Endpoint/slot records from the initial sweep stay valid, but wire chains
/// can be relocated by crossing demotion during earlier rip-ups, so every
/// connection is re-traced immediately before its own surgery.
std::size_t reroute_pass(net_surgeon& surgeon)
{
    std::size_t improved = 0;
    auto& layout = surgeon.layout();
    for (const auto& record : surgeon.all_connections())
    {
        const auto conn = surgeon.trace_incoming(record.dst, record.dst_slot);
        if (conn.chain.empty())
        {
            continue;  // already direct
        }
        surgeon.rip(conn);

        const auto shortest = surgeon.shortest_length(conn.src, conn.dst);
        coordinate feeder{};
        if (shortest.has_value() && *shortest < conn.chain.size())
        {
            feeder = *surgeon.route_shortest(conn.src, conn.dst);
            ++improved;
        }
        else
        {
            feeder = surgeon.restore(conn);
        }
        lyt::detail::rebuild_slot_order(layout, conn.dst, {conn.dst_slot}, {feeder});
    }
    return improved;
}

/// Pass 2: relocate gates toward the origin.
std::size_t relocation_pass(net_surgeon& surgeon, const plo_params& params, std::size_t& move_budget_used)
{
    auto& layout = surgeon.layout();
    std::size_t accepted = 0;
    res::deadline_guard deadline{params.deadline, 16};

    // gates ordered by distance from origin, descending: outer gates first
    auto gates = layout.tiles_sorted();
    gates.erase(std::remove_if(gates.begin(), gates.end(),
                               [&](const coordinate& c) { return layout.type_of(c) == gate_type::buf; }),
                gates.end());
    std::sort(gates.begin(), gates.end(),
              [](const coordinate& a, const coordinate& b) { return a.x + a.y > b.x + b.y; });

    for (const auto& g : gates)
    {
        deadline.poll_or_throw("plo/relocation");
        // walk each gate inward until no closer position is routable/better
        auto current = g;
        bool moved = true;
        while (moved)
        {
            moved = false;
            if (params.max_gate_moves != 0 && move_budget_used >= params.max_gate_moves)
            {
                return accepted;
            }

            // candidate targets west/north of the gate, closer to the
            // origin, farthest-inward first. Wire-occupied positions are
            // admissible too: the wires may belong to the gate's own
            // connections and be freed during the rip-up (try_relocate
            // re-checks emptiness after ripping and rolls back otherwise).
            const auto wire_or_empty = [&](const coordinate& t)
            { return layout.is_empty_tile(t) || layout.type_of(t) == gate_type::buf; };
            std::vector<coordinate> candidates;
            for (std::int32_t y = std::max(0, current.y - params.relocation_radius); y <= current.y; ++y)
            {
                for (std::int32_t x = std::max(0, current.x - params.relocation_radius); x <= current.x; ++x)
                {
                    const coordinate t{x, y, 0};
                    if (t.x + t.y < current.x + current.y && wire_or_empty(t) && wire_or_empty(t.elevated()))
                    {
                        candidates.push_back(t);
                    }
                }
            }
            std::sort(candidates.begin(), candidates.end(), [](const coordinate& a, const coordinate& b)
                      { return a.x + a.y != b.x + b.y ? a.x + a.y < b.x + b.y : a < b; });
            if (candidates.size() > params.max_candidates_per_gate)
            {
                // keep the most aggressive jumps plus the nearest fallbacks
                // (the nearest steps are almost always routable, so the
                // inward walk cannot stall on truncation)
                const auto half = params.max_candidates_per_gate / 2;
                std::vector<coordinate> trimmed(candidates.cbegin(),
                                                candidates.cbegin() + static_cast<std::ptrdiff_t>(half));
                for (std::size_t i = 0; i < params.max_candidates_per_gate - half; ++i)
                {
                    trimmed.push_back(candidates[candidates.size() - 1 - i]);
                }
                candidates = std::move(trimmed);
            }

            const auto before = cost_of(layout);

            for (const auto& target : candidates)
            {
                ++move_budget_used;
                const auto committed = lyt::try_relocate(surgeon, current, target,
                                                         [&]() { return cost_of(layout) < before; });
                if (committed)
                {
                    ++accepted;
                    current = target;
                    moved = true;
                    break;
                }
            }
        }
    }
    return accepted;
}

}  // namespace

gate_level_layout post_layout_optimization(const gate_level_layout& layout, const plo_params& params,
                                           plo_stats* stats)
{
    const auto start_time = std::chrono::steady_clock::now();

    auto result = layout;  // operate on a copy
    net_surgeon surgeon{result, params.max_route_expansions};
    surgeon.options().deadline = params.deadline;

    plo_stats local{};
    local.area_before = layout.area();
    local.wires_before = layout.num_wires();

    std::size_t move_budget_used = 0;
    for (std::size_t pass = 0; pass < params.max_passes; ++pass)
    {
        MNT_FAULT_POINT("plo.pass");
        params.deadline.throw_if_expired("plo/pass");
        ++local.passes;
        const auto rerouted = reroute_pass(surgeon);
        const auto moved = relocation_pass(surgeon, params, move_budget_used);
        local.rerouted_connections += rerouted;
        local.accepted_moves += moved;
        if (rerouted == 0 && moved == 0)
        {
            break;
        }
    }

    result.shrink_to_fit();

    local.area_after = result.area();
    local.wires_after = result.num_wires();
    local.runtime = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    if (stats != nullptr)
    {
        *stats = local;
    }
    return result;
}

}  // namespace mnt::pd
