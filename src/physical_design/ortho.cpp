#include "physical_design/ortho.hpp"

#include "common/types.hpp"
#include "network/transforms.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace mnt::pd
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;
using ntk::logic_network;

/// Per-node placement record: tile plus output-slot bookkeeping. Every node
/// owns an "east run" (its row, east of its tile) and a "south run" (its
/// column, south of its tile); each run can carry exactly one connection.
struct placement
{
    coordinate tile{};
    bool east_used{false};
    bool south_used{false};
};

/// Builder wrapping the target layout: places wire tiles with automatic
/// crossing elevation and records complete connection chains.
class wire_builder
{
public:
    explicit wire_builder(gate_level_layout& target) : layout{target} {}

    /// Places one wire tile at (x, y); elevates to z = 1 if the ground tile
    /// is already occupied by another wire (crossing).
    coordinate put_wire(const std::int32_t x, const std::int32_t y)
    {
        const coordinate ground{x, y, 0};
        if (layout.is_empty_tile(ground))
        {
            layout.place(ground, gate_type::buf);
            return ground;
        }
        const auto elevated = ground.elevated();
        if (layout.type_of(ground) == gate_type::buf && layout.is_empty_tile(elevated))
        {
            layout.place(elevated, gate_type::buf);
            return elevated;
        }
        throw mnt_error{"ortho: internal conflict at " + ground.to_string() +
                        " — placement invariant violated (please report)"};
    }

    /// Horizontal run (x1, y) .. (x2, y), x ascending; endpoints included.
    void run_east(const std::int32_t x1, const std::int32_t x2, const std::int32_t y, std::vector<coordinate>& path)
    {
        for (std::int32_t x = x1; x <= x2; ++x)
        {
            path.push_back(put_wire(x, y));
        }
    }

    /// Vertical run (x, y1) .. (x, y2), y ascending; endpoints included.
    void run_south(const std::int32_t x, const std::int32_t y1, const std::int32_t y2, std::vector<coordinate>& path)
    {
        for (std::int32_t y = y1; y <= y2; ++y)
        {
            path.push_back(put_wire(x, y));
        }
    }

    /// Declares the chain src -> path[0] -> ... -> dst.
    void connect_chain(const coordinate& src, const std::vector<coordinate>& path, const coordinate& dst)
    {
        auto prev = src;
        for (const auto& p : path)
        {
            layout.connect(prev, p);
            prev = p;
        }
        layout.connect(prev, dst);
    }

private:
    gate_level_layout& layout;
};

/// The four staircase shapes a connection can take.
enum class route_shape : std::uint8_t
{
    /// east along the source row, then south along the target column
    /// (consumes the source's east slot; enters the target from the north —
    /// or from the west when source and target share a row).
    east_south,
    /// south along the source column, then east along the target row
    /// (consumes the source's south slot; enters the target from the west —
    /// or from the north when source and target share a column).
    south_east,
    /// south, east through a fresh row track, south again (consumes the
    /// source's south slot; enters from the north).
    zigzag_via_row,
    /// east, south through a fresh column track, east again (consumes the
    /// source's east slot; enters from the west).
    zigzag_via_col
};

struct route_plan
{
    route_shape shape{route_shape::east_south};
    /// Fresh track position for the zigzag shapes (row or column index).
    std::int32_t track{-1};
};

}  // namespace

gate_level_layout ortho(const logic_network& network, const ortho_params& params, ortho_stats* stats)
{
    MNT_SPAN("ortho");
    const tel::stopwatch watch;

    if (network.num_pos() == 0)
    {
        throw precondition_error{"ortho: network has no primary outputs"};
    }
    MNT_FAULT_POINT("ortho.place");
    res::deadline_guard deadline{params.deadline, 64};

    // preprocessing: constants folded, dead logic removed, MAJ decomposed
    // (a 2DDWave tile offers only two incoming directions), fanout degree <= 2
    const auto net = ntk::substitute_fanouts(ntk::decompose_maj(ntk::propagate_constants(network)), 2);

    net.foreach_po(
        [&](const logic_network::node po)
        {
            if (net.is_constant(net.fanins(po)[0]))
            {
                throw precondition_error{"ortho: constant primary outputs are not supported on FCN layouts"};
            }
        });

    // generous bounds; cropped at the end
    const auto bound = static_cast<std::uint32_t>(2 * net.size() + 4);
    gate_level_layout layout{network.network_name(), lyt::layout_topology::cartesian,
                             lyt::clocking_scheme::twoddwave(), bound, bound};
    wire_builder builder{layout};

    std::unordered_map<logic_network::node, placement> placed;
    placed.reserve(net.size());

    std::int32_t next_col = 0;
    std::int32_t next_row = 0;
    std::size_t zigzags = 0;

    /// Builds the wire path for one connection according to \p plan. The
    /// target gate must already be placed at \p dst.
    const auto realize = [&](placement& src, const route_plan& plan, const coordinate& dst)
    {
        std::vector<coordinate> path;
        const auto s = src.tile;
        switch (plan.shape)
        {
            case route_shape::east_south:
            {
                if (s.y == dst.y)
                {
                    builder.run_east(s.x + 1, dst.x - 1, s.y, path);
                }
                else
                {
                    builder.run_east(s.x + 1, dst.x, s.y, path);
                    builder.run_south(dst.x, s.y + 1, dst.y - 1, path);
                }
                src.east_used = true;
                break;
            }
            case route_shape::south_east:
            {
                if (s.x == dst.x)
                {
                    builder.run_south(s.x, s.y + 1, dst.y - 1, path);
                }
                else
                {
                    builder.run_south(s.x, s.y + 1, dst.y, path);
                    builder.run_east(s.x + 1, dst.x - 1, dst.y, path);
                }
                src.south_used = true;
                break;
            }
            case route_shape::zigzag_via_row:
            {
                builder.run_south(s.x, s.y + 1, plan.track, path);
                builder.run_east(s.x + 1, dst.x, plan.track, path);
                builder.run_south(dst.x, plan.track + 1, dst.y - 1, path);
                src.south_used = true;
                ++zigzags;
                break;
            }
            case route_shape::zigzag_via_col:
            {
                builder.run_east(s.x + 1, plan.track, s.y, path);
                builder.run_south(plan.track, s.y + 1, dst.y, path);
                builder.run_east(plan.track + 1, dst.x - 1, dst.y, path);
                src.east_used = true;
                ++zigzags;
                break;
            }
        }
        builder.connect_chain(s, path, dst);
    };

    for (const auto v : net.topological_order())
    {
        deadline.poll_or_throw("ortho/placement");
        const auto t = net.type(v);
        if (t == gate_type::const0 || t == gate_type::const1)
        {
            continue;
        }

        const auto fis = net.fanins(v);

        if (t == gate_type::pi)
        {
            const coordinate tile{next_col++, next_row++, 0};
            layout.place(tile, gate_type::pi, net.name_of(v));
            placed.emplace(v, placement{tile});
            continue;
        }

        if (fis.size() == 1)
        {
            auto& src = placed.at(fis[0]);
            coordinate tile{};
            route_plan plan{};
            if (!src.east_used)
            {
                // extend the source's row chain eastward
                tile = {next_col++, src.tile.y, 0};
                plan.shape = route_shape::east_south;
            }
            else
            {
                // east run taken: drop to a fresh row via the south run
                tile = {next_col++, next_row++, 0};
                plan.shape = route_shape::south_east;
            }
            layout.place(tile, t, net.is_po(v) ? net.name_of(v) : std::string{});
            realize(src, plan, tile);
            placed.emplace(v, placement{tile});
            continue;
        }

        if (fis.size() == 2)
        {
            auto& f0 = placed.at(fis[0]);
            auto& f1 = placed.at(fis[1]);

            // Decide which fanin enters from the north (east_south /
            // zigzag_via_row) and which from the west (south_east /
            // zigzag_via_col). Each assignment costs one zigzag per blocked
            // preferred slot; pick the cheaper one (ties: slot order, or
            // shorter spans when greedy_orientation is set).
            const auto zig_cost = [](const placement& north, const placement& west)
            { return static_cast<int>(north.east_used) + static_cast<int>(west.south_used); };

            const auto cost01 = zig_cost(f0, f1);  // f0 north, f1 west
            const auto cost10 = zig_cost(f1, f0);  // f1 north, f0 west

            bool f0_north = cost01 <= cost10;
            if (params.greedy_orientation && cost01 == cost10 && fis[0] != fis[1])
            {
                // the north entry travels along the source's row; prefer the
                // fanin whose row is older (smaller y) for it, keeping the
                // newer row free for the west tail
                f0_north = f0.tile.y <= f1.tile.y;
            }

            auto& north = f0_north ? f0 : f1;
            auto& west = f0_north ? f1 : f0;

            // allocate fresh tracks *before* the gate's own column/row
            route_plan north_plan{};
            route_plan west_plan{};
            if (west.south_used)
            {
                west_plan.shape = route_shape::zigzag_via_col;
                west_plan.track = next_col++;
            }
            else
            {
                west_plan.shape = route_shape::south_east;
            }
            const std::int32_t x_v = next_col++;
            if (north.east_used)
            {
                north_plan.shape = route_shape::zigzag_via_row;
                north_plan.track = next_row++;
            }
            else
            {
                north_plan.shape = route_shape::east_south;
            }
            const std::int32_t y_v = next_row++;

            const coordinate tile{x_v, y_v, 0};
            layout.place(tile, t);

            // connect in fanin-slot order so that the layout's incoming list
            // matches the network (required for non-commutative gates)
            if (f0_north)
            {
                realize(north, north_plan, tile);
                realize(west, west_plan, tile);
            }
            else
            {
                realize(west, west_plan, tile);
                realize(north, north_plan, tile);
            }
            placed.emplace(v, placement{tile});
            continue;
        }

        // 3-input gates (MAJ) are not realizable by the two-slot staircase
        // scheme; the caller decomposes them (see decompose_maj) — or we do
        throw precondition_error{"ortho: 3-input gates must be decomposed before ortho (internal error)"};
    }

    layout.shrink_to_fit();

    if (tel::enabled())
    {
        tel::count("ortho.runs");
        tel::count("ortho.placed_nodes", placed.size());
        tel::count("ortho.zigzag_tracks", zigzags);
        tel::observe("ortho.runtime_s", watch.seconds());
    }

    if (stats != nullptr)
    {
        stats->runtime = watch.seconds();
        stats->placed_nodes = placed.size();
        stats->zigzag_tracks = zigzags;
    }
    return layout;
}

}  // namespace mnt::pd
