#pragma once

/// \file hexagonalization.hpp
/// \brief The "45° turn": maps Cartesian 2DDWave layouts onto hexagonal
///        ROW-clocked layouts for the Bestagon gate library.
///
/// Reimplementation of Hofmann et al., "Scalable Physical Design for Silicon
/// Dangling Bond Logic: How a 45° Turn Prevents the Reinvention of the
/// Wheel" (IEEE-NANO 2023). A Cartesian tile (x, y) maps to the hexagonal
/// (even-row offset) tile
///
///     hex = ( floor((x - y + h) / 2), x + y )
///
/// where h is the Cartesian layout height. Both Cartesian flow directions
/// (east, south) map to the two down-neighbors of the hexagon, and the
/// 2DDWave zone (x + y) mod 4 equals the ROW zone of row x + y — so every
/// connection stays clock-valid and the transformation preserves logic,
/// crossings, and I/O names exactly.

#include "layout/gate_level_layout.hpp"

namespace mnt::pd
{

/// Transforms \p cartesian (a 2DDWave-clocked Cartesian layout, e.g. from
/// \ref ortho) into an equivalent hexagonal ROW-clocked layout.
///
/// \throws mnt::precondition_error if the input is not Cartesian/2DDWave
[[nodiscard]] lyt::gate_level_layout hexagonalization(const lyt::gate_level_layout& cartesian);

}  // namespace mnt::pd
