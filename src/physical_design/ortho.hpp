#pragma once

/// \file ortho.hpp
/// \brief OGD-based scalable physical design ("ortho") for FCN circuits.
///
/// Reimplementation of the scalable placement-and-routing approach of
/// Walter et al., "Scalable Design for Field-Coupled Nanocomputing Circuits"
/// (ASP-DAC 2019): the network is preprocessed by fanout substitution, nodes
/// are placed in topological order on a 2DDWave-clocked Cartesian grid, and
/// every connection is realized by an x/y-monotone staircase path, which is
/// clock-valid under 2DDWave by construction.
///
/// The placement scheme of this reproduction assigns a fresh column to every
/// node (orthogonal-graph-drawing style), shares rows along single-fanin
/// chains, and books an "east" and a "south" output slot per node — the
/// simplified counterpart of the original's conditional edge coloring. When
/// a preferred slot is taken (fanout nodes), the connection zigzags through
/// a fresh track. All residual tile conflicts are wire-wire crossings and go
/// to layer z = 1. The result is linear-time, always succeeds, and produces
/// O(N^2)-area layouts like the original heuristic.

#include "common/resilience.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <string>

namespace mnt::pd
{

/// Parameters of \ref ortho.
struct ortho_params
{
    /// Pick the geometric orientation (north/west entry) of 2-input gate
    /// fanins greedily by wire span instead of by slot order. Usually
    /// shrinks layouts slightly; never changes the function.
    bool greedy_orientation{true};

    /// Cooperative global run deadline: polled once per placed node; the run
    /// unwinds with mnt::res::deadline_exceeded once expired. Unbounded by
    /// default. Ortho is linear-time, so this mostly matters when it runs as
    /// the tail of a portfolio whose budget is already exhausted.
    res::deadline_clock deadline{};
};

/// Statistics of an \ref ortho run.
struct ortho_stats
{
    /// Runtime in seconds.
    double runtime{0.0};

    /// Nodes after preprocessing (placed entities).
    std::size_t placed_nodes{0};

    /// Zigzag tracks allocated for blocked slots.
    std::size_t zigzag_tracks{0};
};

/// Places and routes \p network on a 2DDWave-clocked Cartesian layout.
///
/// The input may contain arbitrary fanout degrees and MAJ gates; it is
/// cleaned, constant-propagated and fanout-substituted internally. The
/// resulting layout is cropped to its bounding box and is guaranteed to be
/// DRC-clean and functionally equivalent to \p network.
///
/// \throws mnt::precondition_error if the network has no primary outputs
[[nodiscard]] lyt::gate_level_layout ortho(const ntk::logic_network& network, const ortho_params& params = {},
                                           ortho_stats* stats = nullptr);

}  // namespace mnt::pd
