#include "physical_design/exact.hpp"

#include "common/taskrt/taskrt.hpp"
#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "network/transforms.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mnt::pd
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;
using ntk::logic_network;

/// Internal control-flow exception for the wall-clock budget.
struct timeout_signal
{};

class exact_solver
{
public:
    /// \p soft_deadline is the shared wall-clock budget of the whole
    /// aspect-ratio sweep — one point for all ratios, whether they are tried
    /// sequentially or raced in parallel.
    exact_solver(const logic_network& preprocessed, const exact_params& parameters,
                 const std::chrono::steady_clock::time_point soft_deadline) :
            net{preprocessed},
            params{parameters},
            deadline{soft_deadline}
    {
        for (const auto v : net.topological_order())
        {
            const auto t = net.type(v);
            if (t != gate_type::const0 && t != gate_type::const1)
            {
                order.push_back(v);
            }
        }
    }

    [[nodiscard]] std::size_t num_placeable() const noexcept
    {
        return order.size();
    }

    [[nodiscard]] std::size_t num_search_nodes() const noexcept
    {
        return search_nodes;
    }

    [[nodiscard]] std::size_t num_deadline_checks() const noexcept
    {
        return deadline_counter;
    }

    std::optional<gate_level_layout> solve(const std::uint32_t w, const std::uint32_t h)
    {
        MNT_FAULT_POINT("exact.search");
        params.deadline.throw_if_expired("exact/solve");
        gate_level_layout layout{net.network_name(), params.topology,
                                 lyt::clocking_scheme::create(params.scheme), w, h};
        tile_of.clear();
        if (recurse(layout, 0))
        {
            return layout;
        }
        return std::nullopt;
    }

private:
    void check_deadline()
    {
        if ((++deadline_counter & 0x3ffu) != 0)
        {
            return;
        }
        // the global run deadline outranks the per-run soft timeout: it
        // unwinds all the way out of exact() for the portfolio to classify
        params.deadline.throw_if_expired("exact/search");
        if (std::chrono::steady_clock::now() > deadline)
        {
            throw timeout_signal{};
        }
    }

    /// Cheap per-scheme reachability prune: can information ever flow from
    /// tile \p from to tile \p to?
    [[nodiscard]] bool may_reach(const coordinate& from, const coordinate& to) const
    {
        return lyt::may_flow(params.scheme, params.topology, from, to);
    }

    /// Enumerates up to max_paths_per_edge clocked paths from the gate on
    /// \p src into the gate on \p dst, lengths ascending (shortest + slack).
    [[nodiscard]] std::vector<std::vector<coordinate>> enumerate_paths(const gate_level_layout& layout,
                                                                       const coordinate& src,
                                                                       const coordinate& dst) const
    {
        std::vector<std::vector<coordinate>> result;

        // iterative-deepening DFS over new wire tiles
        std::vector<coordinate> current;
        std::unordered_set<coordinate, lyt::coordinate_hash> on_path;  // ground positions

        const auto min_len = lyt::grid_distance(src, dst, layout.topology());
        const auto max_len = static_cast<std::size_t>(min_len) + params.path_slack;

        const auto step_target = [&](const coordinate& n) -> std::optional<coordinate>
        {
            const auto ground = n.ground();
            if (layout.is_empty_tile(ground))
            {
                return ground;
            }
            if (params.allow_crossings && layout.type_of(ground) == gate_type::buf &&
                layout.is_empty_tile(ground.elevated()))
            {
                return ground.elevated();
            }
            return std::nullopt;
        };

        const auto dfs = [&](const auto& self, const coordinate& at, const std::size_t limit) -> void
        {
            if (result.size() >= params.max_paths_per_edge)
            {
                return;
            }
            for (const auto& n : layout.outgoing_clocked(at.ground()))
            {
                if (n == dst.ground())
                {
                    // found a connection of exactly current.size() wires
                    if (current.size() == limit)
                    {
                        result.push_back(current);
                        if (result.size() >= params.max_paths_per_edge)
                        {
                            return;
                        }
                    }
                    continue;
                }
                if (current.size() >= limit)
                {
                    continue;
                }
                if (on_path.contains(n.ground()))
                {
                    continue;
                }
                // admissible-distance prune
                if (static_cast<std::size_t>(lyt::grid_distance(n, dst, layout.topology())) + current.size() >
                    limit)
                {
                    continue;
                }
                const auto placed = step_target(n);
                if (!placed.has_value())
                {
                    continue;
                }
                current.push_back(*placed);
                on_path.insert(n.ground());
                self(self, *placed, limit);
                on_path.erase(n.ground());
                current.pop_back();
            }
        };

        // direct adjacency = zero wires; handled by limit 0 iteration
        for (std::size_t limit = (min_len == 0 ? 0 : min_len - 1); limit <= max_len; ++limit)
        {
            dfs(dfs, src, limit);
            if (result.size() >= params.max_paths_per_edge)
            {
                break;
            }
        }
        return result;
    }

    void establish(gate_level_layout& layout, const coordinate& src, const coordinate& dst,
                   const std::vector<coordinate>& path)
    {
        for (const auto& p : path)
        {
            layout.place(p, gate_type::buf);
        }
        auto prev = src;
        for (const auto& p : path)
        {
            layout.connect(prev, p);
            prev = p;
        }
        layout.connect(prev, dst);
    }

    void rip(gate_level_layout& layout, const coordinate& dst, const std::vector<coordinate>& path)
    {
        // remove the final link and the wire tiles (LIFO discipline: no
        // later path can still cross these tiles)
        const auto feeder = path.empty() ? coordinate{} : path.back();
        if (path.empty())
        {
            // direct link: disconnect the most recent incoming entry of dst
            const auto& in = layout.incoming_of(dst);
            layout.disconnect(in.back(), dst);
        }
        else
        {
            layout.disconnect(feeder, dst);
            for (auto it = path.rbegin(); it != path.rend(); ++it)
            {
                layout.clear_tile(*it);
            }
        }
    }

    /// Routes fanin \p j of node \p v (placed at \p t), then continues.
    bool route_fanins(gate_level_layout& layout, const std::size_t i, const coordinate& t, const std::size_t j)
    {
        const auto v = order[i];
        const auto fis = net.fanins(v);
        if (j == fis.size())
        {
            return recurse(layout, i + 1);
        }
        const auto src = tile_of.at(fis[j]);
        for (const auto& path : enumerate_paths(layout, src, t))
        {
            establish(layout, src, t, path);
            if (route_fanins(layout, i, t, j + 1))
            {
                return true;
            }
            rip(layout, t, path);
        }
        return false;
    }

    bool recurse(gate_level_layout& layout, const std::size_t i)
    {
        ++search_nodes;
        check_deadline();
        if (i == order.size())
        {
            return true;
        }

        const auto v = order[i];
        const auto t = net.type(v);
        const auto fis = net.fanins(v);

        // candidate tiles: empty ground tiles compatible with all placed
        // fanins, nearest-first. The list is rebuilt at every search node, so
        // it lives in the thread's scratch arena: recursion nests regions
        // LIFO and the steady state allocates nothing.
        struct scored_tile
        {
            std::uint32_t key;
            coordinate tile;
        };
        auto& arena = trt::scratch();
        const trt::scratch_region region{arena};
        trt::scratch_buffer<scored_tile> candidates{arena};
        for (std::int32_t y = 0; y < static_cast<std::int32_t>(layout.height()); ++y)
        {
            for (std::int32_t x = 0; x < static_cast<std::int32_t>(layout.width()); ++x)
            {
                const coordinate c{x, y, 0};
                if (!layout.is_empty_tile(c))
                {
                    continue;
                }
                std::uint32_t dist = 0;
                bool ok = true;
                for (const auto fi : fis)
                {
                    const auto& src = tile_of.at(fi);
                    if (!may_reach(src, c))
                    {
                        ok = false;
                        break;
                    }
                    dist += lyt::grid_distance(src, c, layout.topology());
                }
                if (!ok)
                {
                    continue;
                }
                // capacity prune: enough exit/entry room around the tile
                const auto users = net.fanout_size(v);
                const auto exits_needed =
                    std::min<std::size_t>(users, t == gate_type::fanout ? 2 : (t == gate_type::po ? 0 : 1));
                if (lyt::usable_exits(layout, c) < exits_needed)
                {
                    continue;
                }
                auto entries = lyt::usable_entries(layout, c);
                for (const auto fi : fis)
                {
                    const auto& src = tile_of.at(fi);
                    if (lyt::are_adjacent(src, c, layout.topology()) &&
                        layout.clocking().is_incoming_clocked(c, src))
                    {
                        ++entries;
                    }
                }
                if (entries < fis.size())
                {
                    continue;
                }
                // bias toward the origin so minimal bounding boxes emerge
                candidates.push_back(scored_tile{dist * 4u + static_cast<std::uint32_t>(x + y), c});
            }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto& a, const auto& b)
                  { return a.key != b.key ? a.key < b.key : a.tile < b.tile; });

        for (const auto& [key, c] : candidates)
        {
            layout.place(c, t, (net.is_pi(v) || net.is_po(v)) ? net.name_of(v) : std::string{});
            tile_of[v] = c;
            if (route_fanins(layout, i, c, 0))
            {
                return true;
            }
            layout.clear_tile(c);
            tile_of.erase(v);
        }
        return false;
    }

    const logic_network& net;
    const exact_params& params;
    std::chrono::steady_clock::time_point deadline;
    std::size_t search_nodes{0};
    std::uint32_t deadline_counter{0};
    std::vector<logic_network::node> order;
    std::unordered_map<logic_network::node, coordinate> tile_of;
};

}  // namespace

std::uint8_t max_incoming_degree(const lyt::clocking_kind kind, const lyt::layout_topology topo)
{
    if (kind == lyt::clocking_kind::open)
    {
        return topo == lyt::layout_topology::cartesian ? 3 : 3;
    }
    const auto scheme = lyt::clocking_scheme::create(kind);
    std::uint8_t max_deg = 0;
    for (std::int32_t y = 0; y < 8; ++y)
    {
        for (std::int32_t x = 0; x < 8; ++x)
        {
            const coordinate c{x, y};
            std::uint8_t deg = 0;
            for (const auto& n : lyt::planar_neighbors(c, topo))
            {
                if (n.x >= 0 && n.y >= 0 && scheme.is_incoming_clocked(c, n))
                {
                    ++deg;
                }
            }
            max_deg = std::max(max_deg, deg);
        }
    }
    return max_deg;
}

std::optional<gate_level_layout> exact(const logic_network& network, const exact_params& params, exact_stats* stats)
{
    MNT_SPAN("exact");
    const tel::stopwatch watch;

    if (network.num_pos() == 0)
    {
        throw precondition_error{"exact: network has no primary outputs"};
    }
    if (params.scheme == lyt::clocking_kind::open)
    {
        throw precondition_error{"exact: the OPEN clocking scheme is not supported (choose a regular one)"};
    }
    if (params.topology == lyt::layout_topology::hexagonal_even_row && params.scheme != lyt::clocking_kind::row)
    {
        throw precondition_error{"exact: hexagonal layouts require ROW clocking"};
    }

    auto net = ntk::propagate_constants(network);
    if (max_incoming_degree(params.scheme, params.topology) < 3)
    {
        net = ntk::decompose_maj(net);
    }
    net = ntk::substitute_fanouts(net, 2);

    net.foreach_po(
        [&](const logic_network::node po)
        {
            if (net.is_constant(net.fanins(po)[0]))
            {
                throw precondition_error{"exact: constant primary outputs are not supported on FCN layouts"};
            }
        });

    const auto soft_deadline = std::chrono::steady_clock::now() +
                               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(params.timeout_s));
    exact_solver solver{net, params, soft_deadline};

    exact_stats local{};
    local.placeable_nodes = solver.num_placeable();

    // aspect ratios by ascending area, then squarer-first
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ratios;
    const auto lb = static_cast<std::uint64_t>(solver.num_placeable());
    for (std::uint32_t w = 1; w <= params.max_area; ++w)
    {
        for (std::uint32_t h = 1; h <= params.max_area; ++h)
        {
            const auto area = static_cast<std::uint64_t>(w) * h;
            if (area >= lb && area <= params.max_area)
            {
                ratios.emplace_back(w, h);
            }
        }
    }
    std::sort(ratios.begin(), ratios.end(),
              [](const auto& a, const auto& b)
              {
                  const auto area_a = static_cast<std::uint64_t>(a.first) * a.second;
                  const auto area_b = static_cast<std::uint64_t>(b.first) * b.second;
                  if (area_a != area_b)
                  {
                      return area_a < area_b;
                  }
                  const auto max_a = std::max(a.first, a.second);
                  const auto max_b = std::max(b.first, b.second);
                  return max_a != max_b ? max_a < max_b : a < b;
              });

    std::optional<gate_level_layout> result;
    if (trt::parallel() && ratios.size() > 1)
    {
        // Race the aspect ratios: the lowest-index ratio that yields a
        // solution wins — the same ratio the sequential sweep would have
        // returned, because the sweep tries ratios by ascending area and
        // stops at the first solvable one. Losing ratios are cancelled via
        // their tokens and unwind at their next deadline poll.
        struct ratio_outcome
        {
            std::optional<gate_level_layout> layout;
            bool soft_timeout{false};
        };

        std::atomic<std::size_t> search_nodes{0};
        std::atomic<std::size_t> deadline_checks{0};
        std::atomic<std::size_t> explored{0};

        auto winner = trt::first_winner<ratio_outcome>(
            ratios.size(),
            [&](const std::size_t i, const trt::cancel_token& token) -> std::optional<ratio_outcome>
            {
                exact_params task_params = params;
                task_params.deadline     = params.deadline.with_stop(token.handle());
                exact_solver task_solver{net, task_params, soft_deadline};
                const auto   accumulate = [&]
                {
                    search_nodes.fetch_add(task_solver.num_search_nodes(), std::memory_order_relaxed);
                    deadline_checks.fetch_add(task_solver.num_deadline_checks(), std::memory_order_relaxed);
                };
                try
                {
                    auto solution = task_solver.solve(ratios[i].first, ratios[i].second);
                    accumulate();
                    if (solution.has_value())
                    {
                        return ratio_outcome{std::move(solution), false};
                    }
                    explored.fetch_add(1, std::memory_order_relaxed);
                    return std::nullopt;
                }
                catch (const timeout_signal&)
                {
                    // the shared soft budget ran out: this "wins" the race as
                    // a timeout marker, exactly like the sequential sweep
                    // aborting at this ratio
                    accumulate();
                    return ratio_outcome{std::nullopt, true};
                }
                catch (const res::deadline_exceeded&)
                {
                    accumulate();
                    if (params.deadline.expired())
                    {
                        throw;  // the real global deadline — unwind out of exact()
                    }
                    return std::nullopt;  // lost the race (token cancellation)
                }
            });

        if (winner.has_value())
        {
            if (winner->layout.has_value())
            {
                result = std::move(winner->layout);
            }
            else
            {
                local.timed_out = true;
            }
        }
        local.search_nodes = search_nodes.load(std::memory_order_relaxed);
        local.deadline_checks = deadline_checks.load(std::memory_order_relaxed);
        local.explored_aspect_ratios = explored.load(std::memory_order_relaxed);
    }
    else
    {
        try
        {
            for (const auto& [w, h] : ratios)
            {
                auto solution = solver.solve(w, h);
                if (solution.has_value())
                {
                    result = std::move(solution);
                    break;
                }
                ++local.explored_aspect_ratios;
            }
        }
        catch (const timeout_signal&)
        {
            local.timed_out = true;
        }
        local.search_nodes = solver.num_search_nodes();
        local.deadline_checks = solver.num_deadline_checks();
    }

    local.runtime = watch.seconds();

    if (tel::enabled())
    {
        tel::count("exact.runs");
        tel::count("exact.search_nodes", local.search_nodes);
        tel::count("exact.deadline_checks", local.deadline_checks);
        tel::count("exact.explored_aspect_ratios", local.explored_aspect_ratios);
        if (local.timed_out)
        {
            tel::count("exact.timeouts");
        }
        tel::observe("exact.runtime_s", local.runtime);
    }

    if (stats != nullptr)
    {
        *stats = local;
    }
    return result;
}

}  // namespace mnt::pd
