#pragma once

/// \file input_ordering.hpp
/// \brief Input ordering ("InOrd") wrapper around ortho.
///
/// Stands in for Walter et al., "Versatile Signal Distribution Networks for
/// Scalable Placement and Routing of Field-coupled Nanocomputing
/// Technologies" (ISVLSI 2023): the order in which primary inputs enter the
/// signal distribution network strongly influences the area of
/// ortho-generated layouts. This wrapper explores several PI orderings —
/// identity, reversal, a barycenter heuristic (PIs sorted by the average
/// topological position of their users), and seeded random shuffles — runs
/// ortho for each, and keeps the smallest layout.

#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"
#include "physical_design/ortho.hpp"

#include <cstdint>

namespace mnt::pd
{

/// Parameters of \ref input_ordering_ortho.
struct input_ordering_params
{
    /// Parameters forwarded to each ortho run.
    ortho_params ortho{};

    /// Total orderings evaluated (>= 1; includes the heuristic ones).
    std::size_t max_orderings{8};

    /// Seed for the random orderings.
    std::uint64_t seed{1};
};

/// Statistics of an \ref input_ordering_ortho run.
struct input_ordering_stats
{
    double runtime{0.0};
    std::size_t orderings_tried{0};
    std::uint64_t best_area{0};
    std::uint64_t worst_area{0};
};

/// Runs ortho under multiple PI orderings and returns the smallest layout.
[[nodiscard]] lyt::gate_level_layout input_ordering_ortho(const ntk::logic_network& network,
                                                          const input_ordering_params& params = {},
                                                          input_ordering_stats* stats = nullptr);

/// Rebuilds \p network with its primary inputs created in the order given by
/// \p permutation (permutation[i] = index of the original PI that becomes
/// the i-th input). Names are preserved, so the result is name-equivalent.
///
/// \throws mnt::precondition_error if \p permutation is not a permutation of
///         [0, num_pis)
[[nodiscard]] ntk::logic_network reorder_pis(const ntk::logic_network& network,
                                             const std::vector<std::size_t>& permutation);

}  // namespace mnt::pd
