#include "physical_design/nanoplacer.hpp"

#include "common/taskrt/taskrt.hpp"
#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "layout/net_surgery.hpp"
#include "physical_design/exact.hpp"  // max_incoming_degree
#include "physical_design/ortho.hpp"
#include "network/transforms.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mnt::pd
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;
using ntk::logic_network;

double cost_of(const gate_level_layout& layout, const double lambda)
{
    // origin-anchored area: regular clocking schemes permit only 4-periodic
    // translations, so the north-west margin is usually not recoverable and
    // must be part of the optimization objective
    const auto [min_c, max_c] = layout.bounding_box();
    static_cast<void>(min_c);
    const auto w = static_cast<double>(max_c.x + 1);
    const auto h = static_cast<double>(max_c.y + 1);
    return w * h + lambda * static_cast<double>(layout.num_wires());
}

/// Locates the connection whose chain runs through the wire tile \p wire.
std::optional<lyt::connection> connection_through(const lyt::net_surgeon& surgeon,
                                                  const gate_level_layout& layout, const coordinate& wire)
{
    // walk forward to the terminating gate
    auto cur = wire;
    while (layout.type_of(cur) == gate_type::buf)
    {
        const auto& outs = layout.outgoing_of(cur);
        if (outs.empty())
        {
            return std::nullopt;  // dangling wire (mid-surgery state)
        }
        cur = outs[0];
    }
    // identify the slot whose chain contains the wire
    for (std::size_t slot = 0; slot < layout.incoming_of(cur).size(); ++slot)
    {
        auto conn = surgeon.trace_incoming(cur, slot);
        if (std::find(conn.chain.cbegin(), conn.chain.cend(), wire) != conn.chain.cend())
        {
            return conn;
        }
    }
    return std::nullopt;
}

/// Routes src -> dst; if that fails because src is walled in by wires of
/// other nets, evicts one blocking connection, routes, and re-routes the
/// victim (classic rip-up-and-reroute). Fully rolled back on failure.
bool route_with_unblock(lyt::net_surgeon& surgeon, const coordinate& src, const coordinate& dst)
{
    auto& layout = surgeon.layout();
    if (surgeon.route_shortest(src, dst).has_value())
    {
        return true;
    }

    for (const auto& exit : layout.outgoing_clocked(src))
    {
        // candidate victims blocking this exit: the crossing wire first
        // (ripping it keeps the ground wire crossable), then the ground wire
        std::vector<coordinate> victims;
        if (layout.type_of(exit.elevated()) == gate_type::buf)
        {
            victims.push_back(exit.elevated());
        }
        if (layout.type_of(exit) == gate_type::buf)
        {
            victims.push_back(exit);
        }

        for (const auto& victim : victims)
        {
            const auto conn = connection_through(surgeon, layout, victim);
            if (!conn.has_value())
            {
                continue;
            }
            surgeon.rip(*conn);

            if (surgeon.route_shortest(src, dst).has_value())
            {
                const auto feeder = surgeon.route_shortest(conn->src, conn->dst);
                if (feeder.has_value())
                {
                    lyt::detail::rebuild_slot_order(layout, conn->dst, {conn->dst_slot}, {*feeder});
                    return true;
                }
                // cannot re-route the victim: undo our edge (it was appended
                // to dst's fanins last), then restore the victim
                surgeon.rip(surgeon.trace_incoming(dst, layout.incoming_of(dst).size() - 1));
            }

            const auto restored = surgeon.restore(*conn);
            lyt::detail::rebuild_slot_order(layout, conn->dst, {conn->dst_slot}, {restored});
        }
    }
    return false;
}

/// Greedy constructive placement in topological order. Returns false when a
/// node could not be placed/routed on the given grid.
bool constructive_placement(gate_level_layout& layout, const logic_network& net,
                            const nanoplacer_params& params, std::mt19937_64& rng)
{
    lyt::net_surgeon surgeon{layout, params.max_route_expansions};
    surgeon.options().respect_needy_exits = true;
    surgeon.options().deadline = params.deadline;

    std::unordered_map<logic_network::node, coordinate> tile_of;

    for (const auto v : net.topological_order())
    {
        params.deadline.throw_if_expired("nanoplacer/constructive_placement");
        const auto t = net.type(v);
        if (t == gate_type::const0 || t == gate_type::const1)
        {
            continue;
        }
        const auto fis = net.fanins(v);

        // a tile is a usable step for future routes if it is empty or a
        // crossable ground wire
        const auto usable = [&](const coordinate& c)
        {
            return layout.is_empty_tile(c) ||
                   (layout.type_of(c) == gate_type::buf && layout.is_empty_tile(c.elevated()));
        };

        // placing on c must not consume the last free exit of a neighboring
        // gate that still needs outgoing connections (wall-in guard)
        const auto walls_in_neighbor = [&](const coordinate& c)
        {
            for (const auto& nb : lyt::planar_neighbors(c, layout.topology()))
            {
                if (!layout.within_bounds(nb) || layout.is_empty_tile(nb))
                {
                    continue;
                }
                const auto nb_type = layout.type_of(nb);
                if (nb_type == gate_type::buf || nb_type == gate_type::po)
                {
                    continue;  // wires are fully routed; POs need no exits
                }
                // v may consume nb directly, in which case c is its exit
                if (std::any_of(fis.begin(), fis.end(),
                                [&](const logic_network::node fi) { return tile_of.at(fi) == nb; }))
                {
                    continue;
                }
                const auto capacity = nb_type == gate_type::fanout ? std::size_t{2} : std::size_t{1};
                const auto used = layout.outgoing_of(nb).size();
                if (used >= capacity)
                {
                    continue;
                }
                std::size_t free_exits = 0;
                for (const auto& exit : layout.outgoing_clocked(nb))
                {
                    if (!(exit == c) && usable(exit))
                    {
                        ++free_exits;
                    }
                }
                if (free_exits < capacity - used)
                {
                    return true;
                }
            }
            return false;
        };

        // capacity prefilter: the node must be able to drive its successors
        // and receive all its fanins from tile c
        const auto exits_needed = [&]() -> std::size_t
        {
            if (t == gate_type::po)
            {
                return 0;
            }
            return t == gate_type::fanout ? 2 : 1;
        }();
        const auto capacity_ok = [&](const coordinate& c)
        {
            if (lyt::usable_exits(layout, c) < exits_needed)
            {
                return false;
            }
            auto entries = lyt::usable_entries(layout, c);
            for (const auto fi : fis)
            {
                const auto& src = tile_of.at(fi);
                if (lyt::are_adjacent(src, c, layout.topology()) &&
                    layout.clocking().is_incoming_clocked(c, src))
                {
                    ++entries;  // direct feed through the fanin's own tile
                }
            }
            return entries >= fis.size();
        };

        // candidate tiles, nearest to the fanins first (origin-biased),
        // with a random tie-break for stochastic diversity
        std::vector<std::pair<double, coordinate>> candidates;
        for (std::int32_t y = 0; y < static_cast<std::int32_t>(layout.height()); ++y)
        {
            for (std::int32_t x = 0; x < static_cast<std::int32_t>(layout.width()); ++x)
            {
                const coordinate c{x, y, 0};
                if (!layout.is_empty_tile(c))
                {
                    continue;
                }
                // per-scheme reachability from every fanin
                const auto reachable = std::all_of(fis.begin(), fis.end(),
                                                   [&](const logic_network::node fi) {
                                                       return lyt::may_flow(params.scheme, params.topology,
                                                                            tile_of.at(fi), c);
                                                   });
                if (!reachable || !capacity_ok(c) || walls_in_neighbor(c))
                {
                    continue;
                }
                double score = 0.05 * static_cast<double>(x + y);
                for (const auto fi : fis)
                {
                    score += static_cast<double>(lyt::grid_distance(tile_of.at(fi), c, layout.topology()));
                }
                score += std::uniform_real_distribution<double>{0.0, 0.5}(rng);
                candidates.emplace_back(score, c);
            }
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto& a, const auto& b)
                  { return a.first != b.first ? a.first < b.first : a.second < b.second; });

        constexpr std::size_t max_tries = 160;
        bool placed = false;
        std::size_t tries = 0;
        for (const auto& [score, c] : candidates)
        {
            // the candidate list is a snapshot: a rip-up-and-reroute for an
            // earlier fanin (or an earlier failed attempt) may have moved
            // another net across this tile since it was collected
            if (!layout.is_empty_tile(c))
            {
                continue;
            }
            if (++tries > max_tries)
            {
                break;
            }
            layout.place(c, t, (net.is_pi(v) || net.is_po(v)) ? net.name_of(v) : std::string{});

            bool routed_all = true;
            for (const auto fi : fis)
            {
                if (!route_with_unblock(surgeon, tile_of.at(fi), c))
                {
                    routed_all = false;
                    break;
                }
            }
            if (routed_all)
            {
                tile_of.emplace(v, c);
                placed = true;
                break;
            }
            // rip what was routed, free the tile
            for (std::size_t s = layout.incoming_of(c).size(); s > 0; --s)
            {
                surgeon.rip(surgeon.trace_incoming(c, s - 1));
            }
            layout.clear_tile(c);
        }
        if (!placed)
        {
            return false;
        }
    }
    return true;
}

/// The final quality metric (area, then wires): the best snapshot is
/// tracked by this key so more iterations can never end worse than fewer
/// for the same seed.
using layout_key = std::pair<std::uint64_t, std::size_t>;

[[nodiscard]] layout_key final_key(const gate_level_layout& l)
{
    const auto [min_c, max_c] = l.bounding_box();
    static_cast<void>(min_c);
    return {static_cast<std::uint64_t>(max_c.x + 1) * static_cast<std::uint64_t>(max_c.y + 1), l.num_wires()};
}

/// Non-wire tiles of \p layout — the relocatable gates of the annealer.
[[nodiscard]] std::vector<coordinate> gate_tiles(const gate_level_layout& layout)
{
    auto gates = layout.tiles_sorted();
    gates.erase(std::remove_if(gates.begin(), gates.end(),
                               [&](const coordinate& c) { return layout.type_of(c) == gate_type::buf; }),
                gates.end());
    return gates;
}

/// Everything one annealing chain owns. Chains never share mutable state:
/// each has its own layout copy, RNG stream and best snapshot, so segments
/// of different chains run concurrently without synchronization.
struct chain_state
{
    gate_level_layout layout;
    std::vector<coordinate> gates;
    std::mt19937_64 rng;
    double current_cost{0.0};
    double temperature{0.0};
    gate_level_layout best;
    layout_key best_key{};
};

/// Runs \p iterations annealing moves on \p st — the classic loop body,
/// verbatim: with a single chain and a single segment this consumes the RNG
/// stream in exactly the historic order, keeping single-chain output
/// byte-identical to previous releases.
void anneal_segment(chain_state& st, const nanoplacer_params& params, const double cooling,
                    const std::size_t iterations, nanoplacer_stats& segment_stats)
{
    lyt::net_surgeon surgeon{st.layout, params.max_route_expansions};
    surgeon.options().respect_needy_exits = true;
    surgeon.options().deadline = params.deadline;
    res::deadline_guard anneal_deadline{params.deadline, 64};

    std::uniform_real_distribution<double> uniform{0.0, 1.0};

    for (std::size_t it = 0; it < iterations; ++it, st.temperature *= cooling)
    {
        if (anneal_deadline.poll())
        {
            throw res::deadline_exceeded{"nanoplacer/annealing"};
        }
        ++segment_stats.attempted_moves;

        // pick a random gate; track its position across accepted moves
        auto& g = st.gates[std::uniform_int_distribution<std::size_t>{0, st.gates.size() - 1}(st.rng)];

        // random empty target, biased toward the origin
        const auto w = static_cast<std::int32_t>(st.layout.width());
        const auto h = static_cast<std::int32_t>(st.layout.height());
        coordinate target{};
        bool found = false;
        for (int probe = 0; probe < 12 && !found; ++probe)
        {
            const auto rx = std::min(std::uniform_int_distribution<std::int32_t>{0, w - 1}(st.rng),
                                     std::uniform_int_distribution<std::int32_t>{0, w - 1}(st.rng));
            const auto ry = std::min(std::uniform_int_distribution<std::int32_t>{0, h - 1}(st.rng),
                                     std::uniform_int_distribution<std::int32_t>{0, h - 1}(st.rng));
            const coordinate c{rx, ry, 0};
            if (st.layout.is_empty_tile(c) && st.layout.is_empty_tile(c.elevated()))
            {
                target = c;
                found = true;
            }
        }
        if (!found)
        {
            continue;
        }

        double new_cost = 0.0;
        const auto committed = lyt::try_relocate(surgeon, g, target,
                                                 [&]()
                                                 {
                                                     new_cost = cost_of(st.layout, params.lambda);
                                                     const auto delta = new_cost - st.current_cost;
                                                     return delta <= 0.0 ||
                                                            uniform(st.rng) < std::exp(-delta / st.temperature);
                                                 });
        if (committed)
        {
            st.current_cost = new_cost;
            g = target;
            ++segment_stats.accepted_moves;
            if (const auto key = final_key(st.layout); key < st.best_key)
            {
                st.best_key = key;
                st.best = st.layout;
            }
        }
    }
}

/// One-shot telemetry flush at the end of a nanoplacer run (counters are
/// accumulated locally so the annealing loop itself stays telemetry-free).
void flush_telemetry(const nanoplacer_stats& stats, const bool succeeded)
{
    if (!tel::enabled())
    {
        return;
    }
    tel::count("nanoplacer.runs");
    tel::count("nanoplacer.attempted_moves", stats.attempted_moves);
    tel::count("nanoplacer.accepted_moves", stats.accepted_moves);
    tel::count("nanoplacer.rejected_moves", stats.attempted_moves - stats.accepted_moves);
    tel::count("nanoplacer.restarts", stats.restarts);
    if (!succeeded)
    {
        tel::count("nanoplacer.failures");
    }
    tel::observe("nanoplacer.runtime_s", stats.runtime);
}

}  // namespace

std::uint64_t nanoplacer_chain_seed(const std::uint64_t base_seed, const std::size_t chain) noexcept
{
    // splitmix64 finalizer over (seed, chain) — the same derivation style as
    // pbt::rng, so chain streams are decorrelated even for adjacent seeds
    auto z = base_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chain) + 1);
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
}

std::optional<gate_level_layout> nanoplacer(const logic_network& network, const nanoplacer_params& params,
                                            nanoplacer_stats* stats)
{
    MNT_SPAN("nanoplacer");
    const tel::stopwatch watch;

    if (network.num_pos() == 0)
    {
        throw precondition_error{"nanoplacer: network has no primary outputs"};
    }
    if (params.scheme == lyt::clocking_kind::open)
    {
        throw precondition_error{"nanoplacer: the OPEN clocking scheme is not supported"};
    }

    auto net = ntk::propagate_constants(network);
    if (max_incoming_degree(params.scheme, params.topology) < 3)
    {
        net = ntk::decompose_maj(net);
    }
    net = ntk::substitute_fanouts(net, 2);

    bool constant_po = false;
    net.foreach_po(
        [&](const logic_network::node po)
        {
            if (net.is_constant(net.fanins(po)[0]))
            {
                constant_po = true;
            }
        });
    if (constant_po)
    {
        throw precondition_error{"nanoplacer: constant primary outputs are not supported on FCN layouts"};
    }

    std::size_t placeable = 0;
    net.foreach_node(
        [&](const logic_network::node v)
        {
            if (!net.is_constant(v))
            {
                ++placeable;
            }
        });

    nanoplacer_stats local{};
    std::mt19937_64 rng{params.seed};

    std::optional<gate_level_layout> layout;
    if (params.scheme == lyt::clocking_kind::twoddwave && params.topology == lyt::layout_topology::cartesian)
    {
        // hybrid flow (as in the original "hybrid design automation" paper):
        // a deterministic ortho layout seeds the annealer, which then only
        // ever sees feasible states — scales to any network size
        auto seeded = ortho(network);
        const auto w = seeded.width() + seeded.width() / 4 + 2;
        const auto h = seeded.height() + seeded.height() / 4 + 2;
        seeded.resize(w, h);  // slack for the annealing moves
        layout = std::move(seeded);
    }
    else
    {
        // snaking schemes: greedy constructive placement with
        // rip-up-and-reroute, retried on growing grids
        auto side = static_cast<std::uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(placeable)) * params.grid_factor) + 2);
        for (std::size_t attempt = 0; attempt <= params.max_restarts; ++attempt)
        {
            gate_level_layout trial{network.network_name(), params.topology,
                                    lyt::clocking_scheme::create(params.scheme), side, side};
            if (constructive_placement(trial, net, params, rng))
            {
                layout = std::move(trial);
                break;
            }
            ++local.restarts;
            side = static_cast<std::uint32_t>(side * 3 / 2 + 1);
        }
    }

    if (!layout.has_value())
    {
        local.runtime = watch.seconds();
        flush_telemetry(local, /*succeeded=*/false);
        if (stats != nullptr)
        {
            *stats = local;
        }
        return std::nullopt;
    }

    // simulated annealing over gate relocations
    const double cooling =
        params.iterations > 1 ? std::pow(params.t_end / params.t_start, 1.0 / static_cast<double>(params.iterations))
                              : 1.0;
    const auto chain_count = std::max<std::size_t>(params.chains, 1);

    if (chain_count == 1)
    {
        // classic single-chain annealer: one segment covering the whole
        // schedule, continuing the RNG stream the constructive placement
        // consumed from — byte-identical to all previous releases
        chain_state st{std::move(*layout), {}, std::move(rng), 0.0, params.t_start, {}, {}};
        st.gates = gate_tiles(st.layout);
        st.current_cost = cost_of(st.layout, params.lambda);
        st.best = st.layout;  // snapshot of the best solution seen (SA may end uphill)
        st.best_key = final_key(st.best);
        anneal_segment(st, params, cooling, params.iterations, local);
        *layout = std::move(st.best);
    }
    else
    {
        // multi-chain parallel annealing with periodic best-exchange: chains
        // anneal independent copies, synchronizing at fixed iteration
        // boundaries where the currently-worst chain restarts from the
        // globally best snapshot. All exchange decisions are deterministic
        // (keys, then chain index), so the result depends only on
        // (seed, chains, iterations) — not on the thread count.
        std::vector<chain_state> states;
        states.reserve(chain_count);
        for (std::size_t c = 0; c < chain_count; ++c)
        {
            chain_state st{*layout,
                           gate_tiles(*layout),
                           std::mt19937_64{nanoplacer_chain_seed(params.seed, c)},
                           cost_of(*layout, params.lambda),
                           params.t_start,
                           *layout,
                           final_key(*layout)};
            states.push_back(std::move(st));
        }

        const auto period = params.exchange_period > 0 ? params.exchange_period : params.iterations;
        std::size_t remaining = params.iterations;
        while (remaining > 0)
        {
            const auto segment = std::min(period, remaining);
            std::vector<nanoplacer_stats> segment_stats(chain_count);
            trt::parallel_for(0, chain_count, 1,
                              [&](const std::size_t chunk_begin, const std::size_t chunk_end)
                              {
                                  for (std::size_t c = chunk_begin; c < chunk_end; ++c)
                                  {
                                      anneal_segment(states[c], params, cooling, segment, segment_stats[c]);
                                  }
                              });
            for (const auto& s : segment_stats)
            {
                local.attempted_moves += s.attempted_moves;
                local.accepted_moves += s.accepted_moves;
            }
            remaining -= segment;

            if (remaining > 0)
            {
                // deterministic exchange: lowest-index best chain donates its
                // snapshot to the (first) worst current chain
                std::size_t best_chain = 0;
                std::size_t worst_chain = 0;
                for (std::size_t c = 1; c < chain_count; ++c)
                {
                    if (states[c].best_key < states[best_chain].best_key)
                    {
                        best_chain = c;
                    }
                    if (final_key(states[c].layout) > final_key(states[worst_chain].layout))
                    {
                        worst_chain = c;
                    }
                }
                if (worst_chain != best_chain)
                {
                    states[worst_chain].layout = states[best_chain].best;
                    states[worst_chain].gates = gate_tiles(states[worst_chain].layout);
                    states[worst_chain].current_cost = cost_of(states[worst_chain].layout, params.lambda);
                }
            }
        }

        std::size_t winner = 0;
        for (std::size_t c = 1; c < chain_count; ++c)
        {
            if (states[c].best_key < states[winner].best_key)
            {
                winner = c;
            }
        }
        *layout = std::move(states[winner].best);
    }

    layout->shrink_to_fit();

    local.runtime = watch.seconds();
    flush_telemetry(local, /*succeeded=*/true);
    if (stats != nullptr)
    {
        *stats = local;
    }
    return layout;
}

}  // namespace mnt::pd
