#pragma once

/// \file portfolio.hpp
/// \brief The MNT Bench tool portfolio: runs all feasible combinations of
///        physical design algorithms, optimizations and clocking schemes for
///        a benchmark function and collects the resulting layouts — the
///        machinery behind contribution #2/#3 of the paper (filterable
///        layout generation and best-layout selection).

#include "layout/clocking_scheme.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mnt::pd
{

/// One generated layout with its provenance — the row data of Table I.
struct layout_result
{
    lyt::gate_level_layout layout;

    /// Physical design algorithm: "exact", "ortho", or "NPR".
    std::string algorithm;

    /// Applied optimizations in order, e.g. {"InOrd (SDN)", "45°", "PLO"}.
    std::vector<std::string> optimizations;

    /// Clocking scheme name.
    std::string clocking;

    /// Wall-clock seconds spent producing this layout.
    double runtime{0.0};

    /// Combined display label, e.g. "ortho, InOrd (SDN), PLO".
    [[nodiscard]] std::string label() const;
};

/// Portfolio configuration. Thresholds keep the expensive tools on the
/// instance sizes they can handle — mirroring how MNT Bench applies exact
/// only to small functions and NanoPlaceR to small/medium ones.
struct portfolio_params
{
    bool try_exact{true};
    /// exact is attempted when the placeable node count is at most this.
    std::size_t exact_max_nodes{11};
    double exact_timeout_s{2.0};
    std::uint64_t exact_max_area{60};

    bool try_nanoplacer{true};
    std::size_t nanoplacer_max_nodes{90};
    std::size_t nanoplacer_iterations{1500};
    std::uint64_t seed{1};

    bool try_ortho{true};
    bool try_input_ordering{true};
    std::size_t input_orderings{6};

    bool try_plo{true};
    /// PLO is skipped when a layout has more occupied tiles than this.
    std::size_t plo_max_tiles{20000};
    std::size_t plo_max_gate_moves{20000};

    /// Cartesian clocking schemes to explore with exact/NanoPlaceR
    /// (ortho is inherently 2DDWave).
    std::vector<lyt::clocking_kind> cartesian_schemes{lyt::clocking_kind::twoddwave, lyt::clocking_kind::use,
                                                      lyt::clocking_kind::res, lyt::clocking_kind::esr};

    /// Run the logic optimization pipeline (constant propagation,
    /// structural hashing, balancing) before physical design. Function- and
    /// interface-preserving; benchmarks are distributed unoptimized, so this
    /// is off by default (matching the paper's N counts).
    bool optimize_network{false};

    /// Verify every produced layout against the network (slower; used by
    /// tests and the small benchmark sets). Small layouts are additionally
    /// checked with the clock-phase-accurate wave simulator.
    bool verify{false};
};

/// Runs the Cartesian (QCA ONE) portfolio on \p network.
///
/// \throws mnt::mnt_error if verification is enabled and a layout fails it
[[nodiscard]] std::vector<layout_result> run_cartesian_portfolio(const ntk::logic_network& network,
                                                                 const portfolio_params& params = {});

/// Runs the hexagonal (Bestagon) portfolio on \p network: exact on the hex
/// grid for small functions, ortho(+InOrd)+45° hexagonalization for all, PLO
/// on top where budgeted.
[[nodiscard]] std::vector<layout_result> run_hexagonal_portfolio(const ntk::logic_network& network,
                                                                 const portfolio_params& params = {});

/// Pointer to the area-minimal result (ties: fewer wires, then label), or
/// nullptr when \p results is empty.
[[nodiscard]] const layout_result* best_by_area(const std::vector<layout_result>& results);

}  // namespace mnt::pd
