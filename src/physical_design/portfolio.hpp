#pragma once

/// \file portfolio.hpp
/// \brief The MNT Bench tool portfolio: runs all feasible combinations of
///        physical design algorithms, optimizations and clocking schemes for
///        a benchmark function and collects the resulting layouts — the
///        machinery behind contribution #2/#3 of the paper (filterable
///        layout generation and best-layout selection).

#include "common/resilience.hpp"
#include "layout/clocking_scheme.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mnt::pd
{

/// One generated layout with its provenance — the row data of Table I.
struct layout_result
{
    lyt::gate_level_layout layout;

    /// Physical design algorithm: "exact", "ortho", or "NPR".
    std::string algorithm;

    /// Applied optimizations in order, e.g. {"InOrd (SDN)", "45°", "PLO"}.
    std::vector<std::string> optimizations;

    /// Clocking scheme name.
    std::string clocking;

    /// Wall-clock seconds spent producing this layout.
    double runtime{0.0};

    /// Combined display label, e.g. "ortho, InOrd (SDN), PLO".
    [[nodiscard]] std::string label() const;
};

/// Portfolio configuration. Thresholds keep the expensive tools on the
/// instance sizes they can handle — mirroring how MNT Bench applies exact
/// only to small functions and NanoPlaceR to small/medium ones.
struct portfolio_params
{
    bool try_exact{true};
    /// exact is attempted when the placeable node count is at most this.
    std::size_t exact_max_nodes{11};
    double exact_timeout_s{2.0};
    std::uint64_t exact_max_area{60};

    bool try_nanoplacer{true};
    std::size_t nanoplacer_max_nodes{90};
    std::size_t nanoplacer_iterations{1500};
    std::uint64_t seed{1};

    bool try_ortho{true};
    bool try_input_ordering{true};
    std::size_t input_orderings{6};

    bool try_plo{true};
    /// PLO is skipped when a layout has more occupied tiles than this.
    std::size_t plo_max_tiles{20000};
    std::size_t plo_max_gate_moves{20000};

    /// Cartesian clocking schemes to explore with exact/NanoPlaceR
    /// (ortho is inherently 2DDWave).
    std::vector<lyt::clocking_kind> cartesian_schemes{lyt::clocking_kind::twoddwave, lyt::clocking_kind::use,
                                                      lyt::clocking_kind::res, lyt::clocking_kind::esr};

    /// Run the logic optimization pipeline (constant propagation,
    /// structural hashing, balancing) before physical design. Function- and
    /// interface-preserving; benchmarks are distributed unoptimized, so this
    /// is off by default (matching the paper's N counts).
    bool optimize_network{false};

    /// Verify every produced layout against the network (slower; used by
    /// tests and the small benchmark sets). Small layouts are additionally
    /// checked with the clock-phase-accurate wave simulator.
    bool verify{false};

    /// Global wall-clock budget in seconds for the whole portfolio run
    /// (0 = unbounded). The deadline is cooperative: every algorithm polls it
    /// and unwinds, and the affected combinations are reported as timeout
    /// outcomes while everything already produced is kept.
    double deadline_s{0.0};

    /// Attempts per combination (>= 1). Transient failures — verification
    /// failures of stochastic tools — are retried under a shifted seed;
    /// timeouts and hard errors fail fast.
    std::size_t max_attempts{2};

    /// Base backoff before a retry in seconds (0 retries immediately, the
    /// right setting for in-process seed-shift retries).
    double retry_backoff_s{0.0};

    /// Incremental-regeneration hook: called with each combination label
    /// (e.g. "NPR@USE") before the combination runs; returning true skips it
    /// entirely — no layout, no outcome entry. Wired to the layout store's
    /// cache keys by the service layer (see mnt::svc::populate_store). Must
    /// be thread-safe when \ref jobs > 1. Unset = run everything.
    std::function<bool(const std::string&)> is_cached{};

    /// Worker threads for independent top-level combinations (1 = run
    /// sequentially on the caller's thread). Results and outcomes are merged
    /// in deterministic task order, so the output is identical for any job
    /// count; an optimization follow-up (PLO) stays on its base
    /// combination's worker.
    std::size_t jobs{1};

    /// Optional external cancellation flag (stop_token style): once set, the
    /// run's deadline reads as expired, every algorithm unwinds at its next
    /// poll, and generate_portfolio returns what it has. This is how SIGINT/
    /// SIGTERM handlers stop a regeneration without losing completed work.
    std::shared_ptr<const std::atomic<bool>> stop{};
};

/// The two grid families of the MNT Bench portfolio.
enum class portfolio_flavor : std::uint8_t
{
    cartesian,  ///< QCA ONE: Cartesian grids, 2DDWave/USE/RES/ESR clocking
    hexagonal   ///< Bestagon: hexagonal grids, ROW clocking
};

/// Everything one portfolio run produced: the healthy layouts plus one
/// structured outcome per attempted combination (ok and failed alike) — the
/// failure manifest behind the run report.
struct portfolio_run
{
    std::vector<layout_result> results;
    std::vector<res::combo_outcome> outcomes;

    /// Outcomes with kind != ok, i.e. the failure manifest.
    [[nodiscard]] std::vector<res::combo_outcome> failures() const;
};

/// Runs the portfolio on \p network under full fault isolation: every
/// algorithm × clocking × optimization combination executes inside
/// \ref mnt::res::run_guarded, so one crashing, timing-out or misverifying
/// combination costs exactly its own entry while every healthy layout is
/// still returned.
[[nodiscard]] portfolio_run generate_portfolio(const ntk::logic_network& network, portfolio_flavor flavor,
                                               const portfolio_params& params = {});

/// Runs the Cartesian (QCA ONE) portfolio on \p network and returns the
/// healthy layouts. Convenience wrapper over \ref generate_portfolio —
/// failed combinations are dropped silently here; use generate_portfolio
/// when the failure manifest matters.
[[nodiscard]] std::vector<layout_result> run_cartesian_portfolio(const ntk::logic_network& network,
                                                                 const portfolio_params& params = {});

/// Runs the hexagonal (Bestagon) portfolio on \p network: exact on the hex
/// grid for small functions, ortho(+InOrd)+45° hexagonalization for all, PLO
/// on top where budgeted. Wrapper over \ref generate_portfolio like
/// \ref run_cartesian_portfolio.
[[nodiscard]] std::vector<layout_result> run_hexagonal_portfolio(const ntk::logic_network& network,
                                                                 const portfolio_params& params = {});

/// Pointer to the area-minimal result (ties: fewer wires, then label), or
/// nullptr when \p results is empty.
[[nodiscard]] const layout_result* best_by_area(const std::vector<layout_result>& results);

}  // namespace mnt::pd
