#pragma once

/// \file resilience.hpp
/// \brief Resilient execution for the layout-generation pipeline: structured
///        per-combination outcomes, a cooperative global run deadline, a
///        bounded retry policy with jittered backoff, and a near-zero-cost
///        fault-injection hook — the machinery that lets the portfolio
///        degrade gracefully instead of losing every good result to one
///        misbehaving algorithm × clocking × optimization combination.
///
/// Design constraints (see DESIGN.md "Failure semantics & resilience"):
///
/// - **Isolation.** \ref run_guarded executes one combination and maps every
///   escape path (mnt_error, std::bad_alloc, unknown exceptions, deadline
///   expiry) to a \ref combo_outcome instead of letting it abort the whole
///   portfolio.
/// - **Cooperative deadlines.** \ref deadline_clock is a copyable value
///   threaded through algorithm parameter structs; long-running loops poll
///   it through a strided \ref deadline_guard and unwind with
///   \ref deadline_exceeded, so a global budget interrupts `exact`, the
///   annealer, `ortho` and the router without detached threads or signals.
/// - **Deterministic retries.** Transient failures (verification failures of
///   stochastic tools) are retried up to a bound with a jittered backoff
///   computed from a counter hash — no wall-clock entropy, reproducible in
///   tests.
/// - **Zero cost when off.** Fault injection compiles to a single relaxed
///   atomic load per site when MNT_FAULT_INJECT is unset, and to nothing at
///   all under -DMNT_NO_FAULT_INJECTION.

#include "common/types.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace mnt::res
{

// ----------------------------------------------------------- error taxonomy

/// Raised (cooperatively) when the global run deadline expires inside an
/// algorithm. \ref run_guarded maps it to outcome_kind::timeout; it is
/// deliberately NOT a subclass of the per-module error types so generic
/// mnt_error handlers inside algorithms cannot swallow a cancellation by
/// accident — catch it explicitly or let it unwind.
class deadline_exceeded : public mnt_error
{
public:
    explicit deadline_exceeded(const std::string& where) : mnt_error{"deadline exceeded in " + where} {}
};

// ------------------------------------------------------------ deadline_clock

/// A copyable, shareable run deadline: an absolute steady-clock point plus an
/// optional external stop flag (stop_token style). Default-constructed clocks
/// are unbounded and never expire, so threading one through parameter structs
/// costs nothing on the common path.
class deadline_clock
{
public:
    using clock = std::chrono::steady_clock;

    /// Unbounded: never expires.
    deadline_clock() = default;

    /// Expires \p seconds from now (<= 0 means already expired).
    [[nodiscard]] static deadline_clock after(const double seconds)
    {
        deadline_clock d{};
        d.point = clock::now() + std::chrono::duration_cast<clock::duration>(
                                     std::chrono::duration<double>(seconds));
        return d;
    }

    [[nodiscard]] static deadline_clock unbounded() noexcept
    {
        return deadline_clock{};
    }

    /// Attaches an external cancellation flag; \ref expired also returns true
    /// once the flag is set, independent of the time budget.
    void attach_stop(std::shared_ptr<const std::atomic<bool>> flag) noexcept
    {
        stop_flag = std::move(flag);
    }

    /// Returns a copy that additionally observes \p flag — used by the task
    /// runtime to compose a race's cancellation token with an already
    /// attached stop flag (e.g. the CLI's SIGINT flag) without replacing it.
    /// Two external flags are supported per clock, which covers the deepest
    /// real chain (portfolio stop + first_winner cancel); deriving a third
    /// time overwrites the second slot.
    [[nodiscard]] deadline_clock with_stop(std::shared_ptr<const std::atomic<bool>> flag) const
    {
        deadline_clock d{*this};
        if (d.stop_flag == nullptr)
        {
            d.stop_flag = std::move(flag);
        }
        else
        {
            d.stop_flag2 = std::move(flag);
        }
        return d;
    }

    /// True when a time budget is set or a stop flag is attached.
    [[nodiscard]] bool bounded() const noexcept
    {
        return point != clock::time_point::max() || stop_flag != nullptr || stop_flag2 != nullptr;
    }

    [[nodiscard]] bool expired() const noexcept
    {
        if (stop_flag != nullptr && stop_flag->load(std::memory_order_relaxed))
        {
            return true;
        }
        if (stop_flag2 != nullptr && stop_flag2->load(std::memory_order_relaxed))
        {
            return true;
        }
        return point != clock::time_point::max() && clock::now() >= point;
    }

    /// Seconds left (+infinity when unbounded, clamped at 0 when expired).
    [[nodiscard]] double remaining_s() const noexcept
    {
        if (point == clock::time_point::max())
        {
            return std::numeric_limits<double>::infinity();
        }
        const auto left = std::chrono::duration<double>(point - clock::now()).count();
        return left > 0.0 ? left : 0.0;
    }

    /// \throws deadline_exceeded when expired
    void throw_if_expired(const char* where) const
    {
        if (expired())
        {
            throw deadline_exceeded{where};
        }
    }

private:
    clock::time_point point{clock::time_point::max()};
    std::shared_ptr<const std::atomic<bool>> stop_flag{};
    std::shared_ptr<const std::atomic<bool>> stop_flag2{};
};

/// Strided deadline poll for hot loops: consults the clock only every
/// \p stride calls (stride must be a power of two), including the very first
/// one, so an already-expired deadline is noticed immediately. Unbounded
/// clocks reduce the whole poll to a counter increment and one branch.
class deadline_guard
{
public:
    explicit deadline_guard(const deadline_clock& clock, const std::uint32_t stride = 1024) noexcept :
            deadline{clock},
            mask{stride - 1},
            active{clock.bounded()}
    {}

    /// True when the deadline has expired (checked every stride-th call).
    [[nodiscard]] bool poll() noexcept
    {
        if (!active || (counter++ & mask) != 0)
        {
            return false;
        }
        return deadline.expired();
    }

    /// \throws deadline_exceeded every stride-th call when expired
    void poll_or_throw(const char* where)
    {
        if (!active)
        {
            return;
        }
        if ((counter++ & mask) == 0 && deadline.expired())
        {
            throw deadline_exceeded{where};
        }
    }

private:
    const deadline_clock& deadline;
    std::uint32_t counter{0};
    std::uint32_t mask;
    bool active;
};

// ------------------------------------------------------------ combo_outcome

/// How one guarded combination ended. The last two kinds cannot be produced
/// by in-process guarded execution — they are the crash taxonomy of the
/// process-isolated worker supervisor (common/supervisor.hpp): a child that
/// dies on a signal maps to \ref crashed, one the watchdog had to kill after
/// its heartbeat went silent maps to \ref hung.
enum class outcome_kind : std::uint8_t
{
    ok,                   ///< completed (possibly without producing a layout)
    timeout,              ///< global deadline or per-tool budget expired
    verification_failed,  ///< produced layout is not equivalent to its spec
    oom,                  ///< allocation failure (std::bad_alloc)
    internal_error,       ///< any other exception
    crashed,              ///< worker process died on a signal (SIGSEGV, ...)
    hung                  ///< worker stopped heartbeating; watchdog killed it
};

/// Stable lower-case name ("ok", "timeout", ...), used in telemetry counter
/// names, events, and the failure-manifest JSON.
[[nodiscard]] const char* outcome_kind_name(outcome_kind kind) noexcept;

/// Structured result of one guarded portfolio combination — one row of the
/// failure manifest.
struct combo_outcome
{
    /// Combination label, e.g. "NPR@USE" or "ortho@ROW+InOrd (SDN)+45°".
    std::string label;
    outcome_kind kind{outcome_kind::ok};
    /// Failure detail (exception message); empty for ok outcomes.
    std::string message;
    /// Wall-clock seconds spent across all attempts.
    double elapsed_s{0.0};
    /// Attempts performed (> 1 when transient failures were retried).
    std::size_t attempts{1};

    [[nodiscard]] bool is_ok() const noexcept
    {
        return kind == outcome_kind::ok;
    }
};

// -------------------------------------------------------------- retry_policy

/// Bounded retry with deterministic jittered exponential backoff. Only
/// outcome kinds tagged transient are retried; everything else fails fast.
struct retry_policy
{
    /// Total attempts (1 = no retry).
    std::size_t max_attempts{1};

    /// Backoff before attempt k (k >= 2):
    /// backoff_base_s * backoff_factor^(k - 2), jittered. 0 retries
    /// immediately — the right setting for seed-shift retries of in-process
    /// stochastic tools (there is no external resource to wait out).
    double backoff_base_s{0.0};
    double backoff_factor{2.0};

    /// Fraction of the delay that is randomized: the delay is drawn
    /// uniformly from [(1 - jitter) * d, (1 + jitter) * d].
    double jitter{0.5};

    /// Seed of the deterministic jitter hash.
    std::uint64_t seed{1};

    /// Transient kinds. Verification failures are transient by default:
    /// stochastic tools (the annealer, random input orderings) can succeed
    /// under a shifted seed.
    bool retry_verification{true};
    bool retry_oom{false};
    bool retry_internal{false};

    [[nodiscard]] bool is_transient(const outcome_kind kind) const noexcept
    {
        switch (kind)
        {
            case outcome_kind::verification_failed: return retry_verification;
            case outcome_kind::oom: return retry_oom;
            case outcome_kind::internal_error: return retry_internal;
            case outcome_kind::ok:
            case outcome_kind::timeout: return false;
            // worker-level kinds are retried at the job level (journal resume
            // re-queues crashed jobs), never inside one process
            case outcome_kind::crashed:
            case outcome_kind::hung: return false;
        }
        return false;
    }
};

/// Deterministic jittered delay before attempt \p attempt (>= 2) of the
/// combination identified by \p salt. Pure function of (policy, attempt,
/// salt) — no global RNG, no wall clock.
[[nodiscard]] double backoff_delay_s(const retry_policy& policy, std::size_t attempt, std::uint64_t salt) noexcept;

/// Sleeps for \p seconds, but never past \p deadline (returns early).
void backoff_sleep(double seconds, const deadline_clock& deadline);

// -------------------------------------------------------------- run_guarded

/// Parameters of \ref run_guarded.
struct guard_params
{
    deadline_clock deadline{};
    retry_policy retry{};
};

namespace detail
{
[[nodiscard]] std::uint64_t label_salt(std::string_view label) noexcept;

/// Reports one retry of \p label (about to re-run after a transient
/// \p kind on attempt \p attempt) to the structured event log. Out-of-line
/// so this header does not pull in the event log.
void note_retry(std::string_view label, std::string_view kind, std::size_t attempt);
}  // namespace detail

/// Executes one portfolio combination under full fault isolation.
///
/// \p body is invoked as `body(attempt)` with attempt = 1, 2, ... and may
/// either return void (completion = ok) or an \ref outcome_kind (so a tool
/// can report a soft timeout without unwinding). Exceptions map to outcomes:
///
/// | escape path                   | outcome_kind        |
/// |-------------------------------|---------------------|
/// | returns                       | ok (or returned kind)|
/// | deadline_exceeded             | timeout             |
/// | verification_error            | verification_failed |
/// | std::bad_alloc                | oom                 |
/// | other std::exception          | internal_error      |
/// | anything else (`...`)         | internal_error      |
///
/// Transient outcomes (per \p params.retry) are retried up to
/// retry.max_attempts with jittered backoff, never past the deadline. An
/// already-expired deadline short-circuits to a timeout outcome without
/// running \p body at all.
template <typename F>
[[nodiscard]] combo_outcome run_guarded(std::string label, const guard_params& params, F&& body)
{
    combo_outcome outcome{};
    outcome.label = std::move(label);
    const auto salt = detail::label_salt(outcome.label);
    const auto t0 = std::chrono::steady_clock::now();

    if (params.deadline.expired())
    {
        outcome.kind = outcome_kind::timeout;
        outcome.message = "deadline expired before start";
        outcome.attempts = 0;
        return outcome;
    }

    for (std::size_t attempt = 1;; ++attempt)
    {
        outcome.attempts = attempt;
        try
        {
            if constexpr (std::is_void_v<decltype(body(attempt))>)
            {
                body(attempt);
                outcome.kind = outcome_kind::ok;
            }
            else
            {
                outcome.kind = body(attempt);
            }
            outcome.message.clear();
            if (outcome.kind == outcome_kind::ok)
            {
                break;
            }
        }
        catch (const deadline_exceeded& e)
        {
            outcome.kind = outcome_kind::timeout;
            outcome.message = e.what();
            break;  // the whole run is out of budget: never retried
        }
        catch (const verification_error& e)
        {
            outcome.kind = outcome_kind::verification_failed;
            outcome.message = e.what();
        }
        catch (const std::bad_alloc&)
        {
            outcome.kind = outcome_kind::oom;
            outcome.message = "allocation failure (std::bad_alloc)";
        }
        catch (const std::exception& e)
        {
            outcome.kind = outcome_kind::internal_error;
            outcome.message = e.what();
        }
        catch (...)
        {
            outcome.kind = outcome_kind::internal_error;
            outcome.message = "unknown exception";
        }

        if (!params.retry.is_transient(outcome.kind) || attempt >= params.retry.max_attempts ||
            params.deadline.expired())
        {
            break;
        }
        detail::note_retry(outcome.label, outcome_kind_name(outcome.kind), attempt);
        backoff_sleep(backoff_delay_s(params.retry, attempt + 1, salt), params.deadline);
    }

    outcome.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return outcome;
}

// ------------------------------------------------------------ fault injection

namespace fault
{

/// Installs a fault plan, overriding the environment and any earlier plan
/// (used by tests and the CLI). Spec syntax — comma-separated sites:
///
///   site[:probability[:seed]][,site[:probability[:seed]]...]
///
/// e.g. "verify.check:0.5:7,route.search:0.01". Probability defaults to 1,
/// seed to 1. An empty spec disables injection.
///
/// A site may instead carry a counted kill-point trigger `site=N`: the site
/// fires exactly on its N-th query (N >= 1) and never otherwise. This is how
/// the crash-recovery harness pins a process death to one precise journal
/// append, e.g. `MNT_FAULT_INJECT=journal.kill_after=3` (see
/// service/journal.hpp — that site SIGKILLs the process, simulating a power
/// loss immediately after the third durable journal record).
///
/// \throws mnt::mnt_error on malformed specs
void configure(const std::string& spec);

/// (Re-)reads the plan from the MNT_FAULT_INJECT environment variable; an
/// unset/empty variable disables injection.
void configure_from_environment();

/// True when any site is armed. Single relaxed atomic load — the disabled
/// path of every fault point reduces to this.
[[nodiscard]] bool enabled() noexcept;

/// True when the named site should fail now. Deterministic per (seed, firing
/// index): the n-th query of a site fires iff hash(seed, n) < probability.
[[nodiscard]] bool fire(std::string_view site) noexcept;

/// Currently armed sites, as a normalized spec string (diagnostics/tests).
[[nodiscard]] std::string current_spec();

/// The standard error raised by non-verifier injection sites.
class injected_fault : public mnt_error
{
public:
    explicit injected_fault(const std::string_view site) :
            mnt_error{"injected fault at " + std::string{site} + " (MNT_FAULT_INJECT)"}
    {}
};

/// \throws injected_fault when \p site fires
inline void maybe_fail(const std::string_view site)
{
    if (fire(site))
    {
        throw injected_fault{site};
    }
}

}  // namespace fault

/// Fault points compile to a no-op under -DMNT_NO_FAULT_INJECTION; otherwise
/// the disabled-path cost is one relaxed atomic load and a branch.
#if defined(MNT_NO_FAULT_INJECTION)
#define MNT_FAULT_POINT(site) ((void)0)
#define MNT_FAULT_FIRES(site) (false)
#else
#define MNT_FAULT_POINT(site) (::mnt::res::fault::maybe_fail(site))
#define MNT_FAULT_FIRES(site) (::mnt::res::fault::fire(site))
#endif

}  // namespace mnt::res
