#pragma once

/// \file types.hpp
/// \brief Fundamental types and error handling shared by all MNT modules.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mnt
{

/// Base exception type for all errors raised by the MNT library.
///
/// Every module throws a subclass (or this type directly) so that callers can
/// catch library failures with a single handler while still discriminating
/// parse errors from design-rule violations etc. via the derived types.
class mnt_error : public std::runtime_error
{
public:
    explicit mnt_error(const std::string& what_arg) : std::runtime_error{what_arg} {}
};

/// Raised when an input file (Verilog, .fgl, ...) cannot be parsed.
class parse_error : public mnt_error
{
public:
    parse_error(const std::string& what_arg, const std::size_t line) :
            mnt_error{"parse error (line " + std::to_string(line) + "): " + what_arg},
            line_number{line}
    {}

    /// 1-based line number at which parsing failed.
    std::size_t line_number;
};

/// Raised when an operation is requested on an object that does not satisfy
/// the operation's preconditions (e.g. routing on an unclocked layout).
class precondition_error : public mnt_error
{
public:
    explicit precondition_error(const std::string& what_arg) : mnt_error{what_arg} {}
};

/// Raised when a layout violates a design rule (used by the DRC and by
/// validating readers).
class design_rule_error : public mnt_error
{
public:
    explicit design_rule_error(const std::string& what_arg) : mnt_error{what_arg} {}
};

/// Raised when a generated layout fails functional verification against its
/// specification (equivalence or wave simulation). Distinguished from the
/// other kinds so the resilient portfolio can classify it as transient and
/// retry stochastic tools under a shifted seed.
class verification_error : public mnt_error
{
public:
    explicit verification_error(const std::string& what_arg) : mnt_error{what_arg} {}
};

}  // namespace mnt
