#include "common/supervisor.hpp"

#include "common/types.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace mnt::sup
{

namespace
{

/// Bounded ring over the child's stderr stream: O(1) append, keeps only the
/// trailing `limit` bytes — exactly what a failure record wants.
struct tail_buffer
{
    std::string data;
    std::size_t limit;

    explicit tail_buffer(const std::size_t l) : limit{l} {}

    void append(const char* bytes, const std::size_t n)
    {
        if (limit == 0 || n == 0)
        {
            return;
        }
        if (n >= limit)
        {
            data.assign(bytes + (n - limit), limit);
            return;
        }
        if (data.size() + n > limit)
        {
            data.erase(0, data.size() + n - limit);
        }
        data.append(bytes, n);
    }
};

/// RAII pair of pipe fds; -1 means closed/moved.
struct pipe_pair
{
    int fds[2]{-1, -1};

    bool open() noexcept
    {
        return ::pipe(fds) == 0;
    }

    void close_read() noexcept
    {
        if (fds[0] >= 0)
        {
            ::close(fds[0]);
            fds[0] = -1;
        }
    }

    void close_write() noexcept
    {
        if (fds[1] >= 0)
        {
            ::close(fds[1]);
            fds[1] = -1;
        }
    }

    ~pipe_pair()
    {
        close_read();
        close_write();
    }
};

double now_s() noexcept
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count();
}

void set_nonblocking(const int fd) noexcept
{
    const auto flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
    {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

void set_cloexec(const int fd) noexcept
{
    const auto flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
    {
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
    }
}

/// Child-side setup between fork and exec. async-signal-safe territory:
/// only raw syscalls, no allocation, no stdio.
[[noreturn]] void child_exec(char* const* argv, const worker_limits& limits, const int stderr_write,
                             const int heartbeat_write, const int exec_errno_write)
{
    ::dup2(stderr_write, STDERR_FILENO);

    // hand the heartbeat fd to the worker via the environment; keep it
    // non-blocking so a full pipe can never stall the child
    set_nonblocking(heartbeat_write);
    char fd_text[16];
    std::snprintf(fd_text, sizeof(fd_text), "%d", heartbeat_write);
    ::setenv(heartbeat_env, fd_text, 1);

    // the parent may have handlers installed (CLI SIGINT flag, ignored
    // SIGPIPE); the child should die by default so escalation works
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);  // heartbeat writes must never kill us

    if (limits.cpu_limit_s > 0.0)
    {
        const auto secs = static_cast<rlim_t>(std::ceil(limits.cpu_limit_s));
        // hard limit one second above soft: SIGXCPU first, SIGKILL backstop
        const rlimit rl{secs, secs + 1};
        ::setrlimit(RLIMIT_CPU, &rl);
    }
    if (limits.address_space_bytes > 0)
    {
        const auto bytes = static_cast<rlim_t>(limits.address_space_bytes);
        const rlimit rl{bytes, bytes};
        ::setrlimit(RLIMIT_AS, &rl);
    }

    ::execvp(argv[0], argv);

    // exec failed: report errno through the CLOEXEC pipe and vanish
    const int err = errno;
    [[maybe_unused]] const auto written = ::write(exec_errno_write, &err, sizeof(err));
    ::_exit(127);
}

}  // namespace

worker_result run_worker(const std::vector<std::string>& argv, const worker_limits& limits)
{
    worker_result result{};
    if (argv.empty())
    {
        result.status = worker_status::spawn_failed;
        result.error = "empty argv";
        return result;
    }

    pipe_pair stderr_pipe{};
    pipe_pair heartbeat_pipe{};
    pipe_pair exec_pipe{};
    if (!stderr_pipe.open() || !heartbeat_pipe.open() || !exec_pipe.open())
    {
        result.status = worker_status::spawn_failed;
        result.error = std::string{"pipe: "} + std::strerror(errno);
        return result;
    }
    // the exec-errno pipe closes on successful exec: zero bytes read means
    // the program is running, an int means execvp failed with that errno
    set_cloexec(exec_pipe.fds[1]);

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& arg : argv)
    {
        cargv.push_back(const_cast<char*>(arg.c_str()));
    }
    cargv.push_back(nullptr);

    const auto start = now_s();
    const auto pid = ::fork();
    if (pid < 0)
    {
        result.status = worker_status::spawn_failed;
        result.error = std::string{"fork: "} + std::strerror(errno);
        return result;
    }
    if (pid == 0)
    {
        stderr_pipe.close_read();
        heartbeat_pipe.close_read();
        exec_pipe.close_read();
        child_exec(cargv.data(), limits, stderr_pipe.fds[1], heartbeat_pipe.fds[1], exec_pipe.fds[1]);
    }

    // parent
    stderr_pipe.close_write();
    heartbeat_pipe.close_write();
    exec_pipe.close_write();
    set_nonblocking(stderr_pipe.fds[0]);
    set_nonblocking(heartbeat_pipe.fds[0]);
    set_nonblocking(exec_pipe.fds[0]);

    tel::count("supervisor.spawns");

    tail_buffer tail{limits.stderr_tail_bytes};
    auto last_activity = start;
    bool term_sent = false;
    double term_sent_at = 0.0;
    auto reason = kill_reason::none;
    int exec_errno = 0;
    bool exec_pipe_open = true;

    const auto terminate = [&](const kill_reason why)
    {
        if (!term_sent)
        {
            reason = why;
            ::kill(pid, SIGTERM);
            term_sent = true;
            term_sent_at = now_s();
        }
        else if (now_s() - term_sent_at >= limits.term_grace_s)
        {
            ::kill(pid, SIGKILL);
        }
    };

    int wait_status = 0;
    bool reaped = false;
    while (!reaped)
    {
        pollfd fds[3];
        nfds_t nfds = 0;
        int stderr_idx = -1;
        int hb_idx = -1;
        int exec_idx = -1;
        if (stderr_pipe.fds[0] >= 0)
        {
            stderr_idx = static_cast<int>(nfds);
            fds[nfds++] = pollfd{stderr_pipe.fds[0], POLLIN, 0};
        }
        if (heartbeat_pipe.fds[0] >= 0)
        {
            hb_idx = static_cast<int>(nfds);
            fds[nfds++] = pollfd{heartbeat_pipe.fds[0], POLLIN, 0};
        }
        if (exec_pipe_open && exec_pipe.fds[0] >= 0)
        {
            exec_idx = static_cast<int>(nfds);
            fds[nfds++] = pollfd{exec_pipe.fds[0], POLLIN, 0};
        }

        ::poll(fds, nfds, 50);  // 50 ms watchdog tick

        char buffer[4096];
        if (stderr_idx >= 0 && (fds[stderr_idx].revents & (POLLIN | POLLHUP)) != 0)
        {
            for (;;)
            {
                const auto n = ::read(stderr_pipe.fds[0], buffer, sizeof(buffer));
                if (n > 0)
                {
                    tail.append(buffer, static_cast<std::size_t>(n));
                    last_activity = now_s();
                    continue;
                }
                if (n == 0)
                {
                    stderr_pipe.close_read();
                }
                break;
            }
        }
        if (hb_idx >= 0 && (fds[hb_idx].revents & (POLLIN | POLLHUP)) != 0)
        {
            for (;;)
            {
                const auto n = ::read(heartbeat_pipe.fds[0], buffer, sizeof(buffer));
                if (n > 0)
                {
                    result.heartbeats += static_cast<std::uint64_t>(n);
                    last_activity = now_s();
                    continue;
                }
                if (n == 0)
                {
                    heartbeat_pipe.close_read();
                }
                break;
            }
        }
        if (exec_idx >= 0 && (fds[exec_idx].revents & (POLLIN | POLLHUP)) != 0)
        {
            const auto n = ::read(exec_pipe.fds[0], &exec_errno, sizeof(exec_errno));
            if (n <= 0)
            {
                exec_errno = 0;  // pipe closed without payload: exec succeeded
            }
            exec_pipe.close_read();
            exec_pipe_open = false;
        }

        const auto reap = ::waitpid(pid, &wait_status, WNOHANG);
        if (reap == pid)
        {
            reaped = true;
            break;
        }

        const auto now = now_s();
        if (limits.cancel != nullptr && limits.cancel->load(std::memory_order_relaxed))
        {
            terminate(kill_reason::cancel);
        }
        else if (limits.wall_timeout_s > 0.0 && now - start >= limits.wall_timeout_s)
        {
            terminate(kill_reason::wall_timeout);
        }
        else if (limits.hang_timeout_s > 0.0 && now - last_activity >= limits.hang_timeout_s)
        {
            terminate(kill_reason::hang);
        }
        else if (term_sent)
        {
            terminate(reason);  // keep the escalation clock running
        }
    }

    // drain whatever stderr remained buffered at exit
    if (stderr_pipe.fds[0] >= 0)
    {
        char buffer[4096];
        for (;;)
        {
            const auto n = ::read(stderr_pipe.fds[0], buffer, sizeof(buffer));
            if (n <= 0)
            {
                break;
            }
            tail.append(buffer, static_cast<std::size_t>(n));
        }
    }
    if (exec_pipe_open && exec_pipe.fds[0] >= 0)
    {
        const auto n = ::read(exec_pipe.fds[0], &exec_errno, sizeof(exec_errno));
        if (n <= 0)
        {
            exec_errno = 0;
        }
    }

    result.elapsed_s = now_s() - start;
    result.stderr_tail = std::move(tail.data);
    result.reason = reason;

    if (exec_errno != 0)
    {
        result.status = worker_status::spawn_failed;
        result.error = std::string{"exec '"} + argv[0] + "': " + std::strerror(exec_errno);
        tel::count("supervisor.spawn_failures");
        tel::log_event(tel::log_severity::error, "supervisor", "worker failed to start",
                       {{"argv0", argv[0]}, {"error", result.error}});
        return result;
    }

    if (WIFEXITED(wait_status))
    {
        result.status = worker_status::exited;
        result.exit_code = WEXITSTATUS(wait_status);
    }
    else if (WIFSIGNALED(wait_status))
    {
        result.signal = WTERMSIG(wait_status);
        result.killed_by_watchdog = term_sent && (result.signal == SIGTERM || result.signal == SIGKILL);
        result.status = reason == kill_reason::hang ? worker_status::hung : worker_status::crashed;
        if (result.status == worker_status::hung)
        {
            tel::count("supervisor.hangs");
        }
        else
        {
            tel::count("supervisor.crashes");
        }
        if (result.killed_by_watchdog)
        {
            tel::count("supervisor.kills");
        }
        tel::log_event(tel::log_severity::warn, "supervisor", "worker terminated by signal",
                       {{"argv0", argv[0]},
                        {"signal", std::to_string(result.signal)},
                        {"status", worker_status_name(result.status)},
                        {"reason", kill_reason_name(reason)},
                        {"elapsed_s", std::to_string(result.elapsed_s)}});
    }
    else
    {
        result.status = worker_status::crashed;
        tel::count("supervisor.crashes");
    }
    return result;
}

namespace
{

/// The heartbeat fd is resolved once per process from the environment.
int heartbeat_fd() noexcept
{
    static const int fd = []() noexcept
    {
        const char* env = std::getenv(heartbeat_env);
        if (env == nullptr || *env == '\0')
        {
            return -1;
        }
        char* end = nullptr;
        const auto value = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || value < 0)
        {
            return -1;
        }
        return static_cast<int>(value);
    }();
    return fd;
}

}  // namespace

void heartbeat() noexcept
{
    const auto fd = heartbeat_fd();
    if (fd < 0)
    {
        return;
    }
    const char beat = '.';
    [[maybe_unused]] const auto n = ::write(fd, &beat, 1);  // EAGAIN on a full pipe is fine
}

bool supervised() noexcept
{
    return heartbeat_fd() >= 0;
}

const char* worker_status_name(const worker_status status) noexcept
{
    switch (status)
    {
        case worker_status::exited: return "exited";
        case worker_status::crashed: return "crashed";
        case worker_status::hung: return "hung";
        case worker_status::spawn_failed: return "spawn_failed";
    }
    return "spawn_failed";
}

const char* kill_reason_name(const kill_reason reason) noexcept
{
    switch (reason)
    {
        case kill_reason::none: return "none";
        case kill_reason::wall_timeout: return "wall_timeout";
        case kill_reason::hang: return "hang";
        case kill_reason::cancel: return "cancel";
    }
    return "none";
}

res::outcome_kind classify(const worker_result& result) noexcept
{
    switch (result.status)
    {
        case worker_status::exited:
            return result.exit_code == 0 ? res::outcome_kind::ok : res::outcome_kind::internal_error;
        case worker_status::hung: return res::outcome_kind::hung;
        case worker_status::crashed:
            if (result.signal == SIGXCPU || result.reason == kill_reason::wall_timeout)
            {
                return res::outcome_kind::timeout;
            }
            return res::outcome_kind::crashed;
        case worker_status::spawn_failed: return res::outcome_kind::internal_error;
    }
    return res::outcome_kind::internal_error;
}

std::string describe(const worker_result& result)
{
    char buffer[160];
    switch (result.status)
    {
        case worker_status::exited:
            std::snprintf(buffer, sizeof(buffer), "exited with code %d after %.2f s", result.exit_code,
                          result.elapsed_s);
            break;
        case worker_status::crashed:
        {
            const char* name = ::strsignal(result.signal);
            std::snprintf(buffer, sizeof(buffer), "crashed: signal %d (%s)%s after %.2f s", result.signal,
                          name != nullptr ? name : "?",
                          result.killed_by_watchdog ? " [watchdog]" : "", result.elapsed_s);
            break;
        }
        case worker_status::hung:
            std::snprintf(buffer, sizeof(buffer), "hung: no heartbeat, killed by watchdog after %.2f s",
                          result.elapsed_s);
            break;
        case worker_status::spawn_failed:
            std::snprintf(buffer, sizeof(buffer), "spawn failed: %s", result.error.c_str());
            break;
    }
    return buffer;
}

std::string self_executable()
{
    char buffer[4096];
    const auto n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n <= 0)
    {
        throw mnt_error{std::string{"readlink /proc/self/exe: "} + std::strerror(errno)};
    }
    buffer[n] = '\0';
    return buffer;
}

}  // namespace mnt::sup
