#include "common/provenance.hpp"

#define MNT_STRINGIFY_INNER(x) #x
#define MNT_STRINGIFY(x) MNT_STRINGIFY_INNER(x)

namespace mnt::prov
{

const build_info_t& build_info()
{
    static const build_info_t info = []
    {
        build_info_t b{};
#ifdef MNT_VERSION
        b.version = MNT_VERSION;
#else
        b.version = "unversioned";
#endif
#if defined(__clang__)
        b.compiler = "clang " MNT_STRINGIFY(__clang_major__) "." MNT_STRINGIFY(
            __clang_minor__) "." MNT_STRINGIFY(__clang_patchlevel__);
#elif defined(__GNUC__)
        b.compiler = "gcc " MNT_STRINGIFY(__GNUC__) "." MNT_STRINGIFY(__GNUC_MINOR__) "." MNT_STRINGIFY(
            __GNUC_PATCHLEVEL__);
#else
        b.compiler = "unknown";
#endif
#ifdef NDEBUG
        b.build_type = "Release";
#else
        b.build_type = "Debug";
#endif
        b.cxx_standard = std::to_string(__cplusplus);
        return b;
    }();
    return info;
}

}  // namespace mnt::prov
