#include "common/resilience.hpp"

#include "telemetry/eventlog.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace mnt::res
{

namespace
{

/// splitmix64: the standard 64-bit finalizer-style mixer — deterministic,
/// stateless, good enough for jitter and fault-firing decisions.
std::uint64_t mix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash value.
double unit_interval(const std::uint64_t h) noexcept
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* outcome_kind_name(const outcome_kind kind) noexcept
{
    switch (kind)
    {
        case outcome_kind::ok: return "ok";
        case outcome_kind::timeout: return "timeout";
        case outcome_kind::verification_failed: return "verification_failed";
        case outcome_kind::oom: return "oom";
        case outcome_kind::internal_error: return "internal_error";
        case outcome_kind::crashed: return "crashed";
        case outcome_kind::hung: return "hung";
    }
    return "internal_error";
}

double backoff_delay_s(const retry_policy& policy, const std::size_t attempt, const std::uint64_t salt) noexcept
{
    if (policy.backoff_base_s <= 0.0 || attempt < 2)
    {
        return 0.0;
    }
    double delay = policy.backoff_base_s;
    for (std::size_t k = 2; k < attempt; ++k)
    {
        delay *= policy.backoff_factor;
    }
    const auto jitter = std::clamp(policy.jitter, 0.0, 1.0);
    if (jitter > 0.0)
    {
        const auto u = unit_interval(mix64(policy.seed ^ mix64(salt ^ attempt)));
        delay *= 1.0 - jitter + 2.0 * jitter * u;  // uniform in [(1-j)d, (1+j)d]
    }
    return delay;
}

void backoff_sleep(const double seconds, const deadline_clock& deadline)
{
    if (seconds <= 0.0)
    {
        return;
    }
    const auto capped = std::min(seconds, deadline.remaining_s());
    if (capped <= 0.0)
    {
        return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(capped));
}

namespace detail
{

std::uint64_t label_salt(const std::string_view label) noexcept
{
    // FNV-1a over the label, mixed once for avalanche
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : label)
    {
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    return mix64(h);
}

void note_retry(const std::string_view label, const std::string_view kind, const std::size_t attempt)
{
    tel::log_event(tel::log_severity::warn, "resilience", "retrying after transient failure",
                   {{"combo", std::string{label}},
                    {"kind", std::string{kind}},
                    {"attempt", std::to_string(attempt)}});
}

}  // namespace detail

namespace fault
{

namespace
{

struct site_plan
{
    std::string site;
    double probability{1.0};
    std::uint64_t seed{1};
    /// Counted kill-point trigger (`site=N` spec form): fire exactly on the
    /// N-th query, never otherwise. 0 = probabilistic mode.
    std::uint64_t fire_at{0};
    /// Firing index; combined with the seed this makes injection
    /// deterministic per call sequence yet thread-safe.
    std::atomic<std::uint64_t> queries{0};

    site_plan(std::string s, const double p, const std::uint64_t sd, const std::uint64_t at) :
            site{std::move(s)},
            probability{p},
            seed{sd},
            fire_at{at}
    {}
};

struct plan_state
{
    std::mutex mutex;
    /// Sites are installed wholesale under the mutex; fire() only reads the
    /// vector after the armed flag (release/acquire pair) is observed set.
    std::vector<std::unique_ptr<site_plan>> sites;
    std::atomic<bool> armed{false};
    std::once_flag env_once;
};

plan_state& state()
{
    static plan_state s;
    return s;
}

std::vector<std::unique_ptr<site_plan>> parse_spec(const std::string& spec)
{
    std::vector<std::unique_ptr<site_plan>> sites;
    std::size_t begin = 0;
    while (begin <= spec.size())
    {
        auto end = spec.find(',', begin);
        if (end == std::string::npos)
        {
            end = spec.size();
        }
        const auto entry = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty())
        {
            if (end == spec.size())
            {
                break;
            }
            continue;
        }

        // counted kill-point form: `site=N` fires exactly on the N-th query
        const auto eq = entry.find('=');
        if (eq != std::string::npos && entry.find(':') == std::string::npos)
        {
            const auto site = entry.substr(0, eq);
            const auto count_text = entry.substr(eq + 1);
            if (site.empty())
            {
                throw mnt_error{"MNT_FAULT_INJECT: empty site name in '" + spec + "'"};
            }
            std::uint64_t fire_at = 0;
            try
            {
                std::size_t consumed = 0;
                fire_at = std::stoull(count_text, &consumed);
                if (consumed != count_text.size() || fire_at == 0)
                {
                    throw std::invalid_argument{count_text};
                }
            }
            catch (const std::exception&)
            {
                throw mnt_error{"MNT_FAULT_INJECT: invalid trigger count '" + count_text + "' for site '" + site +
                                "' (expected site=N with N >= 1)"};
            }
            sites.push_back(std::make_unique<site_plan>(site, 1.0, std::uint64_t{1}, fire_at));
            continue;
        }

        const auto p1 = entry.find(':');
        const auto site = entry.substr(0, p1);
        if (site.empty())
        {
            throw mnt_error{"MNT_FAULT_INJECT: empty site name in '" + spec + "'"};
        }
        double probability = 1.0;
        std::uint64_t seed = 1;
        if (p1 != std::string::npos)
        {
            const auto p2 = entry.find(':', p1 + 1);
            const auto prob_text = entry.substr(p1 + 1, p2 == std::string::npos ? std::string::npos : p2 - p1 - 1);
            try
            {
                std::size_t consumed = 0;
                probability = std::stod(prob_text, &consumed);
                if (consumed != prob_text.size())
                {
                    throw std::invalid_argument{prob_text};
                }
            }
            catch (const std::exception&)
            {
                throw mnt_error{"MNT_FAULT_INJECT: invalid probability '" + prob_text + "' for site '" + site +
                                "'"};
            }
            if (probability < 0.0 || probability > 1.0)
            {
                throw mnt_error{"MNT_FAULT_INJECT: probability for site '" + site + "' must be in [0, 1]"};
            }
            if (p2 != std::string::npos)
            {
                const auto seed_text = entry.substr(p2 + 1);
                try
                {
                    std::size_t consumed = 0;
                    seed = std::stoull(seed_text, &consumed);
                    if (consumed != seed_text.size())
                    {
                        throw std::invalid_argument{seed_text};
                    }
                }
                catch (const std::exception&)
                {
                    throw mnt_error{"MNT_FAULT_INJECT: invalid seed '" + seed_text + "' for site '" + site + "'"};
                }
            }
        }
        sites.push_back(std::make_unique<site_plan>(site, probability, seed, std::uint64_t{0}));
    }
    return sites;
}

void install(std::vector<std::unique_ptr<site_plan>> sites)
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock{s.mutex};
    s.armed.store(false, std::memory_order_release);  // fire() falls back to disabled during the swap
    s.sites = std::move(sites);
    s.armed.store(!s.sites.empty(), std::memory_order_release);
}

void ensure_env_loaded()
{
    std::call_once(state().env_once,
                   []
                   {
                       const char* env = std::getenv("MNT_FAULT_INJECT");
                       if (env != nullptr && *env != '\0')
                       {
                           install(parse_spec(env));
                       }
                   });
}

}  // namespace

void configure(const std::string& spec)
{
    auto sites = parse_spec(spec);
    ensure_env_loaded();  // claim the once-flag so a later fire() cannot clobber this plan
    install(std::move(sites));
}

void configure_from_environment()
{
    const char* env = std::getenv("MNT_FAULT_INJECT");
    ensure_env_loaded();
    install(env != nullptr && *env != '\0' ? parse_spec(env) : std::vector<std::unique_ptr<site_plan>>{});
}

bool enabled() noexcept
{
    return state().armed.load(std::memory_order_acquire);
}

bool fire(const std::string_view site) noexcept
{
    auto& s = state();
    if (!s.armed.load(std::memory_order_acquire))
    {
        // cheap disabled path; the env is only consulted once someone arms
        // injection or the process queries with the variable set
        static const bool env_present = std::getenv("MNT_FAULT_INJECT") != nullptr;
        if (!env_present)
        {
            return false;
        }
        ensure_env_loaded();
        if (!s.armed.load(std::memory_order_acquire))
        {
            return false;
        }
    }
    const std::lock_guard<std::mutex> lock{s.mutex};
    for (const auto& plan : s.sites)
    {
        if (plan->site == site)
        {
            if (plan->probability <= 0.0)
            {
                return false;
            }
            const auto n = plan->queries.fetch_add(1, std::memory_order_relaxed) + 1;
            if (plan->fire_at > 0)
            {
                return n == plan->fire_at;
            }
            if (plan->probability >= 1.0)
            {
                return true;
            }
            return unit_interval(mix64(plan->seed ^ mix64(n))) < plan->probability;
        }
    }
    return false;
}

std::string current_spec()
{
    auto& s = state();
    const std::lock_guard<std::mutex> lock{s.mutex};
    std::string spec;
    for (const auto& plan : s.sites)
    {
        if (!spec.empty())
        {
            spec += ',';
        }
        char buffer[64];
        if (plan->fire_at > 0)
        {
            std::snprintf(buffer, sizeof(buffer), "=%llu", static_cast<unsigned long long>(plan->fire_at));
        }
        else
        {
            std::snprintf(buffer, sizeof(buffer), ":%g:%llu", plan->probability,
                          static_cast<unsigned long long>(plan->seed));
        }
        spec += plan->site + buffer;
    }
    return spec;
}

}  // namespace fault

}  // namespace mnt::res
