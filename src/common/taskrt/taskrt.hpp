#pragma once

/// \file taskrt.hpp
/// \brief Bounded work-stealing task runtime for in-algorithm parallelism.
///
/// The runtime is a lazily constructed singleton pool of N-1 worker threads
/// (the caller of a parallel region is the N-th compute thread: it executes
/// pending tasks while waiting, so nested parallel regions never deadlock
/// and a serial configuration spawns no threads at all). Each worker owns a
/// Chase–Lev deque (deque.hpp); tasks submitted from outside the pool land
/// in a mutex-protected overflow queue that workers drain before stealing.
///
/// Thread-count resolution, highest precedence first:
///
///   1. set_thread_count(n)  — the `--threads N` CLI flag
///   2. MNT_THREADS          — environment
///   3. std::thread::hardware_concurrency()
///
/// n == 1 means fully serial: every primitive below runs inline on the
/// calling thread with zero synchronization, so single-threaded behavior
/// (and its RNG/byte-output) is exactly the pre-runtime behavior.
///
/// Determinism contract: parallel_map_reduce folds results in submission
/// order; first_winner selects the lowest-index success; parallel_for writes
/// into caller-provided disjoint slots. Under `--deterministic` every
/// algorithm built on these produces byte-identical output at any thread
/// count (asserted by tests/test_parallel_determinism.cpp at 1, 2 and 8
/// threads).
///
/// Cancellation: cancel_token wraps a shared stop flag compatible with
/// res::deadline_clock::with_stop, so a losing first_winner branch unwinds
/// at its next deadline poll — cooperative, never preemptive.
///
/// Telemetry: per-worker counters (tasks executed / stolen, steal failures,
/// overflow pushes, max queue depth, busy seconds) are cache-line padded and
/// published into the registry lazily via a scrape hook (`taskrt.*` →
/// `mnt_taskrt_*`), so the per-task hot path never touches the registry
/// mutex. Tasks adopt the submitting thread's span context, so trace spans
/// opened inside tasks nest under the caller's span.

#include "common/taskrt/arena.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace mnt::trt
{

/// Cooperative cancellation token: a shared boolean whose handle() plugs
/// into res::deadline_clock::with_stop. Copies share the same flag.
class cancel_token
{
  public:
    cancel_token() : flag{std::make_shared<std::atomic<bool>>(false)} {}

    void cancel() const noexcept { flag->store(true, std::memory_order_release); }

    [[nodiscard]] bool cancelled() const noexcept { return flag->load(std::memory_order_acquire); }

    /// The flag in the shape deadline_clock::with_stop / attach_stop expect.
    [[nodiscard]] std::shared_ptr<const std::atomic<bool>> handle() const noexcept { return flag; }

  private:
    std::shared_ptr<std::atomic<bool>> flag;
};

/// Effective compute-thread count (>= 1) after precedence resolution. The
/// first call locks in the pool size until set_thread_count changes it.
[[nodiscard]] std::size_t thread_count();

/// Overrides the thread count (`--threads N`). 0 restores automatic
/// resolution (MNT_THREADS, then hardware_concurrency). May only be called
/// while no parallel region is active; a live pool of a different size is
/// shut down and relaunched on next use.
void set_thread_count(std::size_t n);

/// The MNT_THREADS > hardware_concurrency fallback chain, ignoring any
/// set_thread_count override (used to size shard-worker thread budgets).
[[nodiscard]] std::size_t resolve_auto_threads();

/// True when the runtime would actually run tasks concurrently.
[[nodiscard]] bool parallel();

/// Joins and destroys the worker pool (idempotent). The next parallel
/// region relaunches it; used by tests that re-run at several thread counts.
void shutdown();

/// Aggregate runtime statistics (summed over workers and helping callers).
struct runtime_stats
{
    std::size_t   workers{0};  ///< pool threads (excludes helping callers)
    std::uint64_t tasks_executed{0};
    std::uint64_t tasks_stolen{0};
    std::uint64_t steal_failures{0};
    std::uint64_t overflow_pushes{0};
    std::uint64_t tasks_inline{0};  ///< run serially without entering the pool
    std::size_t   max_queue_depth{0};
    double        busy_s{0.0};  ///< summed wall time spent executing tasks
};

[[nodiscard]] runtime_stats stats();
void                        reset_stats();

/// Publishes the current stats into the telemetry registry as `taskrt.*`
/// series (per-worker rows labeled `[worker=i]`). Registered as a scrape
/// hook on first pool launch; callable directly for reports.
void publish_telemetry();

namespace detail
{

/// A fork-join group of tasks sharing error propagation and span context.
/// wait() helps execute pending tasks (its own and others') until every
/// task of the group finished, then rethrows the first captured exception.
/// After the first exception, remaining tasks of the group are skipped.
class task_group
{
  public:
    task_group();
    ~task_group();

    task_group(const task_group&)            = delete;
    task_group& operator=(const task_group&) = delete;

    /// Submits \p fn; runs it inline immediately when the runtime is serial.
    void run(std::function<void()> fn);

    /// Blocks (helping) until all submitted tasks completed; rethrows.
    void wait();

    /// True once a task of this group threw — bodies can poll to bail early.
    [[nodiscard]] bool aborted() const noexcept;

    struct state;  // defined in taskrt.cpp; public so the executor's task
                   // records can hold a shared_ptr to it

  private:
    std::shared_ptr<state> st;
};

}  // namespace detail

/// Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// at least \p grain indices. Chunks run concurrently; the call returns when
/// all finished and rethrows the first exception thrown by any chunk.
/// Serial runtime (or a single chunk) executes inline on the caller.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Maps i -> map(i) for i in [0, n) concurrently, then folds the results
/// *sequentially in submission order*: fold(acc, std::move(result_i)) for
/// i = 0..n-1. The ordered reduction makes the outcome independent of the
/// thread count and schedule — the determinism contract of `--deterministic`.
template <typename T, typename MapFn, typename FoldFn>
[[nodiscard]] T parallel_map_reduce(const std::size_t n, T init, MapFn&& map, FoldFn&& fold,
                                    const std::size_t grain = 1)
{
    T acc = std::move(init);
    if (n == 0)
    {
        return acc;
    }
    if (!parallel() || n == 1)
    {
        for (std::size_t i = 0; i < n; ++i)
        {
            fold(acc, map(i));
        }
        return acc;
    }

    std::vector<std::optional<T>> slots(n);
    parallel_for(0, n, grain,
                 [&](const std::size_t chunk_begin, const std::size_t chunk_end)
                 {
                     for (std::size_t i = chunk_begin; i < chunk_end; ++i)
                     {
                         slots[i].emplace(map(i));
                     }
                 });
    for (std::size_t i = 0; i < n; ++i)
    {
        fold(acc, std::move(*slots[i]));
    }
    return acc;
}

/// Races attempt(i, token_i) for i in [0, n); the *lowest index* returning
/// an engaged optional wins — identical to trying the attempts in order
/// sequentially. On a win, the tokens of all higher-index attempts are
/// cancelled (attempts are expected to poll them via a deadline_clock and
/// unwind); lower-index attempts still run to completion, since one of them
/// could produce an even lower-index success. Serial runtime short-circuits
/// exactly like a sequential loop: attempts after the first success never
/// run at all.
template <typename T, typename AttemptFn>
[[nodiscard]] std::optional<T> first_winner(const std::size_t n, AttemptFn&& attempt)
{
    if (n == 0)
    {
        return std::nullopt;
    }
    if (!parallel() || n == 1)
    {
        for (std::size_t i = 0; i < n; ++i)
        {
            cancel_token token{};
            if (auto result = attempt(i, token); result.has_value())
            {
                return result;
            }
        }
        return std::nullopt;
    }

    std::vector<std::optional<T>> results(n);
    std::vector<cancel_token>     tokens(n);
    std::atomic<std::size_t>      best{n};

    detail::task_group group{};
    for (std::size_t i = 0; i < n; ++i)
    {
        group.run(
            [&, i]
            {
                if (best.load(std::memory_order_acquire) < i)
                {
                    return;  // a lower index already won; this attempt is moot
                }
                auto result = attempt(i, tokens[i]);
                if (!result.has_value())
                {
                    return;
                }
                results[i] = std::move(result);
                auto current = best.load(std::memory_order_acquire);
                while (i < current &&
                       !best.compare_exchange_weak(current, i, std::memory_order_acq_rel))
                {
                }
                for (std::size_t j = i + 1; j < n; ++j)  // cancel what can no longer win
                {
                    tokens[j].cancel();
                }
            });
    }
    group.wait();

    for (std::size_t i = 0; i < n; ++i)
    {
        if (results[i].has_value())
        {
            return std::move(results[i]);
        }
    }
    return std::nullopt;
}

}  // namespace mnt::trt
