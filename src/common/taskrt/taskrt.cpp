#include "common/taskrt/taskrt.hpp"

#include "common/taskrt/deque.hpp"
#include "telemetry/telemetry.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

namespace mnt::trt
{

/// One worker's counters, cache-line padded so neighbouring workers never
/// false-share. All fields are relaxed atomics: they are written by one
/// thread almost always, but stats()/publish_telemetry() read them from
/// arbitrary threads and TSan (rightly) demands atomicity for that.
struct alignas(64) worker_counters
{
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> overflow_pushes{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> max_depth{0};

    void note_depth(const std::size_t depth) noexcept
    {
        auto prev = max_depth.load(std::memory_order_relaxed);
        while (depth > prev && !max_depth.compare_exchange_weak(prev, depth, std::memory_order_relaxed))
        {
        }
    }
};

class executor;

struct detail::task_group::state
{
    std::atomic<std::size_t> pending{0};
    std::atomic<bool>        failed{false};
    std::exception_ptr       first_error{};
    std::mutex               error_mutex{};
    tel::span_context        parent{};
    executor*                exec{nullptr};  ///< pool the tasks were submitted to

    void record_error(std::exception_ptr e)
    {
        const std::lock_guard<std::mutex> lock{error_mutex};
        if (first_error == nullptr)
        {
            first_error = std::move(e);
        }
        failed.store(true, std::memory_order_release);
    }
};

struct task
{
    std::function<void()>                      fn;
    std::shared_ptr<detail::task_group::state> group;
};

/// The worker pool. Spawns total_threads - 1 OS threads; the caller of a
/// parallel region acts as the remaining compute thread by helping from
/// task_group::wait(). Owned by a shared_ptr so a shutdown/restart races
/// cleanly with threads still finishing their last task.
class executor
{
  public:
    explicit executor(const std::size_t total) : total_threads{total}, worker_count{total > 0 ? total - 1 : 0}
    {
        deques.reserve(worker_count);
        counters.reserve(worker_count + 1);
        for (std::size_t i = 0; i < worker_count; ++i)
        {
            deques.push_back(std::make_unique<chase_lev_deque<task>>());
        }
        for (std::size_t i = 0; i < worker_count + 1; ++i)  // last slot: external/helping threads
        {
            counters.push_back(std::make_unique<worker_counters>());
        }
        threads.reserve(worker_count);
        for (std::size_t i = 0; i < worker_count; ++i)
        {
            threads.emplace_back([this, i] { worker_main(i); });
        }
    }

    ~executor() { stop_and_join(); }

    executor(const executor&)            = delete;
    executor& operator=(const executor&) = delete;

    void stop_and_join()
    {
        {
            const std::lock_guard<std::mutex> lock{park_mutex};
            stopping.store(true, std::memory_order_release);
        }
        park_cv.notify_all();
        for (auto& t : threads)
        {
            if (t.joinable())
            {
                t.join();
            }
        }
        threads.clear();
    }

    void submit(task* t)
    {
        if (tls_pool == this && tls_worker >= 0)
        {
            auto&      dq  = *deques[static_cast<std::size_t>(tls_worker)];
            dq.push(t);
            counters[static_cast<std::size_t>(tls_worker)]->note_depth(dq.size_estimate());
        }
        else
        {
            {
                const std::lock_guard<std::mutex> lock{overflow_mutex};
                overflow.push_back(t);
                external().note_depth(overflow.size());
            }
            external().overflow_pushes.fetch_add(1, std::memory_order_relaxed);
        }
        wake_one();
    }

    /// Executes one pending task if any can be found (own deque for workers,
    /// then overflow, then stealing). Returns false when nothing was found.
    bool help_one()
    {
        const bool is_worker = tls_pool == this && tls_worker >= 0;
        auto&      stats     = is_worker ? *counters[static_cast<std::size_t>(tls_worker)] : external();

        task* t = nullptr;
        if (is_worker)
        {
            t = deques[static_cast<std::size_t>(tls_worker)]->pop();
        }
        if (t == nullptr)
        {
            t = take_overflow();
        }
        if (t == nullptr)
        {
            t = steal_sweep(is_worker ? static_cast<std::size_t>(tls_worker) : 0, stats);
        }
        if (t == nullptr)
        {
            return false;
        }
        execute(t, stats);
        return true;
    }

    void worker_main(const std::size_t index)
    {
        tls_pool   = this;
        tls_worker = static_cast<int>(index);
        while (!stopped())
        {
            if (help_one())
            {
                continue;
            }
            park();
        }
        // drain: leave nothing behind on shutdown (callers still wait on
        // group pending counts, which execute() decrements)
        while (help_one())
        {
        }
        tls_pool   = nullptr;
        tls_worker = -1;
    }

    [[nodiscard]] bool stopped() const noexcept { return stopping.load(std::memory_order_acquire); }

    [[nodiscard]] std::size_t workers() const noexcept { return worker_count; }

    [[nodiscard]] runtime_stats snapshot() const
    {
        runtime_stats s{};
        s.workers = worker_count;
        for (const auto& c : counters)
        {
            s.tasks_executed += c->executed.load(std::memory_order_relaxed);
            s.tasks_stolen += c->stolen.load(std::memory_order_relaxed);
            s.steal_failures += c->steal_failures.load(std::memory_order_relaxed);
            s.overflow_pushes += c->overflow_pushes.load(std::memory_order_relaxed);
            s.busy_s += static_cast<double>(c->busy_ns.load(std::memory_order_relaxed)) * 1e-9;
            const auto depth = static_cast<std::size_t>(c->max_depth.load(std::memory_order_relaxed));
            if (depth > s.max_queue_depth)
            {
                s.max_queue_depth = depth;
            }
        }
        return s;
    }

    void reset_counters()
    {
        for (auto& c : counters)
        {
            c->executed.store(0, std::memory_order_relaxed);
            c->stolen.store(0, std::memory_order_relaxed);
            c->steal_failures.store(0, std::memory_order_relaxed);
            c->overflow_pushes.store(0, std::memory_order_relaxed);
            c->busy_ns.store(0, std::memory_order_relaxed);
            c->max_depth.store(0, std::memory_order_relaxed);
        }
    }

    /// Per-worker gauge rows for publish_telemetry().
    void publish() const
    {
        for (std::size_t i = 0; i < counters.size(); ++i)
        {
            const auto& c     = *counters[i];
            const auto  label = i < worker_count ? std::to_string(i) : std::string{"caller"};
            tel::set_gauge("taskrt.tasks_executed[worker=" + label + "]",
                           static_cast<double>(c.executed.load(std::memory_order_relaxed)));
            tel::set_gauge("taskrt.busy_s[worker=" + label + "]",
                           static_cast<double>(c.busy_ns.load(std::memory_order_relaxed)) * 1e-9);
        }
    }

    const std::size_t total_threads;

  private:
    [[nodiscard]] worker_counters& external() noexcept { return *counters[worker_count]; }

    [[nodiscard]] task* take_overflow()
    {
        const std::lock_guard<std::mutex> lock{overflow_mutex};
        if (overflow.empty())
        {
            return nullptr;
        }
        task* t = overflow.front();
        overflow.pop_front();
        return t;
    }

    [[nodiscard]] task* steal_sweep(const std::size_t self, worker_counters& stats)
    {
        for (std::size_t k = 0; k < worker_count; ++k)
        {
            const auto victim = (self + 1 + k) % worker_count;
            if (task* t = deques[victim]->steal(); t != nullptr)
            {
                stats.stolen.fetch_add(1, std::memory_order_relaxed);
                return t;
            }
        }
        stats.steal_failures.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }

    void execute(task* t, worker_counters& stats)
    {
        const auto start = std::chrono::steady_clock::now();
        {
            tel::context_guard adopt{t->group->parent};
            if (!t->group->failed.load(std::memory_order_acquire))
            {
                try
                {
                    t->fn();
                }
                catch (...)
                {
                    t->group->record_error(std::current_exception());
                }
            }
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - start);
        stats.busy_ns.fetch_add(static_cast<std::uint64_t>(elapsed.count()), std::memory_order_relaxed);
        stats.executed.fetch_add(1, std::memory_order_relaxed);

        auto group = std::move(t->group);
        delete t;
        group->pending.fetch_sub(1, std::memory_order_release);
    }

    void park()
    {
        std::unique_lock<std::mutex> lock{park_mutex};
        if (stopping.load(std::memory_order_acquire))
        {
            return;
        }
        ++sleeper_count;
        // Bounded wait instead of a pure predicate: a submit racing the
        // queue re-check above would otherwise be a lost wakeup; the 500 us
        // cap turns that race into bounded latency.
        park_cv.wait_for(lock, std::chrono::microseconds{500});
        --sleeper_count;
    }

    void wake_one()
    {
        if (sleeper_count.load(std::memory_order_relaxed) > 0)
        {
            park_cv.notify_one();
        }
    }

    const std::size_t worker_count;

    std::vector<std::unique_ptr<chase_lev_deque<task>>> deques{};
    std::vector<std::unique_ptr<worker_counters>>       counters{};
    std::vector<std::thread>                            threads{};

    std::mutex        overflow_mutex{};
    std::deque<task*> overflow{};

    std::mutex               park_mutex{};
    std::condition_variable  park_cv{};
    std::atomic<std::size_t> sleeper_count{0};
    std::atomic<bool>        stopping{false};  ///< also written under park_mutex for the cv handshake

    static thread_local executor* tls_pool;
    static thread_local int       tls_worker;
};

thread_local executor* executor::tls_pool   = nullptr;
thread_local int       executor::tls_worker = -1;

namespace
{

std::mutex                g_mutex;              // guards everything below
std::shared_ptr<executor> g_pool;               // live pool (null until first parallel region)
std::size_t               g_override    = 0;    // set_thread_count (0 = auto)
bool                      g_hooked      = false;
runtime_stats             g_retired{};          // totals from shut-down pools
std::atomic<std::size_t>  g_effective{0};       // cached resolution (0 = stale)
std::atomic<std::uint64_t> g_inline_tasks{0};

[[nodiscard]] std::size_t resolve_locked()
{
    if (g_override > 0)
    {
        return g_override;
    }
    return resolve_auto_threads();
}

void retire_pool_locked()
{
    if (g_pool == nullptr)
    {
        return;
    }
    g_pool->stop_and_join();
    const auto s = g_pool->snapshot();
    g_retired.tasks_executed += s.tasks_executed;
    g_retired.tasks_stolen += s.tasks_stolen;
    g_retired.steal_failures += s.steal_failures;
    g_retired.overflow_pushes += s.overflow_pushes;
    g_retired.busy_s += s.busy_s;
    if (s.max_queue_depth > g_retired.max_queue_depth)
    {
        g_retired.max_queue_depth = s.max_queue_depth;
    }
    g_pool.reset();
}

/// Lazily launches (or returns) the pool; null when the runtime is serial.
[[nodiscard]] std::shared_ptr<executor> pool()
{
    const auto n = thread_count();
    if (n <= 1)
    {
        return nullptr;
    }
    const std::lock_guard<std::mutex> lock{g_mutex};
    if (g_pool == nullptr)
    {
        g_pool = std::make_shared<executor>(n);
        if (!g_hooked)
        {
            tel::register_scrape_hook(&publish_telemetry);
            g_hooked = true;
        }
    }
    return g_pool;
}

}  // namespace

std::size_t resolve_auto_threads()
{
    if (const char* env = std::getenv("MNT_THREADS"); env != nullptr)
    {
        char*      end    = nullptr;
        const auto parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
        {
            return static_cast<std::size_t>(parsed);
        }
    }
    const auto hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<std::size_t>(hw) : 1u;
}

std::size_t thread_count()
{
    const auto cached = g_effective.load(std::memory_order_acquire);
    if (cached != 0)
    {
        return cached;
    }
    const std::lock_guard<std::mutex> lock{g_mutex};
    const auto                        n = resolve_locked();
    g_effective.store(n, std::memory_order_release);
    return n;
}

void set_thread_count(const std::size_t n)
{
    const std::lock_guard<std::mutex> lock{g_mutex};
    g_override = n;
    const auto effective = resolve_locked();
    g_effective.store(effective, std::memory_order_release);
    if (g_pool != nullptr && g_pool->total_threads != effective)
    {
        retire_pool_locked();  // next parallel region relaunches at the new size
    }
}

bool parallel()
{
    return thread_count() > 1;
}

void shutdown()
{
    const std::lock_guard<std::mutex> lock{g_mutex};
    retire_pool_locked();
}

runtime_stats stats()
{
    runtime_stats s;
    {
        const std::lock_guard<std::mutex> lock{g_mutex};
        s = g_retired;
        if (g_pool != nullptr)
        {
            const auto live = g_pool->snapshot();
            s.workers = live.workers;
            s.tasks_executed += live.tasks_executed;
            s.tasks_stolen += live.tasks_stolen;
            s.steal_failures += live.steal_failures;
            s.overflow_pushes += live.overflow_pushes;
            s.busy_s += live.busy_s;
            if (live.max_queue_depth > s.max_queue_depth)
            {
                s.max_queue_depth = live.max_queue_depth;
            }
        }
    }
    s.tasks_inline = g_inline_tasks.load(std::memory_order_relaxed);
    return s;
}

void reset_stats()
{
    const std::lock_guard<std::mutex> lock{g_mutex};
    g_retired = runtime_stats{};
    if (g_pool != nullptr)
    {
        g_pool->reset_counters();
    }
    g_inline_tasks.store(0, std::memory_order_relaxed);
}

void publish_telemetry()
{
    const auto s = stats();
    tel::set_gauge("taskrt.workers", static_cast<double>(s.workers));
    tel::set_gauge("taskrt.tasks_executed", static_cast<double>(s.tasks_executed));
    tel::set_gauge("taskrt.tasks_stolen", static_cast<double>(s.tasks_stolen));
    tel::set_gauge("taskrt.steal_failures", static_cast<double>(s.steal_failures));
    tel::set_gauge("taskrt.overflow_pushes", static_cast<double>(s.overflow_pushes));
    tel::set_gauge("taskrt.tasks_inline", static_cast<double>(s.tasks_inline));
    tel::set_gauge("taskrt.max_queue_depth", static_cast<double>(s.max_queue_depth));
    tel::set_gauge("taskrt.busy_s", s.busy_s);
    tel::set_gauge("taskrt.scratch_high_water_bytes", static_cast<double>(scratch().high_water_bytes()));
    std::shared_ptr<executor> live;
    {
        const std::lock_guard<std::mutex> lock{g_mutex};
        live = g_pool;
    }
    if (live != nullptr)
    {
        live->publish();
    }
}

scratch_arena& scratch()
{
    thread_local scratch_arena arena{};
    return arena;
}

// ------------------------------------------------------------- task_group

namespace detail
{

task_group::task_group() : st{std::make_shared<state>()}
{
    st->parent = tel::current_span_context();
}

task_group::~task_group()
{
    // A group abandoned without wait() (e.g. run() threw mid-loop) must not
    // leave tasks referencing a destroyed frame: wait for them, swallowing.
    if (st != nullptr && st->pending.load(std::memory_order_acquire) != 0)
    {
        try
        {
            wait();
        }
        catch (...)  // NOLINT(bugprone-empty-catch) — destructor must not throw
        {
        }
    }
}

void task_group::run(std::function<void()> fn)
{
    auto ex = pool();
    if (ex == nullptr)
    {
        g_inline_tasks.fetch_add(1, std::memory_order_relaxed);
        if (!st->failed.load(std::memory_order_acquire))
        {
            try
            {
                fn();
            }
            catch (...)
            {
                st->record_error(std::current_exception());
            }
        }
        return;
    }
    st->exec = ex.get();
    st->pending.fetch_add(1, std::memory_order_relaxed);
    ex->submit(new task{std::move(fn), st});
}

void task_group::wait()
{
    std::size_t idle_spins = 0;
    while (st->pending.load(std::memory_order_acquire) != 0)
    {
        if (st->exec != nullptr && st->exec->help_one())
        {
            idle_spins = 0;
            continue;
        }
        // nothing runnable here: tasks of this group are executing on other
        // threads — yield, then back off to a short sleep
        if (++idle_spins < 64)
        {
            std::this_thread::yield();
        }
        else
        {
            std::this_thread::sleep_for(std::chrono::microseconds{50});
        }
    }
    std::exception_ptr error;
    {
        const std::lock_guard<std::mutex> lock{st->error_mutex};
        error = st->first_error;
        st->first_error = nullptr;
    }
    if (error != nullptr)
    {
        std::rethrow_exception(error);
    }
}

bool task_group::aborted() const noexcept
{
    return st->failed.load(std::memory_order_acquire);
}

}  // namespace detail

// ------------------------------------------------------------ parallel_for

void parallel_for(const std::size_t begin, const std::size_t end, const std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body)
{
    if (begin >= end)
    {
        return;
    }
    const auto n = end - begin;
    const auto g = grain > 0 ? grain : 1;
    if (!parallel() || n <= g)
    {
        body(begin, end);
        return;
    }

    // Aim for enough chunks to balance (8 per compute thread) but never
    // below the grain size the caller asked for.
    const auto  threads    = thread_count();
    std::size_t chunks     = (n + g - 1) / g;
    const auto  max_chunks = threads * 8;
    if (chunks > max_chunks)
    {
        chunks = max_chunks;
    }
    if (chunks <= 1)
    {
        body(begin, end);
        return;
    }
    const auto chunk_size = (n + chunks - 1) / chunks;

    detail::task_group group{};
    for (std::size_t lo = begin; lo < end; lo += chunk_size)
    {
        const auto hi = lo + chunk_size < end ? lo + chunk_size : end;
        group.run([&body, lo, hi] { body(lo, hi); });
    }
    group.wait();
}

}  // namespace mnt::trt
