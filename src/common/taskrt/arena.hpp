#pragma once

/// \file arena.hpp
/// \brief Per-thread scratch arenas: bump-pointer allocation for the short-
///        lived, trivially-destructible temporaries the physical-design hot
///        loops churn through (candidate tile lists, probe buffers).
///
/// Usage pattern is strictly LIFO and region-scoped:
///
/// \code
/// auto& arena = trt::scratch();
/// {
///     trt::scratch_region region{arena};          // marks the high-water point
///     trt::scratch_buffer<coordinate> cand{arena};
///     cand.push_back(...);                        // bump-allocates, grows geometrically
/// }                                               // region rewinds the arena
/// \endcode
///
/// The arena never returns memory to the OS while alive — blocks are reused
/// across regions — so steady-state hot loops allocate nothing. Because
/// rewinding does not run destructors, scratch_buffer is restricted to
/// trivially copyable + trivially destructible element types at compile
/// time. Each thread gets its own arena (thread_local), so there is no
/// locking anywhere on this path.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace mnt::trt
{

class scratch_arena
{
  public:
    static constexpr std::size_t default_block_bytes = 64u * 1024u;

    explicit scratch_arena(std::size_t block_bytes = default_block_bytes) : block_size{block_bytes} {}

    scratch_arena(const scratch_arena&)            = delete;
    scratch_arena& operator=(const scratch_arena&) = delete;

    /// Bump-allocates \p bytes aligned to \p align (a power of two). Falls
    /// through to a fresh block when the current one cannot fit the request.
    [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align)
    {
        if (block_index < blocks.size())
        {
            const auto aligned = align_up(offset, align);
            if (aligned + bytes <= blocks[block_index].size)
            {
                offset = aligned + bytes;
                if (total_in_use() > high_water)
                {
                    high_water = total_in_use();
                }
                return blocks[block_index].data.get() + aligned;
            }
        }
        return allocate_slow(bytes, align);
    }

    struct marker
    {
        std::size_t block{0};
        std::size_t offset{0};
    };

    [[nodiscard]] marker mark() const noexcept { return {block_index, offset}; }

    /// Rewinds to a previous mark; all allocations made after it are dead.
    /// Blocks stay allocated for reuse.
    void rewind(marker m) noexcept
    {
        block_index = m.block;
        offset      = m.offset;
    }

    /// Bytes currently allocated out (across all blocks up to the cursor).
    [[nodiscard]] std::size_t total_in_use() const noexcept
    {
        std::size_t sum = 0;
        for (std::size_t i = 0; i < block_index && i < blocks.size(); ++i)
        {
            sum += blocks[i].size;
        }
        return sum + offset;
    }

    /// Peak bytes ever in use — a sizing diagnostic exported by the runtime.
    [[nodiscard]] std::size_t high_water_bytes() const noexcept { return high_water; }

    /// Total bytes reserved from the heap.
    [[nodiscard]] std::size_t reserved_bytes() const noexcept
    {
        std::size_t sum = 0;
        for (const auto& b : blocks)
        {
            sum += b.size;
        }
        return sum;
    }

  private:
    struct block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t                  size;
    };

    [[nodiscard]] static std::size_t align_up(std::size_t v, std::size_t align) noexcept
    {
        return (v + align - 1) & ~(align - 1);
    }

    void* allocate_slow(std::size_t bytes, std::size_t align)
    {
        // advance to (or allocate) a block that fits; oversized requests get
        // a dedicated block of exactly the needed size
        while (true)
        {
            if (block_index < blocks.size())
            {
                ++block_index;
            }
            if (block_index >= blocks.size())
            {
                const auto sz = bytes + align > block_size ? bytes + align : block_size;
                blocks.push_back(block{std::make_unique<std::byte[]>(sz), sz});
                block_index = blocks.size() - 1;
            }
            offset             = 0;
            const auto aligned = align_up(offset, align);
            if (aligned + bytes <= blocks[block_index].size)
            {
                offset = aligned + bytes;
                if (total_in_use() > high_water)
                {
                    high_water = total_in_use();
                }
                return blocks[block_index].data.get() + aligned;
            }
        }
    }

    std::vector<block> blocks{};
    std::size_t        block_index{0};
    std::size_t        offset{0};
    std::size_t        block_size;
    std::size_t        high_water{0};
};

/// The calling thread's scratch arena (created on first use).
[[nodiscard]] scratch_arena& scratch();

/// RAII region: marks on construction, rewinds on destruction. Regions must
/// nest LIFO (natural with scoped locals).
class scratch_region
{
  public:
    explicit scratch_region(scratch_arena& a) : arena{a}, saved{a.mark()} {}
    ~scratch_region() { arena.rewind(saved); }

    scratch_region(const scratch_region&)            = delete;
    scratch_region& operator=(const scratch_region&) = delete;

  private:
    scratch_arena&        arena;
    scratch_arena::marker saved;
};

/// A minimal push_back-able buffer living in a scratch arena. Grows by
/// bump-allocating a larger span and memcpy'ing — the abandoned span is
/// reclaimed when the enclosing scratch_region rewinds.
template <typename T>
class scratch_buffer
{
    static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                  "scratch_buffer elements are never destroyed on rewind");

  public:
    explicit scratch_buffer(scratch_arena& a, std::size_t initial_capacity = 16) : arena{&a}
    {
        cap  = initial_capacity > 0 ? initial_capacity : 1;
        data = static_cast<T*>(arena->allocate(cap * sizeof(T), alignof(T)));
    }

    void push_back(const T& v)
    {
        if (count == cap)
        {
            grow();
        }
        data[count++] = v;
    }

    void clear() noexcept { count = 0; }

    [[nodiscard]] std::size_t size() const noexcept { return count; }
    [[nodiscard]] bool        empty() const noexcept { return count == 0; }
    [[nodiscard]] T&          operator[](std::size_t i) noexcept { return data[i]; }
    [[nodiscard]] const T&    operator[](std::size_t i) const noexcept { return data[i]; }
    [[nodiscard]] T*          begin() noexcept { return data; }
    [[nodiscard]] T*          end() noexcept { return data + count; }
    [[nodiscard]] const T*    begin() const noexcept { return data; }
    [[nodiscard]] const T*    end() const noexcept { return data + count; }

  private:
    void grow()
    {
        const auto new_cap  = cap * 2;
        auto*      new_data = static_cast<T*>(arena->allocate(new_cap * sizeof(T), alignof(T)));
        std::memcpy(new_data, data, count * sizeof(T));
        data = new_data;
        cap  = new_cap;
    }

    scratch_arena* arena;
    T*             data{nullptr};
    std::size_t    count{0};
    std::size_t    cap{0};
};

}  // namespace mnt::trt
