#pragma once

/// \file deque.hpp
/// \brief Chase–Lev work-stealing deque (single owner, many thieves).
///
/// This is the per-worker run queue of the task runtime (taskrt.hpp). The
/// owning worker pushes and pops at the *bottom* without locks; any other
/// thread steals from the *top* with a single CAS. The implementation
/// follows the weak-memory-corrected formulation of Lê, Pop, Cohen &
/// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
/// Models" (PPoPP 2013), which is the variant that is clean under TSan and
/// on ARM — the original SPAA 2005 pseudocode assumes sequential
/// consistency on the buffer accesses.
///
/// Memory-ordering notes (the load-bearing fences):
///
/// - push() publishes the task with a *release store into the slot itself*
///   (plus the paper's release fence before incrementing bottom). The
///   per-slot release pairs with the thief's acquire load in steal(), so the
///   non-atomic task payload written before push() happens-before the
///   thief's reads. The paper gets the same edge from the standalone fence,
///   but standalone fences are invisible to ThreadSanitizer — the per-slot
///   release/acquire pair is equally correct, free on x86, and keeps the
///   deque TSan-provable.
/// - pop() decrements bottom and then issues a seq_cst fence before reading
///   top: this is the classic "store then load on the other index" pattern
///   that plain acquire/release cannot order.
/// - steal() reads top, fences, reads bottom — the mirror image — and
///   claims the element with a seq_cst CAS on top. Losing the CAS means
///   another thief (or the owner's last-element pop) took it.
///
/// The ring buffer grows geometrically and old buffers are *retired*, not
/// freed: a thief may still be dereferencing a stale buffer pointer after
/// the owner swapped in a bigger one, so retired rings live until the deque
/// is destroyed. The deque stores raw task pointers and does not own them.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mnt::trt
{

template <typename T>
class chase_lev_deque
{
  public:
    explicit chase_lev_deque(std::int64_t initial_capacity = 256)
    {
        auto first = std::make_unique<ring>(round_up_pow2(initial_capacity));
        buffer.store(first.get(), std::memory_order_relaxed);
        retired.push_back(std::move(first));
    }

    chase_lev_deque(const chase_lev_deque&)            = delete;
    chase_lev_deque& operator=(const chase_lev_deque&) = delete;

    /// Owner only. Never fails: the ring grows when full.
    void push(T* item)
    {
        const auto b = bottom.load(std::memory_order_relaxed);
        const auto t = top.load(std::memory_order_acquire);
        auto*      a = buffer.load(std::memory_order_relaxed);

        if (b - t > a->capacity - 1)
        {
            a = grow(a, t, b);
        }
        a->put(b, item);
        std::atomic_thread_fence(std::memory_order_release);
        bottom.store(b + 1, std::memory_order_relaxed);
    }

    /// Owner only. Returns nullptr when the deque is empty (or the single
    /// remaining element was lost to a concurrent thief).
    [[nodiscard]] T* pop()
    {
        const auto b = bottom.load(std::memory_order_relaxed) - 1;
        auto*      a = buffer.load(std::memory_order_relaxed);
        bottom.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        auto t = top.load(std::memory_order_relaxed);

        if (t > b)  // already empty: undo the decrement
        {
            bottom.store(b + 1, std::memory_order_relaxed);
            return nullptr;
        }

        T* item = a->get(b);
        if (t == b)  // last element: race the thieves for it
        {
            if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed))
            {
                item = nullptr;  // a thief got there first
            }
            bottom.store(b + 1, std::memory_order_relaxed);
        }
        return item;
    }

    /// Any thread. Returns nullptr when empty or when the CAS was lost to a
    /// competing thief / the owner — callers treat both as "try elsewhere".
    [[nodiscard]] T* steal()
    {
        auto t = top.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const auto b = bottom.load(std::memory_order_acquire);

        if (t >= b)
        {
            return nullptr;
        }

        auto* a    = buffer.load(std::memory_order_acquire);
        T*    item = a->get_acquire(t);
        if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed))
        {
            return nullptr;
        }
        return item;
    }

    /// Approximate occupancy — indices are read without synchronization, so
    /// this is a monitoring hint, not a correctness primitive.
    [[nodiscard]] std::size_t size_estimate() const noexcept
    {
        const auto b = bottom.load(std::memory_order_relaxed);
        const auto t = top.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0u;
    }

  private:
    struct ring
    {
        std::int64_t                        capacity;
        std::int64_t                        mask;
        std::unique_ptr<std::atomic<T*>[]> slots;

        explicit ring(std::int64_t cap) :
                capacity{cap},
                mask{cap - 1},
                slots{std::make_unique<std::atomic<T*>[]>(static_cast<std::size_t>(cap))}
        {}

        /// Owner-side read (pop, grow): the owner wrote the slot itself, so
        /// relaxed is enough.
        [[nodiscard]] T* get(std::int64_t i) const noexcept
        {
            return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_relaxed);
        }
        /// Thief-side read (steal): pairs with put()'s release so the task
        /// payload written before push() is visible to the stealing thread.
        [[nodiscard]] T* get_acquire(std::int64_t i) const noexcept
        {
            return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_acquire);
        }
        void put(std::int64_t i, T* v) noexcept
        {
            slots[static_cast<std::size_t>(i & mask)].store(v, std::memory_order_release);
        }
    };

    [[nodiscard]] static std::int64_t round_up_pow2(std::int64_t n) noexcept
    {
        std::int64_t p = 8;
        while (p < n)
        {
            p <<= 1;
        }
        return p;
    }

    /// Owner only (called from push). Copies the live window into a ring of
    /// twice the capacity and publishes it; the old ring is kept alive for
    /// thieves still holding its pointer.
    ring* grow(ring* old, std::int64_t t, std::int64_t b)
    {
        auto bigger = std::make_unique<ring>(old->capacity * 2);
        for (auto i = t; i < b; ++i)
        {
            bigger->put(i, old->get(i));
        }
        ring* raw = bigger.get();
        buffer.store(raw, std::memory_order_release);
        retired.push_back(std::move(bigger));
        return raw;
    }

    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::atomic<ring*>        buffer{nullptr};
    /// All rings ever allocated, newest last; mutated only by the owner
    /// (grow) and freed only on destruction, when no thief can be active.
    std::vector<std::unique_ptr<ring>> retired{};
};

}  // namespace mnt::trt
