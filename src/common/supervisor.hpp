//
// Process-isolated worker supervisor.
//
// fork/execs a job into a sandboxed child process with resource limits
// (CPU seconds, address space), captures its stderr tail, and watches a
// heartbeat pipe. A child that stops making progress is escalated
// SIGTERM -> SIGKILL by the watchdog, and every termination mode — clean
// exit, nonzero exit, fatal signal, hang, spawn failure — is reported as a
// structured worker_result instead of propagating into the parent. This is
// what turns "exact segfaulted" from a dead portfolio sweep into one
// failure_record in the catalog while the remaining shards complete.
//

#ifndef MNT_COMMON_SUPERVISOR_HPP
#define MNT_COMMON_SUPERVISOR_HPP

#include "common/resilience.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mnt::sup
{

/// Environment variable through which a supervised child receives the write
/// end of the heartbeat pipe (as a decimal file descriptor number).
inline constexpr const char* heartbeat_env = "MNT_HEARTBEAT_FD";

/// Resource limits and watchdog configuration for a supervised worker.
struct worker_limits
{
    /// Hard wall-clock budget for the whole child; 0 disables. On expiry the
    /// watchdog escalates SIGTERM -> SIGKILL.
    double wall_timeout_s{0.0};
    /// Maximum silence on the heartbeat pipe before the child is considered
    /// hung; 0 disables hang detection. Stderr output also counts as a sign
    /// of life.
    double hang_timeout_s{0.0};
    /// Grace period between SIGTERM and SIGKILL during escalation.
    double term_grace_s{2.0};
    /// RLIMIT_CPU in seconds (rounded up); 0 leaves the limit untouched.
    /// A child exceeding it receives SIGXCPU/SIGKILL from the kernel.
    double cpu_limit_s{0.0};
    /// RLIMIT_AS in bytes; 0 leaves the limit untouched. Allocation beyond
    /// it fails with std::bad_alloc (or the child dies), containing OOM.
    std::uint64_t address_space_bytes{0};
    /// How many bytes of trailing stderr to keep for the failure record.
    std::size_t stderr_tail_bytes{4096};
    /// Optional cooperative cancel flag: when it becomes true the watchdog
    /// terminates the child (SIGTERM -> SIGKILL) and reports the kill reason
    /// as `cancel`.
    const std::atomic<bool>* cancel{nullptr};
};

/// Coarse termination mode of a supervised worker.
enum class worker_status : std::uint8_t
{
    exited,        ///< child ran to completion and exited (code may be nonzero)
    crashed,       ///< child died on a signal it did not request (SIGSEGV, ...)
    hung,          ///< watchdog killed the child after heartbeat silence
    spawn_failed,  ///< fork/exec itself failed; the job never ran
};

/// Why the watchdog intervened, if it did.
enum class kill_reason : std::uint8_t
{
    none,          ///< watchdog never fired
    wall_timeout,  ///< wall-clock budget exceeded
    hang,          ///< heartbeat silence exceeded hang_timeout_s
    cancel,        ///< cooperative cancel flag was raised
};

/// Everything the parent learns about one supervised child.
struct worker_result
{
    worker_status status{worker_status::spawn_failed};
    /// Exit code when status == exited, else -1.
    int exit_code{-1};
    /// Terminating signal number when the child died on a signal, else 0.
    int signal{0};
    /// Why the watchdog killed the child (none if it terminated on its own).
    kill_reason reason{kill_reason::none};
    /// True when the fatal signal was delivered by the watchdog, false when
    /// the child earned it on its own (segfault, kernel rlimit, ...).
    bool killed_by_watchdog{false};
    /// Wall-clock seconds between spawn and reap.
    double elapsed_s{0.0};
    /// Number of heartbeat bytes received from the child.
    std::uint64_t heartbeats{0};
    /// Trailing bytes of the child's stderr (bounded by stderr_tail_bytes).
    std::string stderr_tail{};
    /// Human-readable spawn-failure detail when status == spawn_failed.
    std::string error{};

    [[nodiscard]] bool ok() const noexcept
    {
        return status == worker_status::exited && exit_code == 0;
    }
};

/// Runs `argv` (argv[0] = executable, resolved via PATH) as a supervised
/// child process and blocks until it terminates or the watchdog reaps it.
/// Never throws on child failure — every outcome is encoded in the result.
[[nodiscard]] worker_result run_worker(const std::vector<std::string>& argv, const worker_limits& limits = {});

/// Child-side: emit one heartbeat byte on the pipe inherited from the
/// supervisor. No-op (and cheap) when not running under supervision; safe to
/// call from hot loops — the pipe is non-blocking and a full pipe is fine
/// (any unread byte already proves liveness).
void heartbeat() noexcept;

/// True when this process runs under a supervisor (heartbeat pipe present).
[[nodiscard]] bool supervised() noexcept;

/// Stable lowercase name for a worker_status, for logs and JSON.
[[nodiscard]] const char* worker_status_name(worker_status status) noexcept;

/// Stable lowercase name for a kill_reason, for logs and JSON.
[[nodiscard]] const char* kill_reason_name(kill_reason reason) noexcept;

/// Maps a worker_result onto the PR 2 outcome taxonomy: clean exit -> ok,
/// nonzero exit -> internal_error, SIGXCPU / watchdog wall-timeout kill ->
/// timeout, heartbeat-silence kill -> hung, other fatal signals -> crashed,
/// spawn failure -> internal_error.
[[nodiscard]] res::outcome_kind classify(const worker_result& result) noexcept;

/// One-line human-readable description of the result, e.g.
/// "crashed: signal 11 (SIGSEGV) after 0.31 s".
[[nodiscard]] std::string describe(const worker_result& result);

/// Absolute path of the currently running executable (/proc/self/exe),
/// for re-invoking ourselves as a worker. Throws mnt_error on failure.
[[nodiscard]] std::string self_executable();

}  // namespace mnt::sup

#endif  // MNT_COMMON_SUPERVISOR_HPP
