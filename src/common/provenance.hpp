#pragma once

/// \file provenance.hpp
/// \brief Single source of truth for the provenance vocabulary of generated
///        layouts: algorithm names, optimization names and the combined
///        display label, exactly as they appear in the paper's Table I.
///
/// Every module that tags a layout (the portfolio), stores one (the catalog)
/// or serializes one (JSON export, Table I rows, file export) uses these
/// constants instead of re-typing string literals, so a renamed flow can
/// never drift apart across the pipeline.

#include <string>
#include <vector>

namespace mnt::prov
{

/// Physical design algorithm names (layout_result::algorithm,
/// layout_record::algorithm, filter facets).
inline constexpr const char* algo_exact = "exact";
inline constexpr const char* algo_ortho = "ortho";
inline constexpr const char* algo_nanoplacer = "NPR";

/// Optimization names in Table I notation.
inline constexpr const char* opt_input_ordering = "InOrd (SDN)";
inline constexpr const char* opt_hexagonalization = "45°";
inline constexpr const char* opt_post_layout = "PLO";

/// Combined display label, e.g. "ortho, InOrd (SDN), PLO" — the one
/// formatting rule behind layout_result::label(), layout_record::label()
/// and the baseline labels of the ΔA column.
[[nodiscard]] inline std::string label(const std::string& algorithm, const std::vector<std::string>& optimizations)
{
    std::string s = algorithm;
    for (const auto& o : optimizations)
    {
        s += ", " + o;
    }
    return s;
}

/// Combination label, e.g. "NPR@USE" or "ortho@ROW+InOrd (SDN)+45°" — the one
/// formatting rule behind the portfolio's telemetry span names, the failure
/// manifest's combination column, and the persistent store's cache keys. A
/// layout's combination label is reconstructible from its provenance fields
/// alone, which is what makes incremental regeneration possible.
[[nodiscard]] inline std::string combo_label(const std::string& algorithm, const std::string& clocking,
                                             const std::vector<std::string>& optimizations)
{
    std::string s = algorithm + "@" + clocking;
    for (const auto& o : optimizations)
    {
        s += "+" + o;
    }
    return s;
}

// ------------------------------------------------------- build provenance

/// Compile-time facts about this binary, surfaced on /healthz, /statz and in
/// trace exports so an operator can tell *which* build produced a number.
struct build_info_t
{
    /// Project version (the MNT_VERSION compile definition, or "unversioned").
    std::string version;
    /// Compiler id and version, e.g. "gcc 13.2.0".
    std::string compiler;
    /// "Release" or "Debug" (from NDEBUG).
    std::string build_type;
    /// The __cplusplus language level, e.g. "202002".
    std::string cxx_standard;
};

/// The process-wide build info (constructed once, thread-safe).
[[nodiscard]] const build_info_t& build_info();

}  // namespace mnt::prov
