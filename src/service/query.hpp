#pragma once

/// \file query.hpp
/// \brief Indexed query engine over the catalog — the part of the MNT Bench
///        platform that answers the website's Figure 1 facet queries at
///        serving scale. Where core/filters.cpp scans every record per
///        query, the engine builds inverted facet indexes (facet value →
///        sorted posting list of record indexes) once at load time and
///        answers queries by posting-list unions and intersections, then
///        adds pagination, sorting and facet histograms on top.
///
/// Result semantics are identical to \ref mnt::cat::apply_filter by
/// construction (and by test): same records, same canonical order
/// (\ref mnt::cat::canonical_layout_less). The engine additionally assigns
/// every layout a stable content-derived id — the download key of the HTTP
/// server — either taken from the store snapshot or computed from the
/// layout's canonical .fgl serialization (the two agree by definition of
/// the store's content addressing).
///
/// A small JSON wire format covers queries (`page_query::from_json`, query
/// strings via `page_query::from_query_string`) and result pages
/// (`page_to_json`).

#include "core/catalog.hpp"
#include "core/filters.hpp"
#include "service/json.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mnt::svc
{

/// Sort key of a result page. Every key uses the canonical order as the
/// final tie-break, so pages are deterministic for any key.
enum class sort_key : std::uint8_t
{
    area,       ///< ascending layout area (the website's default)
    benchmark,  ///< (set, name)
    algorithm,  ///< combined algorithm label
    runtime     ///< generation runtime
};

enum class sort_order : std::uint8_t
{
    ascending,
    descending
};

[[nodiscard]] const char* sort_key_name(sort_key key) noexcept;
[[nodiscard]] sort_key sort_key_from_name(std::string_view name);

/// One page request: a facet filter plus sorting and pagination.
struct page_query
{
    /// Hard cap on the page size; larger limits are clamped.
    static constexpr std::size_t max_limit = 500;

    cat::filter_query filter;
    sort_key sort{sort_key::area};
    sort_order order{sort_order::ascending};
    std::size_t offset{0};
    /// Rows per page; 0 means "metadata only" (total + facets, no rows).
    std::size_t limit{50};
    bool include_facets{true};

    /// Canonical normalized key of this query (vectors sorted + deduped) —
    /// the response-cache key. Two queries with the same semantics have the
    /// same key regardless of how they were written.
    [[nodiscard]] std::string cache_key() const;

    /// Parses the JSON body format:
    ///
    /// \code{.json}
    /// {"set": "Trindade16", "name": "2:1 MUX",
    ///  "libraries": ["QCA ONE"], "clockings": ["USE"],
    ///  "algorithms": ["exact"], "optimizations": ["PLO"],
    ///  "families": ["<32-hex family id>"],
    ///  "best_only": false, "sort": "area", "order": "asc",
    ///  "offset": 0, "limit": 50, "facets": true}
    /// \endcode
    ///
    /// All members are optional; unknown members raise.
    ///
    /// \throws mnt::mnt_error on unknown members or invalid values
    [[nodiscard]] static page_query from_json(const json_value& document);

    /// Parses an URL query string (`set=...&library=A,B&sort=area&...`).
    /// Keys: set, name, library, clocking, algorithm, opt, family, best,
    /// sort, order, offset, limit, facets. Multi-value facets accept both
    /// comma lists and repeated keys. %XX and '+' decoding applied.
    ///
    /// \throws mnt::mnt_error on unknown keys or invalid values
    [[nodiscard]] static page_query from_query_string(std::string_view query_string);
};

/// One result page.
struct result_page
{
    /// Matches before pagination.
    std::size_t total{0};
    std::size_t offset{0};
    /// The page's rows, in requested sort order.
    std::vector<const cat::layout_record*> rows;
    /// Download id of rows[i].
    std::vector<std::string> ids;
    /// Facet histograms over ALL matches (empty when not requested).
    cat::facet_counts facets;
};

/// The engine. Holds a reference to the catalog: the catalog must outlive
/// the engine and stay unmodified (the serving pipeline loads the catalog
/// once and never mutates it while queries run — immutability is what makes
/// the server's lock-free read path safe).
class query_engine
{
public:
    /// Builds the indexes. \p ids supplies the content hash per layout
    /// (parallel to cat.layouts(), e.g. from a store snapshot); when empty,
    /// ids are computed from each layout's .fgl serialization.
    explicit query_engine(const cat::catalog& cat, std::vector<std::string> ids = {});

    /// Answers \p query via the indexes. Result records and order are
    /// identical to \ref mnt::cat::apply_filter on the same catalog.
    [[nodiscard]] std::vector<const cat::layout_record*> filter(const cat::filter_query& query) const;

    /// Runs the full page pipeline: filter → facets → sort → paginate.
    [[nodiscard]] result_page run(const page_query& query) const;

    /// Download id of catalog.layouts()[index].
    [[nodiscard]] const std::string& id_of(std::size_t index) const;

    /// Index of the layout with download id \p id.
    [[nodiscard]] std::optional<std::size_t> index_of(const std::string& id) const;

    [[nodiscard]] const cat::catalog& catalog() const noexcept;

    /// Number of distinct posting lists across all facet indexes
    /// (diagnostics).
    [[nodiscard]] std::size_t num_index_terms() const noexcept;

private:
    using posting_list = std::vector<std::uint32_t>;

    [[nodiscard]] const cat::layout_record& record(std::uint32_t index) const;

    const cat::catalog& cat_ref;
    std::vector<std::string> layout_ids;
    std::unordered_map<std::string, std::size_t> id_index;

    std::map<std::string, posting_list> by_set;
    std::map<std::string, posting_list> by_name;
    std::map<std::string, posting_list> by_clocking;
    std::map<std::string, posting_list> by_algorithm;
    std::map<std::string, posting_list> by_optimization;
    std::map<std::string, posting_list> by_family;  ///< synthetic families only
    std::array<posting_list, 2> by_library;         ///< indexed by gate_library_kind

    /// canonical_rank[i] = position of record i in canonical order.
    std::vector<std::uint32_t> canonical_rank;
};

/// Serializes a result page:
///
/// \code{.json}
/// {"total": 12, "offset": 0, "count": 10,
///  "results": [ {"id": "91a...", "set": ..., "name": ..., "library": ...,
///                "clocking": ..., "algorithm": ..., "optimizations": [...],
///                "label": ..., "width": w, "height": h, "area": a,
///                "gates": g, "wires": w, "crossings": c,
///                "runtime_s": t, "family": ..., "family_seed": ...}, ... ],
///  "facets": {"sets": {...}, "libraries": {...}, "clockings": {...},
///             "algorithms": {...}, "optimizations": {...},
///             "families": {...}}}
/// \endcode
///
/// "family"/"family_seed" appear only on synthetic-family rows.
///
/// The "facets" member is present only when the page carries facets.
[[nodiscard]] json_value page_to_json(const result_page& page);

/// Convenience: page JSON as a string.
[[nodiscard]] std::string page_json_string(const result_page& page);

/// Decodes an URL query string into (key, value) pairs, %XX- and
/// '+'-decoded, in input order.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> parse_query_string(std::string_view query_string);

/// The hot queries of the serving layer, exactly as the HTTP routes
/// construct them: the default first page for every sort key (what
/// `GET /layouts` and `GET /layouts?sort=...` answer with no filter), the
/// facets-only metadata query behind `GET /facets`, and the default
/// best-per-function page behind `GET /best`. The server precomputes these
/// into its immutable catalog snapshot (see server.hpp) so the common
/// queries are answered without touching the engine.
[[nodiscard]] std::vector<page_query> default_page_queries();

}  // namespace mnt::svc
