#pragma once

/// \file hash.hpp
/// \brief Content hashing for the persistent layout store. Blobs (.fgl / .v
///        documents) are addressed by the first 128 bits of the SHA-256
///        digest of their bytes, rendered as 32 lower-case hex digits. The
///        hash is stable across platforms and process runs — it is part of
///        the on-disk format and of every download URL, so it must never
///        change. 128 bits make accidental collisions (which would silently
///        alias two distinct layouts under one blob) a non-event, unlike the
///        64-bit FNV-1a address used by manifest version 1.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mnt::svc
{

/// SHA-256 (FIPS 180-4) over \p bytes. Self-contained single-shot
/// implementation — the store hashes whole in-memory serializations, so no
/// streaming interface is needed.
[[nodiscard]] inline std::array<std::uint8_t, 32> sha256(const std::string_view bytes) noexcept
{
    constexpr std::array<std::uint32_t, 64> k{
        0x428a2f98U, 0x71374491U, 0xb5c0fbcfU, 0xe9b5dba5U, 0x3956c25bU, 0x59f111f1U, 0x923f82a4U, 0xab1c5ed5U,
        0xd807aa98U, 0x12835b01U, 0x243185beU, 0x550c7dc3U, 0x72be5d74U, 0x80deb1feU, 0x9bdc06a7U, 0xc19bf174U,
        0xe49b69c1U, 0xefbe4786U, 0x0fc19dc6U, 0x240ca1ccU, 0x2de92c6fU, 0x4a7484aaU, 0x5cb0a9dcU, 0x76f988daU,
        0x983e5152U, 0xa831c66dU, 0xb00327c8U, 0xbf597fc7U, 0xc6e00bf3U, 0xd5a79147U, 0x06ca6351U, 0x14292967U,
        0x27b70a85U, 0x2e1b2138U, 0x4d2c6dfcU, 0x53380d13U, 0x650a7354U, 0x766a0abbU, 0x81c2c92eU, 0x92722c85U,
        0xa2bfe8a1U, 0xa81a664bU, 0xc24b8b70U, 0xc76c51a3U, 0xd192e819U, 0xd6990624U, 0xf40e3585U, 0x106aa070U,
        0x19a4c116U, 0x1e376c08U, 0x2748774cU, 0x34b0bcb5U, 0x391c0cb3U, 0x4ed8aa4aU, 0x5b9cca4fU, 0x682e6ff3U,
        0x748f82eeU, 0x78a5636fU, 0x84c87814U, 0x8cc70208U, 0x90befffaU, 0xa4506cebU, 0xbef9a3f7U, 0xc67178f2U};

    std::array<std::uint32_t, 8> h{0x6a09e667U, 0xbb67ae85U, 0x3c6ef372U, 0xa54ff53aU,
                                   0x510e527fU, 0x9b05688cU, 0x1f83d9abU, 0x5be0cd19U};

    const auto rotr = [](const std::uint32_t x, const unsigned n) noexcept -> std::uint32_t
    { return (x >> n) | (x << (32U - n)); };

    // message schedule: the padded message is processed in 64-byte chunks
    // without materializing the padding — `take` yields message bytes, then
    // 0x80, zeros, and the 64-bit big-endian bit length
    const std::uint64_t bit_length = static_cast<std::uint64_t>(bytes.size()) * 8U;
    const std::size_t total = ((bytes.size() + 8U) / 64U + 1U) * 64U;
    const auto take = [&](const std::size_t i) noexcept -> std::uint8_t
    {
        if (i < bytes.size())
        {
            return static_cast<std::uint8_t>(bytes[i]);
        }
        if (i == bytes.size())
        {
            return 0x80U;
        }
        if (i >= total - 8U)
        {
            return static_cast<std::uint8_t>(bit_length >> ((total - 1U - i) * 8U));
        }
        return 0U;
    };

    for (std::size_t chunk = 0; chunk < total; chunk += 64U)
    {
        std::array<std::uint32_t, 64> w{};
        for (std::size_t i = 0; i < 16U; ++i)
        {
            w[i] = (static_cast<std::uint32_t>(take(chunk + 4U * i)) << 24U) |
                   (static_cast<std::uint32_t>(take(chunk + 4U * i + 1U)) << 16U) |
                   (static_cast<std::uint32_t>(take(chunk + 4U * i + 2U)) << 8U) |
                   static_cast<std::uint32_t>(take(chunk + 4U * i + 3U));
        }
        for (std::size_t i = 16U; i < 64U; ++i)
        {
            const auto s0 = rotr(w[i - 15U], 7U) ^ rotr(w[i - 15U], 18U) ^ (w[i - 15U] >> 3U);
            const auto s1 = rotr(w[i - 2U], 17U) ^ rotr(w[i - 2U], 19U) ^ (w[i - 2U] >> 10U);
            w[i] = w[i - 16U] + s0 + w[i - 7U] + s1;
        }

        auto [a, b, c, d, e, f, g, hh] = h;
        for (std::size_t i = 0; i < 64U; ++i)
        {
            const auto s1 = rotr(e, 6U) ^ rotr(e, 11U) ^ rotr(e, 25U);
            const auto ch = (e & f) ^ (~e & g);
            const auto temp1 = hh + s1 + ch + k[i] + w[i];
            const auto s0 = rotr(a, 2U) ^ rotr(a, 13U) ^ rotr(a, 22U);
            const auto maj = (a & b) ^ (a & c) ^ (b & c);
            const auto temp2 = s0 + maj;
            hh = g;
            g = f;
            f = e;
            e = d + temp1;
            d = c;
            c = b;
            b = a;
            a = temp1 + temp2;
        }
        h[0] += a;
        h[1] += b;
        h[2] += c;
        h[3] += d;
        h[4] += e;
        h[5] += f;
        h[6] += g;
        h[7] += hh;
    }

    std::array<std::uint8_t, 32> digest{};
    for (std::size_t i = 0; i < 8U; ++i)
    {
        digest[4U * i] = static_cast<std::uint8_t>(h[i] >> 24U);
        digest[4U * i + 1U] = static_cast<std::uint8_t>(h[i] >> 16U);
        digest[4U * i + 2U] = static_cast<std::uint8_t>(h[i] >> 8U);
        digest[4U * i + 3U] = static_cast<std::uint8_t>(h[i]);
    }
    return digest;
}

/// Content address of a blob: the first 16 bytes of sha256 as 32 lower-case
/// hex digits.
[[nodiscard]] inline std::string content_hash(const std::string_view bytes)
{
    const auto digest = sha256(bytes);
    std::string hex(32, '0');
    for (std::size_t i = 0; i < 16U; ++i)
    {
        hex[2U * i] = "0123456789abcdef"[digest[i] >> 4U];
        hex[2U * i + 1U] = "0123456789abcdef"[digest[i] & 0xFU];
    }
    return hex;
}

}  // namespace mnt::svc
