#pragma once

/// \file hash.hpp
/// \brief Content hashing for the persistent layout store. Blobs (.fgl / .v
///        documents) are addressed by the FNV-1a 64-bit hash of their bytes,
///        rendered as 16 lower-case hex digits. The hash is stable across
///        platforms and process runs — it is part of the on-disk format and
///        of every download URL, so it must never change.

#include <cstdint>
#include <string>
#include <string_view>

namespace mnt::svc
{

/// FNV-1a 64-bit over \p bytes.
[[nodiscard]] constexpr std::uint64_t fnv1a64(const std::string_view bytes) noexcept
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes)
    {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/// Content address of a blob: fnv1a64 as 16 lower-case hex digits.
[[nodiscard]] inline std::string content_hash(const std::string_view bytes)
{
    auto value = fnv1a64(bytes);
    std::string hex(16, '0');
    for (std::size_t i = 16; i-- > 0; value >>= 4)
    {
        hex[i] = "0123456789abcdef"[value & 0xF];
    }
    return hex;
}

}  // namespace mnt::svc
