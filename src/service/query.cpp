#include "service/query.hpp"

#include "io/fgl_writer.hpp"
#include "service/hash.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

namespace mnt::svc
{

namespace
{

/// Posting list of \p value in \p index (empty when the value is unknown).
const std::vector<std::uint32_t>& lookup(const std::map<std::string, std::vector<std::uint32_t>>& index,
                                         const std::string& value)
{
    const auto found = index.find(value);
    static const std::vector<std::uint32_t> empty{};
    return found != index.cend() ? found->second : empty;
}

/// Union of sorted posting lists (ascending, duplicate-free).
std::vector<std::uint32_t> postings_union(std::vector<const std::vector<std::uint32_t>*> lists)
{
    std::vector<std::uint32_t> merged;
    for (const auto* list : lists)
    {
        std::vector<std::uint32_t> next;
        next.reserve(merged.size() + list->size());
        std::set_union(merged.cbegin(), merged.cend(), list->cbegin(), list->cend(), std::back_inserter(next));
        merged = std::move(next);
    }
    return merged;
}

/// Intersection of two sorted lists.
std::vector<std::uint32_t> postings_intersection(const std::vector<std::uint32_t>& a,
                                                 const std::vector<std::uint32_t>& b)
{
    std::vector<std::uint32_t> out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.cbegin(), a.cend(), b.cbegin(), b.cend(), std::back_inserter(out));
    return out;
}

std::size_t parse_size(const std::string& text, const char* what)
{
    char* end = nullptr;
    const auto value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
    {
        throw mnt_error{std::string{"query: invalid "} + what + " '" + text + "'"};
    }
    return static_cast<std::size_t>(value);
}

bool parse_bool(const std::string& text, const char* what)
{
    if (text == "1" || text == "true" || text == "on")
    {
        return true;
    }
    if (text == "0" || text == "false" || text == "off" || text.empty())
    {
        return false;
    }
    throw mnt_error{std::string{"query: invalid "} + what + " '" + text + "'"};
}

/// Splits a comma list, dropping empty tokens.
std::vector<std::string> split_commas(const std::string& text)
{
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= text.size())
    {
        const auto comma = text.find(',', start);
        const auto end = comma == std::string::npos ? text.size() : comma;
        if (end > start)
        {
            tokens.push_back(text.substr(start, end - start));
        }
        if (comma == std::string::npos)
        {
            break;
        }
        start = comma + 1;
    }
    return tokens;
}

std::vector<std::string> sorted_unique(std::vector<std::string> values)
{
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
}

void append_list(std::string& out, const char* tag, const std::vector<std::string>& values)
{
    out += tag;
    bool first = true;
    for (const auto& v : sorted_unique(values))
    {
        if (!first)
        {
            out += ",";
        }
        first = false;
        out += v;
    }
}

json_value counts_to_json(const std::map<std::string, std::size_t>& counts)
{
    auto object = json_value::make_object();
    for (const auto& [name, count] : counts)
    {
        object.set(name, json_value{static_cast<std::uint64_t>(count)});
    }
    return object;
}

json_value row_to_json(const cat::layout_record& r, const std::string& id)
{
    auto row = json_value::make_object();
    row.set("id", json_value{id});
    row.set("set", json_value{r.benchmark_set});
    row.set("name", json_value{r.benchmark_name});
    row.set("library", json_value{cat::gate_library_name(r.library)});
    row.set("clocking", json_value{r.clocking});
    row.set("algorithm", json_value{r.algorithm});
    auto opts = json_value::make_array();
    for (const auto& o : r.optimizations)
    {
        opts.push_back(json_value{o});
    }
    row.set("optimizations", std::move(opts));
    row.set("label", json_value{r.label()});
    row.set("width", json_value{std::uint64_t{r.width}});
    row.set("height", json_value{std::uint64_t{r.height}});
    row.set("area", json_value{r.area});
    row.set("gates", json_value{static_cast<std::uint64_t>(r.num_gates)});
    row.set("wires", json_value{static_cast<std::uint64_t>(r.num_wires)});
    row.set("crossings", json_value{static_cast<std::uint64_t>(r.num_crossings)});
    row.set("runtime_s", json_value{r.runtime});
    if (!r.family.empty())
    {
        row.set("family", json_value{r.family});
        // hex string: 64-bit seeds do not fit a JSON double losslessly
        char seed_hex[19];
        std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx", static_cast<unsigned long long>(r.family_seed));
        row.set("family_seed", json_value{std::string{seed_hex}});
    }
    return row;
}

}  // namespace

const char* sort_key_name(const sort_key key) noexcept
{
    switch (key)
    {
        case sort_key::area: return "area";
        case sort_key::benchmark: return "benchmark";
        case sort_key::algorithm: return "algorithm";
        case sort_key::runtime: return "runtime";
    }
    return "area";
}

sort_key sort_key_from_name(const std::string_view name)
{
    if (name == "area")
    {
        return sort_key::area;
    }
    if (name == "benchmark")
    {
        return sort_key::benchmark;
    }
    if (name == "algorithm")
    {
        return sort_key::algorithm;
    }
    if (name == "runtime")
    {
        return sort_key::runtime;
    }
    throw mnt_error{"query: unknown sort key '" + std::string{name} + "'"};
}

std::string page_query::cache_key() const
{
    std::string key;
    key += "set=" + (filter.benchmark_set.has_value() ? *filter.benchmark_set : std::string{"*"});
    key += "|name=" + (filter.benchmark_name.has_value() ? *filter.benchmark_name : std::string{"*"});
    std::vector<std::string> libraries;
    for (const auto library : filter.libraries)
    {
        libraries.push_back(cat::gate_library_name(library));
    }
    append_list(key, "|lib=", libraries);
    append_list(key, "|clk=", filter.clockings);
    append_list(key, "|alg=", filter.algorithms);
    append_list(key, "|opt=", filter.required_optimizations);
    append_list(key, "|fam=", filter.families);
    key += filter.best_only ? "|best=1" : "|best=0";
    key += std::string{"|sort="} + sort_key_name(sort);
    key += order == sort_order::ascending ? "|ord=asc" : "|ord=desc";
    key += "|off=" + std::to_string(offset);
    key += "|lim=" + std::to_string(std::min(limit, max_limit));
    key += include_facets ? "|fac=1" : "|fac=0";
    return key;
}

page_query page_query::from_json(const json_value& document)
{
    page_query query{};
    for (const auto& [name, value] : document.as_object())
    {
        if (name == "set")
        {
            query.filter.benchmark_set = value.as_string();
        }
        else if (name == "name")
        {
            query.filter.benchmark_name = value.as_string();
        }
        else if (name == "libraries")
        {
            for (const auto& library : value.as_array())
            {
                query.filter.libraries.push_back(cat::gate_library_from_name(library.as_string()));
            }
        }
        else if (name == "clockings")
        {
            for (const auto& clocking : value.as_array())
            {
                query.filter.clockings.push_back(clocking.as_string());
            }
        }
        else if (name == "algorithms")
        {
            for (const auto& algorithm : value.as_array())
            {
                query.filter.algorithms.push_back(algorithm.as_string());
            }
        }
        else if (name == "optimizations")
        {
            for (const auto& optimization : value.as_array())
            {
                query.filter.required_optimizations.push_back(optimization.as_string());
            }
        }
        else if (name == "families")
        {
            for (const auto& family : value.as_array())
            {
                query.filter.families.push_back(family.as_string());
            }
        }
        else if (name == "best_only")
        {
            query.filter.best_only = value.as_boolean();
        }
        else if (name == "sort")
        {
            query.sort = sort_key_from_name(value.as_string());
        }
        else if (name == "order")
        {
            const auto& order = value.as_string();
            if (order != "asc" && order != "desc")
            {
                throw mnt_error{"query: invalid order '" + order + "'"};
            }
            query.order = order == "asc" ? sort_order::ascending : sort_order::descending;
        }
        else if (name == "offset")
        {
            query.offset = static_cast<std::size_t>(value.as_u64());
        }
        else if (name == "limit")
        {
            query.limit = static_cast<std::size_t>(value.as_u64());
        }
        else if (name == "facets")
        {
            query.include_facets = value.as_boolean();
        }
        else
        {
            throw mnt_error{"query: unknown member '" + name + "'"};
        }
    }
    return query;
}

page_query page_query::from_query_string(const std::string_view query_string)
{
    page_query query{};
    for (const auto& [key, value] : parse_query_string(query_string))
    {
        if (key == "set")
        {
            query.filter.benchmark_set = value;
        }
        else if (key == "name")
        {
            query.filter.benchmark_name = value;
        }
        else if (key == "library")
        {
            for (const auto& library : split_commas(value))
            {
                query.filter.libraries.push_back(cat::gate_library_from_name(library));
            }
        }
        else if (key == "clocking")
        {
            for (auto& clocking : split_commas(value))
            {
                query.filter.clockings.push_back(std::move(clocking));
            }
        }
        else if (key == "algorithm")
        {
            for (auto& algorithm : split_commas(value))
            {
                query.filter.algorithms.push_back(std::move(algorithm));
            }
        }
        else if (key == "opt")
        {
            for (auto& optimization : split_commas(value))
            {
                query.filter.required_optimizations.push_back(std::move(optimization));
            }
        }
        else if (key == "family")
        {
            for (auto& family : split_commas(value))
            {
                query.filter.families.push_back(std::move(family));
            }
        }
        else if (key == "best")
        {
            query.filter.best_only = parse_bool(value, "best");
        }
        else if (key == "sort")
        {
            query.sort = sort_key_from_name(value);
        }
        else if (key == "order")
        {
            if (value != "asc" && value != "desc")
            {
                throw mnt_error{"query: invalid order '" + value + "'"};
            }
            query.order = value == "asc" ? sort_order::ascending : sort_order::descending;
        }
        else if (key == "offset")
        {
            query.offset = parse_size(value, "offset");
        }
        else if (key == "limit")
        {
            query.limit = parse_size(value, "limit");
        }
        else if (key == "facets")
        {
            query.include_facets = parse_bool(value, "facets");
        }
        else
        {
            throw mnt_error{"query: unknown parameter '" + key + "'"};
        }
    }
    return query;
}

std::vector<std::pair<std::string, std::string>> parse_query_string(const std::string_view query_string)
{
    const auto decode = [](const std::string_view raw)
    {
        std::string out;
        out.reserve(raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i)
        {
            const char c = raw[i];
            if (c == '+')
            {
                out.push_back(' ');
            }
            else if (c == '%')
            {
                const auto hex = [&](const char h) -> int
                {
                    if (h >= '0' && h <= '9')
                    {
                        return h - '0';
                    }
                    if (h >= 'a' && h <= 'f')
                    {
                        return h - 'a' + 10;
                    }
                    if (h >= 'A' && h <= 'F')
                    {
                        return h - 'A' + 10;
                    }
                    return -1;
                };
                if (i + 2 >= raw.size() || hex(raw[i + 1]) < 0 || hex(raw[i + 2]) < 0)
                {
                    throw mnt_error{"query: malformed percent-encoding"};
                }
                out.push_back(static_cast<char>((hex(raw[i + 1]) << 4) | hex(raw[i + 2])));
                i += 2;
            }
            else
            {
                out.push_back(c);
            }
        }
        return out;
    };

    std::vector<std::pair<std::string, std::string>> pairs;
    std::size_t start = 0;
    while (start < query_string.size())
    {
        auto amp = query_string.find('&', start);
        if (amp == std::string_view::npos)
        {
            amp = query_string.size();
        }
        const auto pair = query_string.substr(start, amp - start);
        if (!pair.empty())
        {
            const auto eq = pair.find('=');
            if (eq == std::string_view::npos)
            {
                pairs.emplace_back(decode(pair), std::string{});
            }
            else
            {
                pairs.emplace_back(decode(pair.substr(0, eq)), decode(pair.substr(eq + 1)));
            }
        }
        start = amp + 1;
    }
    return pairs;
}

query_engine::query_engine(const cat::catalog& cat, std::vector<std::string> ids) :
        cat_ref{cat},
        layout_ids{std::move(ids)}
{
    const tel::stopwatch watch;
    const auto& records = cat.layouts();
    const auto n = records.size();

    if (layout_ids.size() != n)
    {
        layout_ids.clear();
        layout_ids.reserve(n);
        for (const auto& r : records)
        {
            layout_ids.push_back(content_hash(io::write_fgl_string(r.layout)));
        }
    }
    for (std::size_t i = 0; i < n; ++i)
    {
        id_index.emplace(layout_ids[i], i);  // first occurrence wins
    }

    for (std::uint32_t i = 0; i < n; ++i)
    {
        const auto& r = records[i];
        by_set[r.benchmark_set].push_back(i);
        by_name[r.benchmark_name].push_back(i);
        by_clocking[r.clocking].push_back(i);
        by_algorithm[r.algorithm].push_back(i);
        by_library[static_cast<std::size_t>(r.library)].push_back(i);
        if (!r.family.empty())
        {
            by_family[r.family].push_back(i);
        }
        for (const auto& opt : r.optimizations)
        {
            auto& postings = by_optimization[opt];
            if (postings.empty() || postings.back() != i)  // dedupe repeated tags
            {
                postings.push_back(i);
            }
        }
    }

    // canonical_rank: position of each record in the canonical total order
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i)
    {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](const std::uint32_t a, const std::uint32_t b)
                     { return cat::canonical_layout_less(records[a], records[b]); });
    canonical_rank.resize(n);
    for (std::uint32_t position = 0; position < n; ++position)
    {
        canonical_rank[order[position]] = position;
    }

    if (tel::enabled())
    {
        tel::count("query.engine_builds");
        tel::observe("query.engine_build_s", watch.seconds());
        tel::set_gauge("query.indexed_layouts", static_cast<double>(n));
    }
}

const cat::layout_record& query_engine::record(const std::uint32_t index) const
{
    return cat_ref.layouts()[index];
}

std::vector<const cat::layout_record*> query_engine::filter(const cat::filter_query& query) const
{
    const tel::stopwatch watch;
    const auto n = static_cast<std::uint32_t>(cat_ref.layouts().size());

    // gather one sorted posting list per active constraint
    std::vector<posting_list> constraints;
    if (query.benchmark_set.has_value())
    {
        constraints.push_back(lookup(by_set, *query.benchmark_set));
    }
    if (query.benchmark_name.has_value())
    {
        constraints.push_back(lookup(by_name, *query.benchmark_name));
    }
    if (!query.libraries.empty())
    {
        std::vector<const posting_list*> lists;
        bool seen[2] = {false, false};
        for (const auto library : query.libraries)
        {
            const auto slot = static_cast<std::size_t>(library);
            if (!seen[slot])
            {
                seen[slot] = true;
                lists.push_back(&by_library[slot]);
            }
        }
        constraints.push_back(postings_union(std::move(lists)));
    }
    const auto union_constraint = [&](const std::map<std::string, posting_list>& index,
                                      const std::vector<std::string>& values)
    {
        std::vector<const posting_list*> lists;
        for (const auto& value : values)
        {
            lists.push_back(&lookup(index, value));
        }
        constraints.push_back(postings_union(std::move(lists)));
    };
    if (!query.clockings.empty())
    {
        union_constraint(by_clocking, query.clockings);
    }
    if (!query.algorithms.empty())
    {
        union_constraint(by_algorithm, query.algorithms);
    }
    if (!query.families.empty())
    {
        union_constraint(by_family, query.families);
    }
    for (const auto& opt : query.required_optimizations)
    {
        constraints.push_back(lookup(by_optimization, opt));
    }

    // intersect smallest-first to keep intermediate results minimal
    posting_list candidates;
    if (constraints.empty())
    {
        candidates.resize(n);
        for (std::uint32_t i = 0; i < n; ++i)
        {
            candidates[i] = i;
        }
    }
    else
    {
        std::sort(constraints.begin(), constraints.end(),
                  [](const posting_list& a, const posting_list& b) { return a.size() < b.size(); });
        candidates = constraints.front();
        for (std::size_t i = 1; i < constraints.size() && !candidates.empty(); ++i)
        {
            candidates = postings_intersection(candidates, constraints[i]);
        }
    }

    if (query.best_only)
    {
        // identical selection rule to apply_filter: first area-minimal (ties:
        // fewer wires) record per (set, name, library) in insertion order
        std::map<std::tuple<std::string, std::string, cat::gate_library_kind>, std::uint32_t> best;
        for (const auto i : candidates)
        {
            const auto& r = record(i);
            const auto slot = best.find({r.benchmark_set, r.benchmark_name, r.library});
            if (slot == best.cend())
            {
                best.emplace(std::make_tuple(r.benchmark_set, r.benchmark_name, r.library), i);
                continue;
            }
            const auto& current = record(slot->second);
            if (r.area < current.area || (r.area == current.area && r.num_wires < current.num_wires))
            {
                slot->second = i;
            }
        }
        candidates.clear();
        for (const auto& [key, i] : best)
        {
            candidates.push_back(i);
        }
        std::sort(candidates.begin(), candidates.end());
    }

    // canonical result order (ranks are unique, so plain sort is stable here)
    std::sort(candidates.begin(), candidates.end(),
              [&](const std::uint32_t a, const std::uint32_t b) { return canonical_rank[a] < canonical_rank[b]; });

    std::vector<const cat::layout_record*> selection;
    selection.reserve(candidates.size());
    for (const auto i : candidates)
    {
        selection.push_back(&record(i));
    }

    if (tel::enabled())
    {
        tel::count("query.filters");
        tel::count("query.filter_hits", selection.size());
        tel::observe("query.filter_s", watch.seconds());
    }
    return selection;
}

result_page query_engine::run(const page_query& query) const
{
    MNT_SPAN("query/run");
    result_page page{};
    auto selection = filter(query.filter);
    page.total = selection.size();
    page.offset = query.offset;

    if (query.include_facets)
    {
        page.facets = cat::compute_facets(selection);
    }

    // the requested sort key, canonical order as tie-break (selection is
    // already canonical, so a stable sort by the primary key alone suffices)
    const auto ascending = query.order == sort_order::ascending;
    const auto primary = [&](const cat::layout_record* a, const cat::layout_record* b)
    {
        switch (query.sort)
        {
            case sort_key::area: return ascending ? a->area < b->area : b->area < a->area;
            case sort_key::benchmark:
            {
                const auto ka = std::tie(a->benchmark_set, a->benchmark_name);
                const auto kb = std::tie(b->benchmark_set, b->benchmark_name);
                return ascending ? ka < kb : kb < ka;
            }
            case sort_key::algorithm:
            {
                const auto la = a->label();
                const auto lb = b->label();
                return ascending ? la < lb : lb < la;
            }
            case sort_key::runtime: return ascending ? a->runtime < b->runtime : b->runtime < a->runtime;
        }
        return false;
    };
    std::stable_sort(selection.begin(), selection.end(), primary);

    const auto limit = std::min(query.limit, page_query::max_limit);
    const auto first = std::min(query.offset, selection.size());
    const auto last = std::min(first + limit, selection.size());
    page.rows.assign(selection.cbegin() + static_cast<std::ptrdiff_t>(first),
                     selection.cbegin() + static_cast<std::ptrdiff_t>(last));
    page.ids.reserve(page.rows.size());
    const auto* base = cat_ref.layouts().data();
    for (const auto* row : page.rows)
    {
        page.ids.push_back(layout_ids[static_cast<std::size_t>(row - base)]);
    }
    tel::count("query.pages");
    return page;
}

const std::string& query_engine::id_of(const std::size_t index) const
{
    return layout_ids.at(index);
}

std::optional<std::size_t> query_engine::index_of(const std::string& id) const
{
    const auto found = id_index.find(id);
    if (found == id_index.cend())
    {
        return std::nullopt;
    }
    return found->second;
}

const cat::catalog& query_engine::catalog() const noexcept
{
    return cat_ref;
}

std::size_t query_engine::num_index_terms() const noexcept
{
    return by_set.size() + by_name.size() + by_clocking.size() + by_algorithm.size() + by_optimization.size() +
           by_family.size() + 2;
}

json_value page_to_json(const result_page& page)
{
    auto document = json_value::make_object();
    document.set("total", json_value{static_cast<std::uint64_t>(page.total)});
    document.set("offset", json_value{static_cast<std::uint64_t>(page.offset)});
    document.set("count", json_value{static_cast<std::uint64_t>(page.rows.size())});
    auto rows = json_value::make_array();
    for (std::size_t i = 0; i < page.rows.size(); ++i)
    {
        rows.push_back(row_to_json(*page.rows[i], page.ids[i]));
    }
    document.set("results", std::move(rows));
    const auto has_facets = !page.facets.per_set.empty() || !page.facets.per_library.empty() ||
                            !page.facets.per_clocking.empty() || !page.facets.per_algorithm.empty() ||
                            !page.facets.per_optimization.empty() || !page.facets.per_family.empty();
    if (has_facets || page.total == 0)
    {
        auto facets = json_value::make_object();
        facets.set("sets", counts_to_json(page.facets.per_set));
        facets.set("libraries", counts_to_json(page.facets.per_library));
        facets.set("clockings", counts_to_json(page.facets.per_clocking));
        facets.set("algorithms", counts_to_json(page.facets.per_algorithm));
        facets.set("optimizations", counts_to_json(page.facets.per_optimization));
        facets.set("families", counts_to_json(page.facets.per_family));
        document.set("facets", std::move(facets));
    }
    return document;
}

std::string page_json_string(const result_page& page)
{
    return page_to_json(page).dump();
}

std::vector<page_query> default_page_queries()
{
    std::vector<page_query> queries;
    // GET /layouts and its sort variants: default filter, first page
    for (const auto key : {sort_key::area, sort_key::benchmark, sort_key::algorithm, sort_key::runtime})
    {
        page_query query{};
        query.sort = key;
        queries.push_back(query);
    }
    // GET /facets: metadata only
    page_query facets{};
    facets.limit = 0;
    facets.include_facets = true;
    queries.push_back(facets);
    // GET /best: area-minimal layout per function
    page_query best{};
    best.filter.best_only = true;
    queries.push_back(best);
    return queries;
}

}  // namespace mnt::svc
