#pragma once

/// \file json.hpp
/// \brief Minimal JSON document model for the benchmark service layer: a
///        recursive-descent parser and a deterministic writer. The store
///        manifest (store.hpp) and the query wire format (query.hpp) both
///        speak this dialect; the existing one-way exporters in
///        core/json_export.hpp keep emitting text directly.
///
/// Scope: full JSON values (null, booleans, numbers, strings, arrays,
/// objects) with \uXXXX escape decoding (including surrogate pairs) to
/// UTF-8. Numbers are held as doubles — every quantity the service layer
/// persists (areas, counts, seconds) is far below 2^53, where doubles are
/// exact. Objects are kept in insertion order for faithful round-trips;
/// lookup is linear, which is fine at manifest-entry fan-out.

#include "common/types.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mnt::svc
{

/// One JSON value of any kind. Deliberately a closed value type (no
/// polymorphism): manifests and wire messages are small.
class json_value
{
public:
    enum class kind : std::uint8_t
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    using array_type = std::vector<json_value>;
    /// Insertion-ordered key/value list (manifests round-trip faithfully).
    using object_type = std::vector<std::pair<std::string, json_value>>;

    json_value() = default;  ///< null
    json_value(bool b) : value_kind{kind::boolean}, boolean_value{b} {}
    json_value(double n) : value_kind{kind::number}, number_value{n} {}
    json_value(std::uint64_t n) : value_kind{kind::number}, number_value{static_cast<double>(n)} {}
    json_value(int n) : value_kind{kind::number}, number_value{static_cast<double>(n)} {}
    json_value(std::string s) : value_kind{kind::string}, string_value{std::move(s)} {}
    json_value(const char* s) : value_kind{kind::string}, string_value{s} {}

    [[nodiscard]] static json_value make_array()
    {
        json_value v;
        v.value_kind = kind::array;
        return v;
    }

    [[nodiscard]] static json_value make_object()
    {
        json_value v;
        v.value_kind = kind::object;
        return v;
    }

    [[nodiscard]] kind type() const noexcept
    {
        return value_kind;
    }

    [[nodiscard]] bool is_null() const noexcept { return value_kind == kind::null; }
    [[nodiscard]] bool is_boolean() const noexcept { return value_kind == kind::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return value_kind == kind::number; }
    [[nodiscard]] bool is_string() const noexcept { return value_kind == kind::string; }
    [[nodiscard]] bool is_array() const noexcept { return value_kind == kind::array; }
    [[nodiscard]] bool is_object() const noexcept { return value_kind == kind::object; }

    /// Checked accessors.
    ///
    /// \throws mnt::mnt_error when the value holds a different kind
    [[nodiscard]] bool as_boolean() const;
    [[nodiscard]] double as_number() const;
    /// \throws mnt::mnt_error also when the number is negative or not integral
    [[nodiscard]] std::uint64_t as_u64() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const array_type& as_array() const;
    [[nodiscard]] const object_type& as_object() const;

    /// First member named \p key, or nullptr.
    [[nodiscard]] const json_value* find(std::string_view key) const;

    /// \throws mnt::mnt_error when \p key is absent
    [[nodiscard]] const json_value& at(std::string_view key) const;

    /// Appends to an array value (converts a null value into an array).
    void push_back(json_value element);

    /// Appends a member to an object value (converts null into an object).
    void set(std::string key, json_value element);

    /// Serializes to compact JSON with deterministic member order (insertion
    /// order) and minimal-but-round-trip number formatting.
    [[nodiscard]] std::string dump() const;

    /// Parses a complete JSON document; trailing non-whitespace is an error.
    ///
    /// \throws mnt::parse_error with a 1-based line number on malformed input
    [[nodiscard]] static json_value parse(std::string_view text);

private:
    kind value_kind{kind::null};
    bool boolean_value{false};
    double number_value{0.0};
    std::string string_value;
    array_type array_value;
    object_type object_value;
};

/// Formats a double the way the service layer's JSON writers do: integral
/// values without a fractional part, everything else with enough digits to
/// round-trip.
[[nodiscard]] std::string json_number_string(double value);

}  // namespace mnt::svc
