#pragma once

/// \file snapshot.hpp
/// \brief Immutable serving snapshots for the catalog server. A snapshot
///        freezes everything the hot read path needs — the query engine,
///        the pre-rendered JSON of the default catalog pages, the
///        /benchmarks rows and their strong ETags — into one shared,
///        never-mutated object. The server swaps the current snapshot
///        atomically when the store is regenerated (see
///        \ref mnt::svc::catalog_server::publish), so request handlers read
///        shared immutable state and never take a lock beyond one
///        shared_ptr copy; mutation happens only by replacing the whole
///        snapshot (the shared-state-vs-messaging split, not fine-grained
///        locking).
///
/// ETag derivation: every pre-rendered (and cached) JSON body carries a
/// strong validator — the 128-bit truncated SHA-256 of its exact bytes
/// (\ref mnt::svc::content_hash), the same function that addresses store
/// blobs. Two byte-identical bodies always share an ETag, any byte change
/// produces a new one, and a /download/<id> response's ETag is the id
/// itself (it already is the blob's content hash).

#include "service/query.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mnt::svc
{

/// One pre-rendered response body plus its strong validator.
struct snapshot_entry
{
    std::string body;
    /// Unquoted strong ETag (32 lowercase hex digits); the wire format adds
    /// the surrounding quotes.
    std::string etag;
};

/// Everything the server's read path needs, frozen at one store generation.
/// Immutable after \ref build_catalog_snapshot returns; shared across event
/// loops via shared_ptr.
struct catalog_snapshot
{
    /// Monotonic publish counter (0 = the snapshot built at server start).
    std::uint64_t generation{0};

    /// The engine answering dynamic queries. The shared_ptr keeps whatever
    /// owns the engine (and the catalog underneath it) alive for as long as
    /// any in-flight request still holds this snapshot.
    std::shared_ptr<const query_engine> engine;

    /// Pre-rendered GET /benchmarks document.
    snapshot_entry benchmarks;

    /// Pre-rendered default catalog pages keyed by
    /// \ref page_query::cache_key (see \ref default_page_queries).
    std::unordered_map<std::string, snapshot_entry> pages;
};

/// Renders the GET /benchmarks document: one row per benchmark function
/// with PI/PO/gate counts and the number of stored layouts. This is the
/// single rendering path — the snapshot builder calls it ahead of time and
/// byte-identity with a per-request render is therefore structural.
[[nodiscard]] std::string render_benchmarks_json(const query_engine& engine);

/// Strong ETag (unquoted) of a response body: its truncated-SHA-256
/// content hash.
[[nodiscard]] std::string make_etag(std::string_view body);

/// True when the `If-None-Match` header value \p if_none_match matches the
/// unquoted strong ETag \p etag: either the wildcard `*` or any listed
/// entity tag whose opaque value equals \p etag (a `W/` prefix is accepted
/// and ignored — for 304 reuse, weak comparison suffices).
[[nodiscard]] bool etag_matches(std::string_view if_none_match, std::string_view etag) noexcept;

/// Builds a snapshot from \p engine: renders /benchmarks and every
/// \ref default_page_queries page, derives their ETags, and stamps
/// \p generation.
[[nodiscard]] std::shared_ptr<const catalog_snapshot>
build_catalog_snapshot(std::shared_ptr<const query_engine> engine, std::uint64_t generation);

}  // namespace mnt::svc
