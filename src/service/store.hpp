#pragma once

/// \file store.hpp
/// \brief Persistent, content-addressed layout store — the on-disk half of
///        the MNT Bench platform. Where the in-memory mnt::cat::catalog dies
///        with the process, the store keeps every benchmark network (.v) and
///        generated layout (.fgl) as a content-addressed blob next to a
///        versioned JSON manifest with full provenance, and hands a fresh
///        process everything it needs to serve the website's queries again.
///
/// On-disk layout (all paths relative to the store root):
///
///     manifest.json        versioned index: networks, layouts, failures,
///                          completed cache keys (see DESIGN.md "Store")
///     blobs/<hash>.fgl     gate-level layouts, keyed by content hash
///     blobs/<hash>.v       benchmark networks, keyed by content hash
///
/// Durability and tolerance:
///
/// - **Atomic writes.** Blobs and the manifest are written to a temporary
///   file in the same directory and renamed into place, so a crash never
///   leaves a half-written file under its final name. Content addressing
///   makes blob writes idempotent: an existing blob is never rewritten.
/// - **Corruption-tolerant loading.** A damaged manifest entry, a missing or
///   truncated blob, or an unparseable document skips exactly that entry and
///   reports it as a \ref mnt::res::combo_outcome (the PR 2 outcome
///   taxonomy); everything healthy loads. A wholly unreadable manifest
///   degrades to an empty store plus a report entry instead of throwing.
///   Skipped entries are pruned (cache key dropped, mismatched blob file
///   deleted), so incremental regeneration repairs the damage on the next
///   run instead of treating the corrupt entry as cached.
/// - **Incremental regeneration.** Every layout and every completed
///   portfolio combination is indexed under a \ref cache_key;
///   generate_portfolio consults it (via portfolio_params::is_cached) and
///   skips combinations whose results already exist. Failed combinations
///   are deliberately NOT cached: a rerun retries them.

#include "core/catalog.hpp"
#include "common/resilience.hpp"
#include "network/logic_network.hpp"
#include "service/json.hpp"

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mnt::svc
{

/// Cache key of one portfolio combination for one benchmark × library:
/// `<set>/<name>|<library>|<combo>`, where `<combo>` is the combination
/// label from \ref mnt::prov::combo_label (e.g. "NPR@USE"). The key of a
/// stored layout is reconstructible from its provenance fields alone.
[[nodiscard]] std::string cache_key(const std::string& set, const std::string& name,
                                    cat::gate_library_kind library, const std::string& combo);

/// Cache key of a layout record (combo label derived from its provenance).
[[nodiscard]] std::string cache_key(const cat::layout_record& record);

/// Everything a fresh process gets back from \ref layout_store::load: the
/// reconstructed catalog, the content hash of every layout (parallel to
/// catalog.layouts(), used as the stable download id), and one outcome per
/// entry that had to be skipped.
struct store_snapshot
{
    cat::catalog catalog;
    /// Content hash (blob id) of catalog.layouts()[i].
    std::vector<std::string> layout_ids;
    /// Skipped entries: label = cache key (or blob name), kind per the
    /// outcome taxonomy (internal_error for corruption), message = detail.
    std::vector<res::combo_outcome> issues;
};

/// Outcome of folding a shard manifest into the store: how many new entries
/// each section contributed (duplicates are skipped) and the content hashes
/// of the absorbed blobs (the journal's content-addressed result ids).
struct merge_stats
{
    std::size_t networks{0};
    std::size_t layouts{0};
    std::size_t failures{0};
    std::size_t completed{0};
    std::vector<std::string> blob_ids{};
};

/// The persistent store. Not internally synchronized: one writer at a time
/// (the generation loop); concurrent readers of the written files are safe
/// because blobs are immutable and the manifest is swapped atomically.
class layout_store
{
public:
    /// Current manifest schema version. Version 2 switched the blob content
    /// address from 64-bit FNV-1a to truncated SHA-256 (collision-safe
    /// download ids); version-1 stores load as empty and are rebuilt by the
    /// next generation run.
    static constexpr std::uint64_t manifest_version = 2;

    /// Subdirectory (under the store root) where supervised workers park
    /// their per-job shard manifests until the parent merges them.
    static constexpr const char* shard_dir_name = "shards";

    /// Opens (or initializes) the store rooted at \p root. Creates the
    /// directory structure on demand and loads an existing manifest. A
    /// corrupt manifest is reported via \ref open_issues and treated as
    /// empty; a manifest from a newer schema version raises. Temp files left
    /// behind by dead writers (`*.tmp-<pid>` with no live process <pid>) are
    /// pruned, so a killed run never pollutes the next one's byte layout.
    ///
    /// \throws mnt::mnt_error when the directories cannot be created or the
    ///         manifest version is unsupported
    explicit layout_store(std::filesystem::path root);

    /// Same, but with the manifest at \p manifest_file (relative to the
    /// root) instead of manifest.json. Supervised worker processes use this
    /// to write a per-job shard manifest (`shards/job-<hash>.json`) sharing
    /// the parent's blob directory: blobs are content-addressed and
    /// idempotent, so concurrent shard writers never conflict, and the
    /// parent stays the only writer of the main manifest.
    layout_store(std::filesystem::path root, const std::filesystem::path& manifest_file);

    [[nodiscard]] const std::filesystem::path& root() const noexcept;

    /// Problems encountered while opening (corrupt manifest, invalid
    /// entries). Never grows after construction.
    [[nodiscard]] const std::vector<res::combo_outcome>& open_issues() const noexcept;

    // ------------------------------------------------------------- ingest

    /// Stores \p network as a .v blob plus a manifest entry. Idempotent per
    /// (set, name). \p family is the synthetic-family id the network was
    /// generated from (empty for curated benchmarks). Returns the blob's
    /// content hash.
    std::string put_network(const std::string& set, const std::string& name, const ntk::logic_network& network,
                            const std::string& family = {});

    /// Stores \p record's layout as an .fgl blob plus a manifest entry with
    /// full provenance. Idempotent per cache key (a duplicate is skipped).
    /// Derived metrics are taken from the embedded layout. Returns the
    /// blob's content hash.
    std::string put_layout(const cat::layout_record& record);

    /// Records a failed combination in the manifest (no blob). Failures are
    /// provenance, not cache entries: \ref contains stays false for them,
    /// and a rerun's retry replaces the previous record for the same
    /// (set, name, library, combination) instead of accumulating.
    void put_failure(const cat::failure_record& record);

    /// Marks a combination as completed-without-a-distinct-layout (e.g.
    /// exact finding no solution within budget, PLO yielding no gain), so
    /// incremental regeneration skips it too.
    void mark_completed(const std::string& key);

    /// Drops the failure record for (set, name, library, combination), if
    /// any. Resume uses this to clear a synthesized worker-crash record once
    /// the job reruns successfully. Returns true when a record was removed.
    bool remove_failure(const std::string& set, const std::string& name, const std::string& library,
                        const std::string& combination);

    /// Folds the manifest at \p path (same schema as manifest.json, e.g. a
    /// worker's shard manifest) into this store's in-memory state. Entries
    /// already present — networks by (set, name), layouts by cache key,
    /// completed markers by key — are skipped; failure records replace any
    /// existing record for the same combination. Call \ref save afterwards
    /// to persist the merged manifest.
    ///
    /// \throws mnt::mnt_error when the file is missing, unparseable, or of
    ///         an unsupported version — a shard that cannot be merged means
    ///         its job must be re-run, not silently dropped
    merge_stats merge_manifest_file(const std::filesystem::path& path);

    /// Writes the manifest atomically and durably (fsync'd file + directory).
    /// Entries are emitted in canonical sorted order, so the manifest bytes
    /// are a pure function of the content set — a resumed run that converges
    /// on the same content produces a byte-identical manifest. Blobs are
    /// already on disk at this point; a crash before save() loses manifest
    /// entries but never corrupts the store.
    ///
    /// \throws mnt::mnt_error when the manifest cannot be written
    void save();

    // ------------------------------------------------------------- lookup

    /// True when \p key identifies a stored layout or a completed marker.
    [[nodiscard]] bool contains(const std::string& key) const;

    [[nodiscard]] bool has_network(const std::string& set, const std::string& name) const;

    [[nodiscard]] std::size_t num_networks() const noexcept;
    [[nodiscard]] std::size_t num_layouts() const noexcept;
    [[nodiscard]] std::size_t num_failures() const noexcept;

    /// Path of the blob with content hash \p id (with either known
    /// extension), or nullopt when no such blob exists on disk.
    [[nodiscard]] std::optional<std::filesystem::path> blob_path(const std::string& id) const;

    // -------------------------------------------------------------- load

    /// Reconstructs the full catalog from the manifest and the blobs.
    /// Corrupt entries are skipped and reported in the snapshot's issues —
    /// and *pruned*: the entry (and its cache key) is dropped from the
    /// in-memory manifest so \ref contains no longer claims it, and a blob
    /// whose bytes no longer match its hash is deleted from disk so the next
    /// generation run rewrites it instead of being fooled by the stale file.
    store_snapshot load();

private:
    /// One manifest layout entry: layout_record metadata + blob + cache key.
    struct stored_layout
    {
        std::string set;
        std::string name;
        std::string library;
        std::string clocking;
        std::string algorithm;
        std::vector<std::string> optimizations;
        std::uint32_t width{};
        std::uint32_t height{};
        std::uint64_t area{};
        std::uint64_t gates{};
        std::uint64_t wires{};
        std::uint64_t crossings{};
        double runtime_s{};
        /// Synthetic-family id (empty for curated benchmarks). Family fields
        /// are emitted to the manifest only when non-empty, so stores without
        /// synthetic families keep their exact pre-family byte layout.
        std::string family;
        std::uint64_t family_seed{};
        std::string blob;
        std::string key;
    };

    struct stored_network
    {
        std::string set;
        std::string name;
        std::uint64_t inputs{};
        std::uint64_t outputs{};
        std::uint64_t gates{};
        std::string family;  ///< synthetic-family id, empty for curated
        std::string blob;
    };

    struct stored_failure
    {
        std::string set;
        std::string name;
        std::string library;
        std::string combination;
        std::string kind;
        std::string message;
        double elapsed_s{};
        std::uint64_t attempts{};
    };

    void load_manifest();
    merge_stats absorb_manifest(const json_value& manifest, const std::string& origin);
    [[nodiscard]] std::filesystem::path manifest_path() const;
    [[nodiscard]] std::filesystem::path blob_dir() const;

    std::filesystem::path store_root;
    std::filesystem::path manifest_file{"manifest.json"};
    std::vector<stored_network> networks;
    std::vector<stored_layout> layouts;
    std::vector<stored_failure> failures;
    std::vector<std::string> completed;  ///< completed-marker keys, in order
    std::unordered_set<std::string> keys;  ///< layout keys ∪ completed markers
    std::unordered_set<std::string> network_names;  ///< "set/name"
    std::vector<res::combo_outcome> issues;
};

/// Writes \p bytes to \p path atomically and durably: temp file in the same
/// directory, fsync of the file, rename into place, fsync of the containing
/// directory — so the entry survives both a crash mid-write (rename
/// atomicity) and power loss after the rename (directory fsync).
///
/// \throws mnt::mnt_error when the file cannot be written or renamed
void write_file_atomic(const std::filesystem::path& path, const std::string& bytes);

/// Reads a whole file into a string.
///
/// \throws mnt::mnt_error when the file cannot be opened
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

}  // namespace mnt::svc
