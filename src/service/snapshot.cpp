#include "service/snapshot.hpp"

#include "service/hash.hpp"
#include "telemetry/telemetry.hpp"

#include <map>
#include <utility>

namespace mnt::svc
{

namespace
{

[[nodiscard]] std::string_view trim(std::string_view text) noexcept
{
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    {
        text.remove_prefix(1);
    }
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
    {
        text.remove_suffix(1);
    }
    return text;
}

}  // namespace

std::string render_benchmarks_json(const query_engine& engine)
{
    const auto& cat = engine.catalog();
    std::map<std::pair<std::string, std::string>, std::size_t> layout_counts;
    for (const auto& r : cat.layouts())
    {
        ++layout_counts[{r.benchmark_set, r.benchmark_name}];
    }

    auto rows = json_value::make_array();
    for (const auto& n : cat.networks())
    {
        auto row = json_value::make_object();
        row.set("set", json_value{n.benchmark_set});
        row.set("name", json_value{n.benchmark_name});
        row.set("inputs", json_value{static_cast<std::uint64_t>(n.num_pis)});
        row.set("outputs", json_value{static_cast<std::uint64_t>(n.num_pos)});
        row.set("gates", json_value{static_cast<std::uint64_t>(n.num_gates)});
        if (!n.family.empty())
        {
            row.set("family", json_value{n.family});
        }
        const auto found = layout_counts.find({n.benchmark_set, n.benchmark_name});
        row.set("layouts", json_value{static_cast<std::uint64_t>(found != layout_counts.cend() ? found->second : 0)});
        rows.push_back(std::move(row));
    }
    auto document = json_value::make_object();
    document.set("count", json_value{static_cast<std::uint64_t>(cat.num_networks())});
    document.set("benchmarks", std::move(rows));
    return document.dump();
}

std::string make_etag(const std::string_view body)
{
    return content_hash(body);
}

bool etag_matches(const std::string_view if_none_match, const std::string_view etag) noexcept
{
    if (if_none_match.empty() || etag.empty())
    {
        return false;
    }
    if (trim(if_none_match) == "*")
    {
        return true;
    }
    // comma-separated list of entity tags, each `"opaque"` or `W/"opaque"`
    std::size_t pos = 0;
    while (pos <= if_none_match.size())
    {
        const auto comma = if_none_match.find(',', pos);
        auto token = trim(if_none_match.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                                                    : comma - pos));
        if (token.size() >= 2 && token.substr(0, 2) == "W/")
        {
            token = trim(token.substr(2));
        }
        if (token.size() >= 2 && token.front() == '"' && token.back() == '"' &&
            token.substr(1, token.size() - 2) == etag)
        {
            return true;
        }
        if (comma == std::string_view::npos)
        {
            break;
        }
        pos = comma + 1;
    }
    return false;
}

std::shared_ptr<const catalog_snapshot> build_catalog_snapshot(std::shared_ptr<const query_engine> engine,
                                                               const std::uint64_t generation)
{
    MNT_SPAN("server/build_snapshot");
    auto snapshot = std::make_shared<catalog_snapshot>();
    snapshot->generation = generation;

    snapshot->benchmarks.body = render_benchmarks_json(*engine);
    snapshot->benchmarks.etag = make_etag(snapshot->benchmarks.body);

    for (const auto& query : default_page_queries())
    {
        snapshot_entry entry{};
        entry.body = page_json_string(engine->run(query));
        entry.etag = make_etag(entry.body);
        snapshot->pages.emplace(query.cache_key(), std::move(entry));
    }

    snapshot->engine = std::move(engine);
    return snapshot;
}

}  // namespace mnt::svc
