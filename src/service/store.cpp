#include "service/store.hpp"

#include "common/provenance.hpp"
#include "common/types.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "service/hash.hpp"
#include "service/json.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <tuple>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace mnt::svc
{

namespace
{

constexpr const char* fgl_extension = ".fgl";
constexpr const char* verilog_extension = ".v";

/// An entry-level problem found while opening or loading the store, using
/// the outcome taxonomy: corruption maps to internal_error. Every issue is
/// also reported to the structured event log — store repair used to be the
/// silent path of the pipeline.
res::combo_outcome corruption(std::string label, std::string message)
{
    tel::log_event(tel::log_severity::warn, "store", "corrupt entry quarantined",
                   {{"entry", label}, {"detail", message}});
    res::combo_outcome issue{};
    issue.label = std::move(label);
    issue.kind = res::outcome_kind::internal_error;
    issue.message = std::move(message);
    issue.attempts = 1;
    return issue;
}

json_value strings_to_json(const std::vector<std::string>& values)
{
    auto array = json_value::make_array();
    for (const auto& v : values)
    {
        array.push_back(json_value{v});
    }
    return array;
}

std::vector<std::string> strings_from_json(const json_value& array)
{
    std::vector<std::string> values;
    for (const auto& element : array.as_array())
    {
        values.push_back(element.as_string());
    }
    return values;
}

/// 64-bit seeds do not survive the manifest's double-backed JSON numbers,
/// so they are stored as "0x%016llx" hex strings.
std::string hex_u64(const std::uint64_t value)
{
    char buffer[19];
    std::snprintf(buffer, sizeof buffer, "0x%016llx", static_cast<unsigned long long>(value));
    return buffer;
}

std::uint64_t u64_from_hex(const std::string& text)
{
    return std::strtoull(text.c_str(), nullptr, 16);
}

}  // namespace

std::string cache_key(const std::string& set, const std::string& name, const cat::gate_library_kind library,
                      const std::string& combo)
{
    return set + "/" + name + "|" + cat::gate_library_name(library) + "|" + combo;
}

std::string cache_key(const cat::layout_record& record)
{
    return cache_key(record.benchmark_set, record.benchmark_name, record.library,
                     prov::combo_label(record.algorithm, record.clocking, record.optimizations));
}

void write_file_atomic(const std::filesystem::path& path, const std::string& bytes)
{
    const auto temp = path.parent_path() / (path.filename().string() + ".tmp-" + std::to_string(::getpid()));
    const auto fail = [&](const std::string& what)
    {
        std::error_code ec;
        std::filesystem::remove(temp, ec);
        throw mnt_error{"store: " + what};
    };

    const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
    {
        throw mnt_error{"store: cannot create '" + temp.string() + "': " + std::strerror(errno)};
    }
    std::size_t offset = 0;
    while (offset < bytes.size())
    {
        const auto n = ::write(fd, bytes.data() + offset, bytes.size() - offset);
        if (n < 0)
        {
            if (errno == EINTR)
            {
                continue;
            }
            ::close(fd);
            fail("short write to '" + temp.string() + "': " + std::strerror(errno));
        }
        offset += static_cast<std::size_t>(n);
    }
    // the file's bytes must be durable before the rename makes them visible
    // under the final name — otherwise a power cut could surface an empty
    // file at the real path
    if (::fsync(fd) != 0)
    {
        ::close(fd);
        fail("fsync of '" + temp.string() + "' failed: " + std::strerror(errno));
    }
    ::close(fd);

    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec)
    {
        fail("cannot rename into '" + path.string() + "': " + ec.message());
    }

    // the rename itself lives in the directory — without a directory fsync a
    // power cut can forget the entry even though the data blocks survived
    const auto dir = path.parent_path().empty() ? std::filesystem::path{"."} : path.parent_path();
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0)
    {
        ::fsync(dir_fd);  // best effort: some filesystems reject directory fsync
        ::close(dir_fd);
    }
}

std::string read_file(const std::filesystem::path& path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in)
    {
        throw mnt_error{"store: cannot open '" + path.string() + "'"};
    }
    std::string bytes{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
    return bytes;
}

namespace
{

/// Removes `*.tmp-<pid>` leftovers of writers that are no longer alive. A
/// SIGKILL mid-write legitimately strands a temp file; pruning it on the
/// next open keeps the store's byte layout identical to an uninterrupted
/// run. Temps of *live* pids (concurrent shard workers) are left alone.
void prune_stale_temps(const std::filesystem::path& dir)
{
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator{dir, ec})
    {
        const auto name = entry.path().filename().string();
        const auto marker = name.rfind(".tmp-");
        if (marker == std::string::npos)
        {
            continue;
        }
        const auto pid_text = name.substr(marker + 5);
        char* end = nullptr;
        const auto pid = std::strtol(pid_text.c_str(), &end, 10);
        if (end == pid_text.c_str() || *end != '\0' || pid <= 0)
        {
            continue;
        }
        if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH)
        {
            std::error_code remove_ec;
            std::filesystem::remove(entry.path(), remove_ec);
        }
    }
}

}  // namespace

layout_store::layout_store(std::filesystem::path root) : layout_store{std::move(root), "manifest.json"}
{}

layout_store::layout_store(std::filesystem::path root, const std::filesystem::path& manifest_file_) :
        store_root{std::move(root)},
        manifest_file{manifest_file_}
{
    std::error_code ec;
    std::filesystem::create_directories(blob_dir(), ec);
    if (ec)
    {
        throw mnt_error{"store: cannot create '" + blob_dir().string() + "': " + ec.message()};
    }
    if (manifest_path().parent_path() != store_root)
    {
        std::filesystem::create_directories(manifest_path().parent_path(), ec);
        if (ec)
        {
            throw mnt_error{"store: cannot create '" + manifest_path().parent_path().string() +
                            "': " + ec.message()};
        }
    }
    prune_stale_temps(store_root);
    prune_stale_temps(blob_dir());
    load_manifest();
}

const std::filesystem::path& layout_store::root() const noexcept
{
    return store_root;
}

const std::vector<res::combo_outcome>& layout_store::open_issues() const noexcept
{
    return issues;
}

std::filesystem::path layout_store::manifest_path() const
{
    return store_root / manifest_file;
}

std::filesystem::path layout_store::blob_dir() const
{
    return store_root / "blobs";
}

void layout_store::load_manifest()
{
    if (!std::filesystem::exists(manifest_path()))
    {
        return;  // a fresh store
    }

    // any failure to read or parse the manifest, or to extract a numeric
    // version from it, degrades to an empty store; regeneration rebuilds it
    json_value manifest;
    std::uint64_t version = 0;
    try
    {
        manifest = json_value::parse(read_file(manifest_path()));
        version = manifest.at("version").as_u64();
    }
    catch (const std::exception& e)
    {
        tel::log_event(tel::log_severity::error, "store", "manifest unreadable; store loads empty",
                       {{"path", manifest_path().string()}, {"error", e.what()}});
        issues.push_back(corruption("manifest", e.what()));
        tel::count("store.load_issues");
        return;
    }
    if (version > manifest_version)
    {
        // genuinely unsupported, not corruption: refuse loudly
        tel::log_event(tel::log_severity::error, "store", "manifest version newer than supported",
                       {{"path", manifest_path().string()},
                        {"version", std::to_string(version)},
                        {"supported", std::to_string(manifest_version)}});
        throw mnt_error{"store: manifest version " + std::to_string(version) +
                        " is newer than supported version " + std::to_string(manifest_version)};
    }
    if (version < manifest_version)
    {
        // version 1 addressed blobs by 64-bit FNV-1a; every blob reference
        // would fail the hash cross-check, so treat the store as empty and
        // let regeneration rewrite it under the current format
        tel::log_event(tel::log_severity::warn, "store", "manifest version predates blob-address format",
                       {{"path", manifest_path().string()},
                        {"version", std::to_string(version)},
                        {"supported", std::to_string(manifest_version)}});
        issues.push_back(corruption("manifest", "manifest version " + std::to_string(version) +
                                                    " predates the current blob-address format; "
                                                    "treating the store as empty"));
        tel::count("store.load_issues");
        return;
    }

    absorb_manifest(manifest, "manifest");
}

merge_stats layout_store::absorb_manifest(const json_value& manifest, const std::string& origin)
{
    merge_stats stats{};
    if (const auto* networks_json = manifest.find("networks"); networks_json != nullptr)
    {
        for (const auto& entry : networks_json->as_array())
        {
            try
            {
                stored_network n{};
                n.set = entry.at("set").as_string();
                n.name = entry.at("name").as_string();
                n.inputs = entry.at("inputs").as_u64();
                n.outputs = entry.at("outputs").as_u64();
                n.gates = entry.at("gates").as_u64();
                if (const auto* family_json = entry.find("family"); family_json != nullptr)
                {
                    n.family = family_json->as_string();
                }
                n.blob = entry.at("blob").as_string();
                if (!network_names.insert(n.set + "/" + n.name).second)
                {
                    continue;  // already present (shard duplicated a network)
                }
                stats.blob_ids.push_back(n.blob);
                networks.push_back(std::move(n));
                ++stats.networks;
            }
            catch (const std::exception& e)
            {
                issues.push_back(corruption(origin + " networks entry", e.what()));
                tel::count("store.load_issues");
            }
        }
    }
    if (const auto* layouts_json = manifest.find("layouts"); layouts_json != nullptr)
    {
        for (const auto& entry : layouts_json->as_array())
        {
            try
            {
                stored_layout l{};
                l.set = entry.at("set").as_string();
                l.name = entry.at("name").as_string();
                l.library = entry.at("library").as_string();
                l.clocking = entry.at("clocking").as_string();
                l.algorithm = entry.at("algorithm").as_string();
                l.optimizations = strings_from_json(entry.at("optimizations"));
                l.width = static_cast<std::uint32_t>(entry.at("width").as_u64());
                l.height = static_cast<std::uint32_t>(entry.at("height").as_u64());
                l.area = entry.at("area").as_u64();
                l.gates = entry.at("gates").as_u64();
                l.wires = entry.at("wires").as_u64();
                l.crossings = entry.at("crossings").as_u64();
                l.runtime_s = entry.at("runtime_s").as_number();
                if (const auto* family_json = entry.find("family"); family_json != nullptr)
                {
                    l.family = family_json->as_string();
                }
                if (const auto* seed_json = entry.find("family_seed"); seed_json != nullptr)
                {
                    l.family_seed = u64_from_hex(seed_json->as_string());
                }
                l.blob = entry.at("blob").as_string();
                l.key = entry.at("cache_key").as_string();
                if (!keys.insert(l.key).second)
                {
                    continue;  // layout or completed marker already known
                }
                stats.blob_ids.push_back(l.blob);
                layouts.push_back(std::move(l));
                ++stats.layouts;
            }
            catch (const std::exception& e)
            {
                issues.push_back(corruption(origin + " layouts entry", e.what()));
                tel::count("store.load_issues");
            }
        }
    }
    if (const auto* failures_json = manifest.find("failures"); failures_json != nullptr)
    {
        for (const auto& entry : failures_json->as_array())
        {
            try
            {
                stored_failure f{};
                f.set = entry.at("set").as_string();
                f.name = entry.at("name").as_string();
                f.library = entry.at("library").as_string();
                f.combination = entry.at("combination").as_string();
                f.kind = entry.at("kind").as_string();
                f.message = entry.at("message").as_string();
                f.elapsed_s = entry.at("elapsed_s").as_number();
                f.attempts = entry.at("attempts").as_u64();
                // replace-by-combination, like put_failure: a rerun's result
                // supersedes the previous record instead of accumulating
                auto replaced = false;
                for (auto& existing : failures)
                {
                    if (existing.set == f.set && existing.name == f.name && existing.library == f.library &&
                        existing.combination == f.combination)
                    {
                        existing = std::move(f);
                        replaced = true;
                        break;
                    }
                }
                if (!replaced)
                {
                    failures.push_back(std::move(f));
                }
                ++stats.failures;
            }
            catch (const std::exception& e)
            {
                issues.push_back(corruption(origin + " failures entry", e.what()));
                tel::count("store.load_issues");
            }
        }
    }
    if (const auto* completed_json = manifest.find("completed"); completed_json != nullptr)
    {
        try
        {
            for (auto& key : strings_from_json(*completed_json))
            {
                if (keys.insert(key).second)
                {
                    completed.push_back(std::move(key));
                    ++stats.completed;
                }
            }
        }
        catch (const std::exception& e)
        {
            issues.push_back(corruption(origin + " completed list", e.what()));
            tel::count("store.load_issues");
        }
    }
    return stats;
}

merge_stats layout_store::merge_manifest_file(const std::filesystem::path& path)
{
    json_value manifest;
    std::uint64_t version = 0;
    try
    {
        manifest = json_value::parse(read_file(path));
        version = manifest.at("version").as_u64();
    }
    catch (const std::exception& e)
    {
        throw mnt_error{"store: cannot merge shard manifest '" + path.string() + "': " + e.what()};
    }
    if (version != manifest_version)
    {
        throw mnt_error{"store: shard manifest '" + path.string() + "' has version " + std::to_string(version) +
                        ", expected " + std::to_string(manifest_version)};
    }
    auto stats = absorb_manifest(manifest, "shard " + path.filename().string());
    tel::count("store.shard_merges");
    return stats;
}

std::string layout_store::put_network(const std::string& set, const std::string& name,
                                      const ntk::logic_network& network, const std::string& family)
{
    if (has_network(set, name))
    {
        for (const auto& n : networks)
        {
            if (n.set == set && n.name == name)
            {
                return n.blob;
            }
        }
    }
    // primitives style round-trips exactly through read_verilog
    const auto bytes = io::write_verilog_string(network, io::verilog_style::primitives);
    const auto hash = content_hash(bytes);
    const auto path = blob_dir() / (hash + verilog_extension);
    if (!std::filesystem::exists(path))
    {
        write_file_atomic(path, bytes);
        tel::count("store.blobs_written");
    }
    stored_network n{};
    n.set = set;
    n.name = name;
    n.inputs = network.num_pis();
    n.outputs = network.num_pos();
    n.gates = network.num_gates();
    n.family = family;
    n.blob = hash;
    network_names.insert(set + "/" + name);
    networks.push_back(std::move(n));
    tel::count("store.networks_written");
    return hash;
}

std::string layout_store::put_layout(const cat::layout_record& record)
{
    auto key = cache_key(record);
    if (keys.count(key) != 0)
    {
        for (const auto& l : layouts)
        {
            if (l.key == key)
            {
                return l.blob;
            }
        }
        return {};  // key held by a completed marker only: nothing stored
    }
    const auto bytes = io::write_fgl_string(record.layout);
    const auto hash = content_hash(bytes);
    const auto path = blob_dir() / (hash + fgl_extension);
    if (!std::filesystem::exists(path))
    {
        write_file_atomic(path, bytes);
        tel::count("store.blobs_written");
    }
    stored_layout l{};
    l.set = record.benchmark_set;
    l.name = record.benchmark_name;
    l.library = cat::gate_library_name(record.library);
    l.clocking = record.clocking;
    l.algorithm = record.algorithm;
    l.optimizations = record.optimizations;
    l.width = record.layout.width();
    l.height = record.layout.height();
    l.area = record.layout.area();
    l.gates = record.layout.num_gates();
    l.wires = record.layout.num_wires();
    l.crossings = record.layout.num_crossings();
    l.runtime_s = record.runtime;
    l.family = record.family;
    l.family_seed = record.family_seed;
    l.blob = hash;
    l.key = key;
    keys.insert(std::move(key));
    layouts.push_back(std::move(l));
    tel::count("store.layouts_written");
    return hash;
}

void layout_store::put_failure(const cat::failure_record& record)
{
    stored_failure f{};
    f.set = record.benchmark_set;
    f.name = record.benchmark_name;
    f.library = cat::gate_library_name(record.library);
    f.combination = record.combination;
    f.kind = record.kind;
    f.message = record.message;
    f.elapsed_s = record.elapsed_s;
    f.attempts = record.attempts;
    // one record per combination: a rerun's retry replaces the old entry
    // instead of accumulating duplicates in the manifest
    for (auto& existing : failures)
    {
        if (existing.set == f.set && existing.name == f.name && existing.library == f.library &&
            existing.combination == f.combination)
        {
            existing = std::move(f);
            return;
        }
    }
    failures.push_back(std::move(f));
    tel::count("store.failures_written");
}

void layout_store::mark_completed(const std::string& key)
{
    if (keys.insert(key).second)
    {
        completed.push_back(key);
    }
}

bool layout_store::remove_failure(const std::string& set, const std::string& name, const std::string& library,
                                  const std::string& combination)
{
    for (auto it = failures.begin(); it != failures.end(); ++it)
    {
        if (it->set == set && it->name == name && it->library == library && it->combination == combination)
        {
            failures.erase(it);
            return true;
        }
    }
    return false;
}

void layout_store::save()
{
    // canonical order: the manifest bytes must be a pure function of the
    // content set, independent of ingestion order — a resumed run and an
    // uninterrupted one then produce byte-identical manifests
    std::sort(networks.begin(), networks.end(),
              [](const stored_network& a, const stored_network& b)
              { return std::tie(a.set, a.name) < std::tie(b.set, b.name); });
    std::sort(layouts.begin(), layouts.end(),
              [](const stored_layout& a, const stored_layout& b) { return a.key < b.key; });
    std::sort(failures.begin(), failures.end(),
              [](const stored_failure& a, const stored_failure& b)
              {
                  return std::tie(a.set, a.name, a.library, a.combination) <
                         std::tie(b.set, b.name, b.library, b.combination);
              });
    std::sort(completed.begin(), completed.end());

    auto manifest = json_value::make_object();
    manifest.set("version", json_value{manifest_version});

    auto networks_json = json_value::make_array();
    for (const auto& n : networks)
    {
        auto entry = json_value::make_object();
        entry.set("set", json_value{n.set});
        entry.set("name", json_value{n.name});
        entry.set("inputs", json_value{n.inputs});
        entry.set("outputs", json_value{n.outputs});
        entry.set("gates", json_value{n.gates});
        if (!n.family.empty())
        {
            entry.set("family", json_value{n.family});
        }
        entry.set("blob", json_value{n.blob});
        networks_json.push_back(std::move(entry));
    }
    manifest.set("networks", std::move(networks_json));

    auto layouts_json = json_value::make_array();
    for (const auto& l : layouts)
    {
        auto entry = json_value::make_object();
        entry.set("set", json_value{l.set});
        entry.set("name", json_value{l.name});
        entry.set("library", json_value{l.library});
        entry.set("clocking", json_value{l.clocking});
        entry.set("algorithm", json_value{l.algorithm});
        entry.set("optimizations", strings_to_json(l.optimizations));
        entry.set("width", json_value{std::uint64_t{l.width}});
        entry.set("height", json_value{std::uint64_t{l.height}});
        entry.set("area", json_value{l.area});
        entry.set("gates", json_value{l.gates});
        entry.set("wires", json_value{l.wires});
        entry.set("crossings", json_value{l.crossings});
        entry.set("runtime_s", json_value{l.runtime_s});
        if (!l.family.empty())
        {
            entry.set("family", json_value{l.family});
            entry.set("family_seed", json_value{hex_u64(l.family_seed)});
        }
        entry.set("blob", json_value{l.blob});
        entry.set("cache_key", json_value{l.key});
        layouts_json.push_back(std::move(entry));
    }
    manifest.set("layouts", std::move(layouts_json));

    auto failures_json = json_value::make_array();
    for (const auto& f : failures)
    {
        auto entry = json_value::make_object();
        entry.set("set", json_value{f.set});
        entry.set("name", json_value{f.name});
        entry.set("library", json_value{f.library});
        entry.set("combination", json_value{f.combination});
        entry.set("kind", json_value{f.kind});
        entry.set("message", json_value{f.message});
        entry.set("elapsed_s", json_value{f.elapsed_s});
        entry.set("attempts", json_value{f.attempts});
        failures_json.push_back(std::move(entry));
    }
    manifest.set("failures", std::move(failures_json));
    manifest.set("completed", strings_to_json(completed));

    write_file_atomic(manifest_path(), manifest.dump() + "\n");
    tel::count("store.manifest_saves");
}

bool layout_store::contains(const std::string& key) const
{
    return keys.count(key) != 0;
}

bool layout_store::has_network(const std::string& set, const std::string& name) const
{
    return network_names.count(set + "/" + name) != 0;
}

std::size_t layout_store::num_networks() const noexcept
{
    return networks.size();
}

std::size_t layout_store::num_layouts() const noexcept
{
    return layouts.size();
}

std::size_t layout_store::num_failures() const noexcept
{
    return failures.size();
}

std::optional<std::filesystem::path> layout_store::blob_path(const std::string& id) const
{
    // ids are hex-only, so no traversal risk; reject anything else outright
    for (const char c : id)
    {
        if ((c < '0' || c > '9') && (c < 'a' || c > 'f'))
        {
            return std::nullopt;
        }
    }
    for (const char* extension : {fgl_extension, verilog_extension})
    {
        auto path = blob_dir() / (id + extension);
        if (std::filesystem::exists(path))
        {
            return path;
        }
    }
    return std::nullopt;
}

store_snapshot layout_store::load()
{
    MNT_SPAN("store/load");
    store_snapshot snapshot{};
    snapshot.issues = issues;  // carry over manifest-level problems

    const auto report = [&](std::string label, std::string message)
    {
        snapshot.issues.push_back(corruption(std::move(label), std::move(message)));
        tel::count("store.load_issues");
    };

    // a blob whose bytes no longer hash to its name is irrecoverably bad AND
    // blocks regeneration (put_* skips writing over an existing file), so it
    // is deleted; a fresh run then rewrites it under the same address
    const auto discard_blob = [&](const std::filesystem::path& path)
    {
        std::error_code ec;
        std::filesystem::remove(path, ec);
    };

    // indices of entries that failed to load; pruned below so contains() /
    // has_network() stop claiming them and regeneration reruns the combos
    std::vector<std::size_t> bad_networks;
    std::vector<std::size_t> bad_layouts;

    for (std::size_t i = 0; i < networks.size(); ++i)
    {
        const auto& n = networks[i];
        const auto path = blob_dir() / (n.blob + verilog_extension);
        try
        {
            const auto bytes = read_file(path);
            if (content_hash(bytes) != n.blob)
            {
                report("network " + n.set + "/" + n.name, "blob content does not match its hash");
                discard_blob(path);
                bad_networks.push_back(i);
                continue;
            }
            auto network = io::read_verilog_string(bytes, n.name);
            snapshot.catalog.add_network(n.set, n.name, std::move(network), n.family);
        }
        catch (const std::exception& e)
        {
            report("network " + n.set + "/" + n.name, e.what());
            bad_networks.push_back(i);
        }
    }

    for (std::size_t i = 0; i < layouts.size(); ++i)
    {
        const auto& l = layouts[i];
        const auto path = blob_dir() / (l.blob + fgl_extension);
        try
        {
            const auto bytes = read_file(path);
            if (content_hash(bytes) != l.blob)
            {
                report(l.key, "blob content does not match its hash");
                discard_blob(path);
                bad_layouts.push_back(i);
                continue;
            }
            cat::layout_record record{};
            record.benchmark_set = l.set;
            record.benchmark_name = l.name;
            record.library = cat::gate_library_from_name(l.library);
            record.clocking = l.clocking;
            record.algorithm = l.algorithm;
            record.optimizations = l.optimizations;
            record.runtime = l.runtime_s;
            record.family = l.family;
            record.family_seed = l.family_seed;
            record.layout = io::read_fgl_string(bytes);
            if (record.layout.area() != l.area || record.layout.num_gates() != l.gates ||
                record.layout.num_wires() != l.wires)
            {
                // the blob itself is sound (its hash matched) — only the
                // manifest row is wrong, so the file stays for reuse
                report(l.key, "blob metrics do not match the manifest");
                bad_layouts.push_back(i);
                continue;
            }
            snapshot.catalog.add_layout(std::move(record));
            snapshot.layout_ids.push_back(l.blob);
        }
        catch (const std::exception& e)
        {
            report(l.key, e.what());
            bad_layouts.push_back(i);
        }
    }

    // prune in reverse so the collected indices stay valid
    for (auto it = bad_layouts.rbegin(); it != bad_layouts.rend(); ++it)
    {
        keys.erase(layouts[*it].key);
        layouts.erase(layouts.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    for (auto it = bad_networks.rbegin(); it != bad_networks.rend(); ++it)
    {
        network_names.erase(networks[*it].set + "/" + networks[*it].name);
        networks.erase(networks.begin() + static_cast<std::ptrdiff_t>(*it));
    }

    for (const auto& f : failures)
    {
        try
        {
            cat::failure_record record{};
            record.benchmark_set = f.set;
            record.benchmark_name = f.name;
            record.library = cat::gate_library_from_name(f.library);
            record.combination = f.combination;
            record.kind = f.kind;
            record.message = f.message;
            record.elapsed_s = f.elapsed_s;
            record.attempts = f.attempts;
            snapshot.catalog.add_failure(std::move(record));
        }
        catch (const std::exception& e)
        {
            report("failure " + f.set + "/" + f.name + "|" + f.combination, e.what());
        }
    }

    if (tel::enabled())
    {
        tel::count("store.loads");
        tel::count("store.loaded_layouts", snapshot.catalog.num_layouts());
    }
    return snapshot;
}

}  // namespace mnt::svc
