#include "service/json.hpp"

#include "core/json_export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mnt::svc
{

namespace
{

/// Cursor over the input with line tracking for error messages.
struct parser
{
    std::string_view text;
    std::size_t pos{0};
    std::size_t line{1};

    [[nodiscard]] bool at_end() const noexcept
    {
        return pos >= text.size();
    }

    [[nodiscard]] char peek() const noexcept
    {
        return text[pos];
    }

    char take()
    {
        const char c = text[pos++];
        if (c == '\n')
        {
            ++line;
        }
        return c;
    }

    [[noreturn]] void fail(const std::string& what) const
    {
        throw parse_error{what, line};
    }

    void skip_whitespace()
    {
        while (!at_end())
        {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
            {
                break;
            }
            take();
        }
    }

    void expect(const char c)
    {
        if (at_end() || peek() != c)
        {
            fail(std::string{"expected '"} + c + "'");
        }
        take();
    }

    void expect_keyword(const std::string_view keyword)
    {
        if (text.size() - pos < keyword.size() || text.substr(pos, keyword.size()) != keyword)
        {
            fail("invalid literal");
        }
        pos += keyword.size();
    }

    /// Appends the UTF-8 encoding of \p code_point to \p out.
    void append_utf8(std::string& out, const std::uint32_t code_point)
    {
        if (code_point < 0x80)
        {
            out.push_back(static_cast<char>(code_point));
        }
        else if (code_point < 0x800)
        {
            out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
            out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
        }
        else if (code_point < 0x10000)
        {
            out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
        }
        else
        {
            out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
        }
    }

    [[nodiscard]] std::uint32_t parse_hex4()
    {
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
        {
            if (at_end())
            {
                fail("truncated \\u escape");
            }
            const char c = take();
            value <<= 4;
            if (c >= '0' && c <= '9')
            {
                value |= static_cast<std::uint32_t>(c - '0');
            }
            else if (c >= 'a' && c <= 'f')
            {
                value |= static_cast<std::uint32_t>(c - 'a' + 10);
            }
            else if (c >= 'A' && c <= 'F')
            {
                value |= static_cast<std::uint32_t>(c - 'A' + 10);
            }
            else
            {
                fail("invalid \\u escape digit");
            }
        }
        return value;
    }

    [[nodiscard]] std::string parse_string()
    {
        expect('"');
        std::string out;
        while (true)
        {
            if (at_end())
            {
                fail("unterminated string");
            }
            const char c = take();
            if (c == '"')
            {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20)
            {
                fail("raw control character in string");
            }
            if (c != '\\')
            {
                out.push_back(c);
                continue;
            }
            if (at_end())
            {
                fail("truncated escape");
            }
            const char esc = take();
            switch (esc)
            {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u':
                {
                    std::uint32_t code_point = parse_hex4();
                    if (code_point >= 0xD800 && code_point <= 0xDBFF)
                    {
                        // high surrogate: must be followed by \uDC00..\uDFFF
                        if (text.size() - pos < 2 || text[pos] != '\\' || text[pos + 1] != 'u')
                        {
                            fail("unpaired surrogate");
                        }
                        take();
                        take();
                        const auto low = parse_hex4();
                        if (low < 0xDC00 || low > 0xDFFF)
                        {
                            fail("invalid low surrogate");
                        }
                        code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
                    }
                    else if (code_point >= 0xDC00 && code_point <= 0xDFFF)
                    {
                        fail("unpaired surrogate");
                    }
                    append_utf8(out, code_point);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    [[nodiscard]] json_value parse_number()
    {
        const std::size_t start = pos;
        if (!at_end() && peek() == '-')
        {
            take();
        }
        const auto take_digits = [&]
        {
            std::size_t n = 0;
            while (!at_end() && peek() >= '0' && peek() <= '9')
            {
                take();
                ++n;
            }
            return n;
        };
        const bool leading_zero = !at_end() && peek() == '0';
        if (take_digits() == 0)
        {
            fail("invalid number");
        }
        if (leading_zero && pos - start > (text[start] == '-' ? 2U : 1U))
        {
            fail("invalid number: leading zero");
        }
        if (!at_end() && peek() == '.')
        {
            take();
            if (take_digits() == 0)
            {
                fail("invalid number: missing fraction digits");
            }
        }
        if (!at_end() && (peek() == 'e' || peek() == 'E'))
        {
            take();
            if (!at_end() && (peek() == '+' || peek() == '-'))
            {
                take();
            }
            if (take_digits() == 0)
            {
                fail("invalid number: missing exponent digits");
            }
        }
        const std::string token{text.substr(start, pos - start)};
        return json_value{std::strtod(token.c_str(), nullptr)};
    }

    [[nodiscard]] json_value parse_value(const std::size_t depth)
    {
        if (depth > 64)
        {
            fail("nesting too deep");
        }
        skip_whitespace();
        if (at_end())
        {
            fail("unexpected end of document");
        }
        const char c = peek();
        switch (c)
        {
            case 'n': expect_keyword("null"); return json_value{};
            case 't': expect_keyword("true"); return json_value{true};
            case 'f': expect_keyword("false"); return json_value{false};
            case '"': return json_value{parse_string()};
            case '[':
            {
                take();
                auto array = json_value::make_array();
                skip_whitespace();
                if (!at_end() && peek() == ']')
                {
                    take();
                    return array;
                }
                while (true)
                {
                    array.push_back(parse_value(depth + 1));
                    skip_whitespace();
                    if (at_end())
                    {
                        fail("unterminated array");
                    }
                    const char sep = take();
                    if (sep == ']')
                    {
                        return array;
                    }
                    if (sep != ',')
                    {
                        fail("expected ',' or ']'");
                    }
                }
            }
            case '{':
            {
                take();
                auto object = json_value::make_object();
                skip_whitespace();
                if (!at_end() && peek() == '}')
                {
                    take();
                    return object;
                }
                while (true)
                {
                    skip_whitespace();
                    auto key = parse_string();
                    skip_whitespace();
                    expect(':');
                    object.set(std::move(key), parse_value(depth + 1));
                    skip_whitespace();
                    if (at_end())
                    {
                        fail("unterminated object");
                    }
                    const char sep = take();
                    if (sep == '}')
                    {
                        return object;
                    }
                    if (sep != ',')
                    {
                        fail("expected ',' or '}'");
                    }
                }
            }
            default:
                if (c == '-' || (c >= '0' && c <= '9'))
                {
                    return parse_number();
                }
                fail("unexpected character");
        }
    }
};

void dump_value(const json_value& value, std::string& out)
{
    switch (value.type())
    {
        case json_value::kind::null: out += "null"; break;
        case json_value::kind::boolean: out += value.as_boolean() ? "true" : "false"; break;
        case json_value::kind::number: out += json_number_string(value.as_number()); break;
        case json_value::kind::string:
            out.push_back('"');
            out += cat::json_escape(value.as_string());
            out.push_back('"');
            break;
        case json_value::kind::array:
        {
            out.push_back('[');
            bool first = true;
            for (const auto& element : value.as_array())
            {
                if (!first)
                {
                    out.push_back(',');
                }
                first = false;
                dump_value(element, out);
            }
            out.push_back(']');
            break;
        }
        case json_value::kind::object:
        {
            out.push_back('{');
            bool first = true;
            for (const auto& [key, element] : value.as_object())
            {
                if (!first)
                {
                    out.push_back(',');
                }
                first = false;
                out.push_back('"');
                out += cat::json_escape(key);
                out += "\":";
                dump_value(element, out);
            }
            out.push_back('}');
            break;
        }
    }
}

}  // namespace

std::string json_number_string(const double value)
{
    if (std::isfinite(value) && value == std::floor(value) && std::fabs(value) < 1e15)
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    if (!std::isfinite(value))
    {
        // JSON has no Infinity/NaN; null is the conventional stand-in
        return "null";
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    // trim to the shortest representation that round-trips
    for (int precision = 1; precision < 17; ++precision)
    {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
        if (std::strtod(shorter, nullptr) == value)
        {
            return shorter;
        }
    }
    return buffer;
}

bool json_value::as_boolean() const
{
    if (value_kind != kind::boolean)
    {
        throw mnt_error{"json: value is not a boolean"};
    }
    return boolean_value;
}

double json_value::as_number() const
{
    if (value_kind != kind::number)
    {
        throw mnt_error{"json: value is not a number"};
    }
    return number_value;
}

std::uint64_t json_value::as_u64() const
{
    const auto n = as_number();
    if (n < 0.0 || n != std::floor(n) || n > 9.007199254740992e15)
    {
        throw mnt_error{"json: value is not an unsigned integer"};
    }
    return static_cast<std::uint64_t>(n);
}

const std::string& json_value::as_string() const
{
    if (value_kind != kind::string)
    {
        throw mnt_error{"json: value is not a string"};
    }
    return string_value;
}

const json_value::array_type& json_value::as_array() const
{
    if (value_kind != kind::array)
    {
        throw mnt_error{"json: value is not an array"};
    }
    return array_value;
}

const json_value::object_type& json_value::as_object() const
{
    if (value_kind != kind::object)
    {
        throw mnt_error{"json: value is not an object"};
    }
    return object_value;
}

const json_value* json_value::find(const std::string_view key) const
{
    if (value_kind != kind::object)
    {
        return nullptr;
    }
    for (const auto& [name, element] : object_value)
    {
        if (name == key)
        {
            return &element;
        }
    }
    return nullptr;
}

const json_value& json_value::at(const std::string_view key) const
{
    const auto* found = find(key);
    if (found == nullptr)
    {
        throw mnt_error{"json: missing member '" + std::string{key} + "'"};
    }
    return *found;
}

void json_value::push_back(json_value element)
{
    if (value_kind == kind::null)
    {
        value_kind = kind::array;
    }
    if (value_kind != kind::array)
    {
        throw mnt_error{"json: push_back on a non-array value"};
    }
    array_value.push_back(std::move(element));
}

void json_value::set(std::string key, json_value element)
{
    if (value_kind == kind::null)
    {
        value_kind = kind::object;
    }
    if (value_kind != kind::object)
    {
        throw mnt_error{"json: set on a non-object value"};
    }
    object_value.emplace_back(std::move(key), std::move(element));
}

std::string json_value::dump() const
{
    std::string out;
    dump_value(*this, out);
    return out;
}

json_value json_value::parse(const std::string_view text)
{
    parser p{text};
    auto value = p.parse_value(0);
    p.skip_whitespace();
    if (!p.at_end())
    {
        p.fail("trailing characters after document");
    }
    return value;
}

}  // namespace mnt::svc
