#pragma once

/// \file journal.hpp
/// \brief Append-only, fsync'd JSONL run journal for resumable regeneration.
///
/// Every regeneration run writes a redo log next to the store manifest: one
/// JSON object per line, appended with a single write() and fsync'd before
/// the writer proceeds. Because the manifest itself is made durable *before*
/// a job's `job_done` record lands, replaying the journal after a kill at any
/// byte offset yields a consistent picture: jobs marked done have all their
/// results in the store, everything else is safely re-runnable. The reader
/// side (journal_replay) is torn-tail tolerant — a half-written final line is
/// exactly what a SIGKILL mid-append leaves behind and is silently ignored.
///
/// Record vocabulary (the `"event"` member):
///   run_start    {ts, jobs, config}        a regeneration began
///   job_start    {ts, job}                 job entered the in-flight set
///   job_done     {ts, job, layouts, failures, completed, results[]}
///   job_crashed  {ts, job, state, signal, exit_code, detail}
///   checkpoint   {ts, reason}              graceful SIGTERM/SIGINT mark
///   run_end      {ts, jobs_run, jobs_crashed}
///
/// Fault-injection kill-points for the crash-recovery property suite:
/// `MNT_FAULT_INJECT=journal.kill_before=N` SIGKILLs the process immediately
/// before the N-th journal append, `journal.kill_after=N` immediately after
/// the N-th append+fsync — bracketing every durability boundary of a run.

#include "service/json.hpp"

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace mnt::svc
{

/// Append-side handle on a run journal. Thread-safe: appends are serialized
/// by an internal mutex, each record is a single write() + fsync so records
/// are never interleaved and are durable once append() returns.
class run_journal
{
public:
    /// The journal's on-disk name inside the store directory.
    static constexpr const char* default_filename = "journal.jsonl";

    /// Opens (creating if absent) the journal at \p path for appending.
    ///
    /// \throws mnt_error when the file cannot be opened
    explicit run_journal(const std::filesystem::path& path);

    run_journal(const run_journal&) = delete;
    run_journal& operator=(const run_journal&) = delete;

    ~run_journal();

    /// Journal location on disk.
    [[nodiscard]] const std::filesystem::path& path() const noexcept
    {
        return journal_path;
    }

    /// Records the beginning of a run over \p jobs total jobs; \p config is a
    /// free-form description of the options (for humans and debugging).
    void run_start(std::uint64_t jobs, const std::string& config);

    /// Marks \p job in-flight. A job that has a start but no matching done
    /// record is re-queued on resume.
    void job_start(const std::string& job);

    /// Marks \p job complete. MUST only be called after the store manifest
    /// holding the job's results has been made durable — that ordering is
    /// what makes replay sound. \p results lists the content-addressed ids
    /// the job produced.
    void job_done(const std::string& job, std::uint64_t layouts, std::uint64_t failures, std::uint64_t completed,
                  const std::vector<std::string>& results);

    /// Records that \p job's worker died (crash/hang/spawn failure).
    /// Crashed jobs are re-queued on resume, like in-flight ones.
    void job_crashed(const std::string& job, const std::string& state, int signal, int exit_code,
                     const std::string& detail);

    /// Graceful-interrupt marker (SIGTERM/SIGINT checkpoint).
    void checkpoint(const std::string& reason);

    /// Records the end of a complete (or cancelled-but-checkpointed) run.
    void run_end(std::uint64_t jobs_run, std::uint64_t jobs_crashed);

private:
    void append(json_value record);

    std::filesystem::path journal_path;
    int fd{-1};
    std::mutex mutex;
};

/// Replay of an existing journal: which jobs completed, which crashed, and
/// which were in flight when the previous process died.
struct journal_replay
{
    /// Jobs with a durable job_done record — skipped on resume.
    std::set<std::string> done{};
    /// Jobs whose worker crashed — re-run on resume.
    std::set<std::string> crashed{};
    /// Jobs started but neither done nor crashed — the kill window; re-run.
    std::set<std::string> in_flight{};
    /// Total well-formed records read.
    std::uint64_t lines{0};
    /// Malformed lines *before* the final one (the final line may legally be
    /// torn by a kill; mid-file corruption is counted here and logged).
    std::uint64_t malformed_lines{0};
    /// config string from the most recent run_start, if any.
    std::string config{};
    /// True when the journal ends without a run_end record (the previous run
    /// was killed or checkpointed mid-way).
    bool interrupted{false};

    /// Reads and replays \p path. A missing file replays as empty. Torn or
    /// malformed lines never throw — resumability must survive exactly the
    /// corruption a kill produces.
    [[nodiscard]] static journal_replay replay(const std::filesystem::path& path);
};

}  // namespace mnt::svc
