#include "service/journal.hpp"

#include "common/resilience.hpp"
#include "common/types.hpp"
#include "telemetry/eventlog.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace mnt::svc
{

namespace
{

double wall_now_s() noexcept
{
    return std::chrono::duration<double>(std::chrono::system_clock::now().time_since_epoch()).count();
}

/// The crash-recovery property suite plants `journal.kill_before=N` /
/// `journal.kill_after=N` to SIGKILL the process at exact durability
/// boundaries. SIGKILL (not abort/exit) so no destructor, flush, or atexit
/// handler can tidy up — resume must cope with the rawest possible state.
void maybe_kill(const char* site) noexcept
{
    if (MNT_FAULT_FIRES(site))
    {
        ::kill(::getpid(), SIGKILL);
    }
}

}  // namespace

run_journal::run_journal(const std::filesystem::path& path) : journal_path{path}
{
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
    {
        throw mnt_error{"cannot open run journal '" + path.string() + "': " + std::strerror(errno)};
    }
}

run_journal::~run_journal()
{
    if (fd >= 0)
    {
        ::close(fd);
    }
}

void run_journal::append(json_value record)
{
    record.set("ts", json_value{wall_now_s()});
    auto line = record.dump();
    line.push_back('\n');

    const std::lock_guard<std::mutex> lock{mutex};
    maybe_kill("journal.kill_before");
    std::size_t offset = 0;
    while (offset < line.size())
    {
        const auto n = ::write(fd, line.data() + offset, line.size() - offset);
        if (n < 0)
        {
            if (errno == EINTR)
            {
                continue;
            }
            throw mnt_error{"journal append failed: " + std::string{std::strerror(errno)}};
        }
        offset += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0)
    {
        throw mnt_error{"journal fsync failed: " + std::string{std::strerror(errno)}};
    }
    maybe_kill("journal.kill_after");
}

void run_journal::run_start(const std::uint64_t jobs, const std::string& config)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"run_start"});
    record.set("jobs", json_value{jobs});
    record.set("config", json_value{config});
    append(std::move(record));
}

void run_journal::job_start(const std::string& job)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"job_start"});
    record.set("job", json_value{job});
    append(std::move(record));
}

void run_journal::job_done(const std::string& job, const std::uint64_t layouts, const std::uint64_t failures,
                           const std::uint64_t completed, const std::vector<std::string>& results)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"job_done"});
    record.set("job", json_value{job});
    record.set("layouts", json_value{layouts});
    record.set("failures", json_value{failures});
    record.set("completed", json_value{completed});
    auto ids = json_value::make_array();
    for (const auto& id : results)
    {
        ids.push_back(json_value{id});
    }
    record.set("results", std::move(ids));
    append(std::move(record));
}

void run_journal::job_crashed(const std::string& job, const std::string& state, const int signal,
                              const int exit_code, const std::string& detail)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"job_crashed"});
    record.set("job", json_value{job});
    record.set("state", json_value{state});
    record.set("signal", json_value{signal});
    record.set("exit_code", json_value{exit_code});
    record.set("detail", json_value{detail});
    append(std::move(record));
}

void run_journal::checkpoint(const std::string& reason)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"checkpoint"});
    record.set("reason", json_value{reason});
    append(std::move(record));
}

void run_journal::run_end(const std::uint64_t jobs_run, const std::uint64_t jobs_crashed)
{
    auto record = json_value::make_object();
    record.set("event", json_value{"run_end"});
    record.set("jobs_run", json_value{jobs_run});
    record.set("jobs_crashed", json_value{jobs_crashed});
    append(std::move(record));
}

journal_replay journal_replay::replay(const std::filesystem::path& path)
{
    journal_replay replay{};
    std::ifstream in{path, std::ios::binary};
    if (!in)
    {
        return replay;  // no journal: nothing to resume
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto text = buffer.str();

    // split into lines ourselves so a torn final line (no trailing newline,
    // or garbage after the last fsync'd record) is identifiable as such
    std::size_t begin = 0;
    std::vector<std::pair<std::string_view, bool>> lines;  // text, newline-terminated
    while (begin < text.size())
    {
        const auto end = text.find('\n', begin);
        if (end == std::string::npos)
        {
            lines.emplace_back(std::string_view{text}.substr(begin), false);
            break;
        }
        lines.emplace_back(std::string_view{text}.substr(begin, end - begin), true);
        begin = end + 1;
    }

    for (std::size_t i = 0; i < lines.size(); ++i)
    {
        const auto [line, terminated] = lines[i];
        const bool last = i + 1 == lines.size();
        if (line.empty())
        {
            continue;
        }
        json_value record;
        try
        {
            record = json_value::parse(line);
            if (!record.is_object())
            {
                throw mnt_error{"journal record is not an object"};
            }
        }
        catch (const std::exception& e)
        {
            if (last && !terminated)
            {
                // expected kill artifact: the final append was torn mid-write
                break;
            }
            ++replay.malformed_lines;
            tel::log_event(tel::log_severity::warn, "journal", "skipping malformed journal record",
                           {{"path", path.string()}, {"line", std::to_string(i + 1)}, {"error", e.what()}});
            continue;
        }

        const auto* event = record.find("event");
        if (event == nullptr || !event->is_string())
        {
            ++replay.malformed_lines;
            continue;
        }
        const auto& kind = event->as_string();
        ++replay.lines;
        replay.interrupted = kind != "run_end";
        try
        {
            if (kind == "run_start")
            {
                if (const auto* config = record.find("config"); config != nullptr && config->is_string())
                {
                    replay.config = config->as_string();
                }
            }
            else if (kind == "job_start")
            {
                replay.in_flight.insert(record.at("job").as_string());
            }
            else if (kind == "job_done")
            {
                const auto& job = record.at("job").as_string();
                replay.in_flight.erase(job);
                replay.crashed.erase(job);
                replay.done.insert(job);
            }
            else if (kind == "job_crashed")
            {
                const auto& job = record.at("job").as_string();
                replay.in_flight.erase(job);
                replay.crashed.insert(job);
            }
            // checkpoint / run_end / unknown future events carry no job state
        }
        catch (const std::exception& e)
        {
            ++replay.malformed_lines;
            tel::log_event(tel::log_severity::warn, "journal", "journal record missing required member",
                           {{"path", path.string()}, {"event", kind}, {"error", e.what()}});
        }
    }
    return replay;
}

}  // namespace mnt::svc
