#pragma once

/// \file server.hpp
/// \brief Minimal HTTP/1.1 catalog server over POSIX sockets — the serving
///        half of the MNT Bench platform. A fixed worker-thread pool answers
///        the website's Figure 1 queries from the \ref query_engine, streams
///        stored .fgl layouts by content hash, and keeps an LRU cache of
///        rendered responses keyed by the normalized query.
///
/// Endpoints (all responses are JSON unless noted):
///
///     GET  /healthz           liveness probe (status, layouts, uptime, version)
///     GET  /metrics           Prometheus text exposition of the telemetry
///                             registry (text/plain), incl. per-route request
///                             latency histograms
///     GET  /statz             operational snapshot: uptime, build provenance,
///                             request counts, per-route latency quantiles,
///                             store stats, event-log counters
///     GET  /benchmarks        benchmark sets and functions with layout counts
///     GET  /layouts?...       facet query → result page (see query.hpp for
///                             the query-string keys and the page format)
///     POST /layouts           same, query as a JSON body
///     GET  /facets?...        facet histograms only (no rows)
///     GET  /best?...          area-minimal layout per function (best_only
///                             forced on)
///     GET  /download/<id>     the stored .fgl blob (application/xml)
///
/// Design constraints:
///
/// - **Deliberately minimal HTTP.** HTTP/1.1, `Connection: close` on every
///   response, no keep-alive, no chunked encoding, no TLS. The server fronts
///   a read-only in-memory index; one short-lived connection per request
///   keeps the worker pool trivially correct.
/// - **Read path is lock-free.** The engine and catalog are immutable while
///   the server runs, so worker threads answer queries without shared-state
///   locks; only the response cache takes a mutex.
/// - **Bounded work per request.** Request size is capped
///   (server_options::max_request_bytes), socket reads carry a timeout
///   derived from the per-request deadline (PR 2 \ref mnt::res::deadline_clock),
///   and an expired deadline yields 408 instead of an unbounded stall.
/// - **Graceful shutdown.** stop() closes the listening socket, drains the
///   connection queue, joins every worker and only then returns; in-flight
///   requests complete normally.

#include "core/filters.hpp"
#include "service/query.hpp"
#include "service/store.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mnt::svc
{

/// Server configuration.
struct server_options
{
    /// Bind address; the loopback default keeps the benchmark service
    /// private unless explicitly exposed.
    std::string host{"127.0.0.1"};

    /// TCP port; 0 picks an ephemeral port (query \ref catalog_server::port
    /// after start()).
    std::uint16_t port{0};

    /// Worker threads handling accepted connections.
    std::size_t threads{4};

    /// Response-cache capacity in entries (0 disables the cache).
    std::size_t cache_capacity{128};

    /// Per-request deadline in seconds (read + handle); expiry yields 408.
    double request_deadline_s{10.0};

    /// Hard cap on the request head + body size.
    std::size_t max_request_bytes{1U << 20U};
};

/// A parsed request, decoupled from the socket so the routing logic is
/// testable without network I/O (see \ref catalog_server::handle).
struct http_request
{
    std::string method;  ///< "GET", "POST", ...
    std::string path;    ///< decoded path, e.g. "/layouts"
    std::string query;   ///< raw query string (no leading '?')
    std::string body;
};

/// A response ready for serialization.
struct http_response
{
    int status{200};
    std::string content_type{"application/json"};
    std::string body;
};

/// Outcome of \ref parse_http_request.
enum class http_parse_status : std::uint8_t
{
    ok,          ///< a complete request was parsed
    incomplete,  ///< valid so far, but more bytes are needed
    malformed,   ///< the bytes can never become a valid request
    too_large    ///< head or declared body exceeds the size cap
};

/// Result of parsing one request from a byte prefix.
struct http_parse_result
{
    http_parse_status status{http_parse_status::incomplete};

    /// The parsed request; only meaningful when status == ok.
    http_request request;

    /// Bytes consumed by the request (head + declared body) when status ==
    /// ok; 0 otherwise.
    std::size_t consumed{0};
};

/// Parses an HTTP/1.1 request (request line, headers — of which only
/// Content-Length is interpreted — and body) from \p bytes. Pure function of
/// its inputs: the socket read loop feeds it growing prefixes until the
/// status leaves `incomplete`, and the fuzzer and property tests drive it
/// with arbitrary byte-streams directly. Never throws; any input yields one
/// of the four statuses.
[[nodiscard]] http_parse_result parse_http_request(std::string_view bytes, std::size_t max_bytes);

/// Thread-safe LRU cache of rendered response bodies keyed by the
/// normalized query (\ref page_query::cache_key).
class response_cache
{
public:
    explicit response_cache(std::size_t capacity);

    /// Returns the cached body and refreshes its recency.
    [[nodiscard]] std::optional<std::string> get(const std::string& key);

    /// Inserts (or refreshes) \p body, evicting the least recently used
    /// entry at capacity. No-op when the cache is disabled.
    void put(const std::string& key, const std::string& body);

    [[nodiscard]] std::size_t size() const;

private:
    using entry_list = std::list<std::pair<std::string, std::string>>;

    mutable std::mutex mutex;
    std::size_t capacity;
    entry_list entries;  ///< front = most recently used
    std::unordered_map<std::string, entry_list::iterator> index;
};

/// The catalog server. The engine (and the catalog it references) must
/// outlive the server and stay unmodified while it runs.
class catalog_server
{
public:
    explicit catalog_server(const query_engine& engine, server_options options = {});

    /// Serve /download/<id> from \p store's blobs instead of re-serializing
    /// layouts in memory. The store must outlive the server.
    void attach_store(const layout_store* store) noexcept;

    /// Binds, listens and launches the worker pool.
    ///
    /// \throws mnt::mnt_error when the socket cannot be bound
    void start();

    /// Graceful shutdown: stops accepting, drains queued connections, joins
    /// all workers. Idempotent; also invoked by the destructor.
    void stop();

    ~catalog_server();

    catalog_server(const catalog_server&) = delete;
    catalog_server& operator=(const catalog_server&) = delete;

    /// Actual bound port (resolves port 0 after start()).
    [[nodiscard]] std::uint16_t port() const noexcept;

    [[nodiscard]] bool running() const noexcept;

    /// Routes one request — the full handler minus the socket layer, used
    /// directly by tests. \p deadline bounds query execution; expiry yields
    /// a 408 response.
    [[nodiscard]] http_response handle(const http_request& request,
                                       const res::deadline_clock& deadline = res::deadline_clock::unbounded());

private:
    void accept_loop();
    void worker_loop();
    void serve_connection(int fd);

    [[nodiscard]] http_response route(const http_request& request, const res::deadline_clock& deadline);
    [[nodiscard]] http_response page_response(const page_query& query);
    [[nodiscard]] http_response benchmarks_response();
    [[nodiscard]] http_response download_response(const std::string& id);
    [[nodiscard]] http_response healthz_response();
    [[nodiscard]] http_response statz_response();

    /// Seconds since this server object was constructed.
    [[nodiscard]] double uptime_s() const noexcept;

    /// Bounded-cardinality route label for the per-route latency histograms:
    /// known routes verbatim, every /download/<id> collapsed to "/download",
    /// anything else to "other" — a hostile client scanning random paths
    /// must not mint unbounded metric series.
    [[nodiscard]] static std::string route_key(const std::string& path);

    /// True iff \p id is exactly 32 lowercase hex digits — the only id shape
    /// \ref layout_store and \ref query_engine ever mint.
    [[nodiscard]] static bool is_valid_blob_id(const std::string& id) noexcept;

    const query_engine& engine;
    server_options options;
    const layout_store* store{nullptr};
    response_cache cache;
    const std::chrono::steady_clock::time_point started_at{std::chrono::steady_clock::now()};

    int listen_fd{-1};
    std::uint16_t bound_port{0};
    std::atomic<bool> stopping{false};
    std::atomic<bool> active{false};

    std::mutex queue_mutex;
    std::condition_variable queue_ready;
    std::deque<int> pending;  ///< accepted fds awaiting a worker

    std::thread acceptor;
    std::vector<std::thread> workers;
};

}  // namespace mnt::svc
