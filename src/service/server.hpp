#pragma once

/// \file server.hpp
/// \brief Event-driven HTTP/1.1 catalog server over POSIX sockets — the
///        serving half of the MNT Bench platform. A small set of epoll
///        event loops drives non-blocking keep-alive connections through
///        per-connection state machines, answers the website's Figure 1
///        queries from immutable pre-rendered snapshots (falling back to
///        the \ref query_engine), and streams stored .fgl layouts by
///        content hash.
///
/// Endpoints (all responses are JSON unless noted):
///
///     GET  /healthz           liveness probe (status, layouts, uptime, version)
///     GET  /metrics           Prometheus text exposition of the telemetry
///                             registry (text/plain), incl. per-route request
///                             latency histograms
///     GET  /statz             operational snapshot: uptime, build provenance,
///                             request counts, per-route latency quantiles,
///                             store stats, event-log counters
///     GET  /benchmarks        benchmark sets and functions with layout counts
///     GET  /layouts?...       facet query → result page (see query.hpp for
///                             the query-string keys and the page format)
///     POST /layouts           same, query as a JSON body
///     GET  /facets?...        facet histograms only (no rows)
///     GET  /best?...          area-minimal layout per function (best_only
///                             forced on)
///     GET  /download/<id>     the stored .fgl blob (application/xml)
///
/// HEAD is answered for every GET route with identical headers (including
/// Content-Length and ETag) and an empty body; unknown methods get 501,
/// known-but-unsupported ones 405.
///
/// Design constraints:
///
/// - **Event-driven I/O.** Each of server_options::threads event loops owns
///   an epoll set (level-triggered) of non-blocking sockets. Connections
///   are HTTP/1.1 keep-alive with pipelining: requests are parsed out of
///   the connection's input buffer one after another and answered in
///   order; responses queue in an output buffer flushed as the socket
///   allows (EPOLLOUT only while a flush is pending).
/// - **Read path is shared-immutable.** The current \ref catalog_snapshot
///   (engine + pre-rendered hot JSON + ETags) is an immutable object
///   swapped atomically by \ref publish; handlers copy one shared_ptr and
///   never observe a half-updated catalog. The response cache is the only
///   mutable shared state and is both entry- and byte-bounded.
/// - **Conditional requests.** Every catalog JSON body and every download
///   carries a strong content-hash ETag; `If-None-Match` turns a repeat
///   visit into a 304 with no body.
/// - **Bounded work per connection.** Request size is capped
///   (server_options::max_request_bytes); a partially read request must
///   complete within request_deadline_s (slow-loris gets 408, folded into
///   the PR 2 \ref mnt::res::deadline_clock taxonomy), and an idle
///   keep-alive connection is closed after idle_timeout_s. Persistent
///   accept failures (EMFILE/ENFILE) back off exponentially instead of
///   spinning, shed the oldest idle connection, and are counted in
///   `server.accept_errors`.
/// - **Graceful shutdown.** stop() stops accepting, closes idle keep-alive
///   connections, drains in-flight requests and pending writes for up to
///   drain_timeout_s, then joins every event loop.

#include "core/filters.hpp"
#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "service/store.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mnt::svc
{

/// Server configuration.
struct server_options
{
    /// Bind address; the loopback default keeps the benchmark service
    /// private unless explicitly exposed.
    std::string host{"127.0.0.1"};

    /// TCP port; 0 picks an ephemeral port (query \ref catalog_server::port
    /// after start()).
    std::uint16_t port{0};

    /// Event-loop threads (each owns an epoll set of connections).
    std::size_t threads{4};

    /// Response-cache capacity in entries (0 disables the cache).
    std::size_t cache_capacity{128};

    /// Response-cache capacity in total bytes (keys + bodies + ETags); the
    /// cache evicts least-recently-used entries past either bound, so a
    /// handful of maximal catalog pages cannot pin unbounded memory.
    std::size_t cache_capacity_bytes{8U << 20U};

    /// Per-request deadline in seconds (read + handle); expiry yields 408.
    double request_deadline_s{10.0};

    /// Keep-alive connections idle (no partial request, nothing to write)
    /// longer than this are closed.
    double idle_timeout_s{15.0};

    /// Graceful-shutdown drain budget: stop() waits this long for in-flight
    /// requests and pending writes before closing the stragglers.
    double drain_timeout_s{5.0};

    /// Soft cap on concurrently open connections across all loops. At the
    /// cap, the oldest idle keep-alive connection is shed to make room; if
    /// none is idle, new connections are refused.
    std::size_t max_connections{1024};

    /// Hard cap on the request head + body size.
    std::size_t max_request_bytes{1U << 20U};
};

/// A parsed request, decoupled from the socket so the routing logic is
/// testable without network I/O (see \ref catalog_server::handle).
struct http_request
{
    std::string method;  ///< "GET", "POST", ...
    std::string path;    ///< decoded path, e.g. "/layouts"
    std::string query;   ///< raw query string (no leading '?')
    std::string body;
    /// True when the client asked for the connection to close after this
    /// response (`Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`).
    bool connection_close{false};
    /// Raw `If-None-Match` header value ("" when absent).
    std::string if_none_match;
};

/// A response ready for serialization.
struct http_response
{
    int status{200};
    std::string content_type{"application/json"};
    std::string body;
    /// Unquoted strong ETag; empty = no ETag header. The wire format quotes
    /// it. For HEAD and 304 responses the body is suppressed on the wire
    /// but kept here so Content-Length and validators stay correct.
    std::string etag;
};

/// Outcome of \ref parse_http_request.
enum class http_parse_status : std::uint8_t
{
    ok,          ///< a complete request was parsed
    incomplete,  ///< valid so far, but more bytes are needed
    malformed,   ///< the bytes can never become a valid request
    too_large    ///< head or declared body exceeds the size cap
};

/// Result of parsing one request from a byte prefix.
struct http_parse_result
{
    http_parse_status status{http_parse_status::incomplete};

    /// The parsed request; only meaningful when status == ok.
    http_request request;

    /// Bytes consumed by the request (head + declared body) when status ==
    /// ok; 0 otherwise. Pipelined requests parse from the remaining suffix.
    std::size_t consumed{0};
};

/// Parses an HTTP/1.1 request (request line, headers — of which
/// Content-Length, Connection and If-None-Match are interpreted — and body)
/// from \p bytes. Pure function of its inputs: the event loop feeds it
/// growing prefixes until the status leaves `incomplete`, then strips
/// `consumed` bytes and parses the next pipelined request; the fuzzer and
/// property tests drive it with arbitrary byte-streams directly. Never
/// throws; any input yields one of the four statuses.
[[nodiscard]] http_parse_result parse_http_request(std::string_view bytes, std::size_t max_bytes);

/// One cached rendered response.
struct cached_response
{
    std::string body;
    std::string etag;  ///< unquoted strong ETag of body
};

/// Thread-safe LRU cache of rendered response bodies keyed by the
/// normalized query (\ref page_query::cache_key), bounded both by entry
/// count and by total bytes. Entries are tagged with the snapshot
/// generation they were rendered from; \ref invalidate advances the
/// accepted generation and clears the cache, so a put() raced from before
/// a snapshot swap can never re-introduce a stale body (see DESIGN.md §16
/// for the ordering argument).
class response_cache
{
public:
    /// \p max_entries 0 disables the cache; \p max_bytes bounds
    /// key+body+etag bytes across all entries.
    explicit response_cache(std::size_t max_entries, std::size_t max_bytes = SIZE_MAX);

    /// Returns the cached response and refreshes its recency.
    [[nodiscard]] std::optional<cached_response> get(const std::string& key);

    /// Inserts (or refreshes) the response, evicting least recently used
    /// entries past either bound. A \p generation older than the cache's
    /// current one is dropped — the render predates a snapshot swap.
    void put(const std::string& key, const std::string& body, const std::string& etag,
             std::uint64_t generation = 0);

    /// Clears every entry and advances the accepted generation.
    void invalidate(std::uint64_t generation);

    [[nodiscard]] std::size_t size() const;

    /// Total bytes held (keys + bodies + ETags).
    [[nodiscard]] std::size_t bytes() const;

private:
    struct entry
    {
        std::string key;
        cached_response response;
    };
    using entry_list = std::list<entry>;

    void evict_to_bounds();  ///< callers hold the mutex

    mutable std::mutex mutex;
    std::size_t max_entries;
    std::size_t max_bytes;
    std::size_t total_bytes{0};
    std::uint64_t current_generation{0};
    entry_list entries;  ///< front = most recently used
    std::unordered_map<std::string, entry_list::iterator> index;
};

/// The catalog server. The engine (and the catalog it references) must
/// outlive the server and stay unmodified while any snapshot built from it
/// is current or held by an in-flight request; passing an owning
/// shared_ptr makes that automatic.
class catalog_server
{
public:
    /// Non-owning variant: \p engine must outlive the server.
    explicit catalog_server(const query_engine& engine, server_options options = {});

    /// Owning variant: the initial snapshot holds \p engine alive.
    explicit catalog_server(std::shared_ptr<const query_engine> engine, server_options options = {});

    /// Serve /download/<id> from \p store's blobs instead of re-serializing
    /// layouts in memory. The store must outlive the server.
    void attach_store(const layout_store* store) noexcept;

    /// Binds, listens and launches the event loops.
    ///
    /// \throws mnt::mnt_error when the socket cannot be bound
    void start();

    /// Graceful shutdown: stops accepting, closes idle connections, drains
    /// in-flight requests and pending writes (up to
    /// server_options::drain_timeout_s), joins every event loop. Idempotent;
    /// also invoked by the destructor.
    void stop();

    ~catalog_server();

    catalog_server(const catalog_server&) = delete;
    catalog_server& operator=(const catalog_server&) = delete;

    /// Actual bound port (resolves port 0 after start()).
    [[nodiscard]] std::uint16_t port() const noexcept;

    [[nodiscard]] bool running() const noexcept;

    /// Atomically replaces the serving snapshot with one freshly built from
    /// \p engine and invalidates the response cache — the regeneration
    /// hook: after the store is repopulated (e.g. a `--resume` run), a
    /// fresh engine published here makes every subsequent response reflect
    /// the new content, with new ETags. Invalidation happens *before* the
    /// swap, so a response rendered from the old snapshot can never be
    /// re-admitted under the new generation. Safe to call while serving.
    void publish(std::shared_ptr<const query_engine> engine);

    /// Generation of the currently served snapshot (0 = initial).
    [[nodiscard]] std::uint64_t snapshot_generation() const;

    /// Routes one request — the full handler minus the socket layer, used
    /// directly by tests. \p deadline bounds query execution; expiry yields
    /// a 408 response. For HEAD requests the returned body is the would-be
    /// GET body (the socket layer suppresses it on the wire but keeps
    /// Content-Length); conditional requests that match yield 304.
    [[nodiscard]] http_response handle(const http_request& request,
                                       const res::deadline_clock& deadline = res::deadline_clock::unbounded());

private:
    struct connection;  ///< per-connection state machine (server.cpp)
    struct event_loop;  ///< per-thread epoll state (server.cpp)

    void loop_thread(event_loop& loop);
    void accept_ready(event_loop& loop);
    void connection_readable(event_loop& loop, connection& conn);
    void connection_writable(event_loop& loop, connection& conn);
    void process_input(event_loop& loop, connection& conn);
    void flush_output(event_loop& loop, connection& conn);
    void sweep_deadlines(event_loop& loop);
    void close_connection(event_loop& loop, int fd);
    bool shed_oldest_idle(event_loop& loop);

    [[nodiscard]] std::shared_ptr<const catalog_snapshot> snapshot() const;

    [[nodiscard]] http_response route(const http_request& request, const res::deadline_clock& deadline);
    [[nodiscard]] http_response page_response(const page_query& query);
    [[nodiscard]] http_response download_response(const std::string& id);
    [[nodiscard]] http_response healthz_response();
    [[nodiscard]] http_response statz_response();

    /// Seconds since this server object was constructed.
    [[nodiscard]] double uptime_s() const noexcept;

    /// Bounded-cardinality route label for the per-route latency histograms:
    /// known routes verbatim, every /download/<id> collapsed to "/download",
    /// anything else to "other" — a hostile client scanning random paths
    /// must not mint unbounded metric series.
    [[nodiscard]] static std::string route_key(const std::string& path);

    /// True iff \p id is exactly 32 lowercase hex digits — the only id shape
    /// \ref layout_store and \ref query_engine ever mint.
    [[nodiscard]] static bool is_valid_blob_id(const std::string& id) noexcept;

    server_options options;
    const layout_store* store{nullptr};
    response_cache cache;
    const std::chrono::steady_clock::time_point started_at{std::chrono::steady_clock::now()};

    mutable std::mutex snapshot_mutex;
    std::shared_ptr<const catalog_snapshot> current_snapshot;
    std::uint64_t next_generation{1};

    int listen_fd{-1};
    std::uint16_t bound_port{0};
    std::atomic<bool> stopping{false};
    std::atomic<bool> active{false};
    std::atomic<std::size_t> open_connections{0};

    std::vector<std::unique_ptr<event_loop>> loops;
    std::vector<std::thread> loop_threads;
};

}  // namespace mnt::svc
