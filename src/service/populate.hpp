#pragma once

/// \file populate.hpp
/// \brief Incremental, crash-contained store population: runs the
///        layout-generation portfolio over benchmark entries and ingests
///        every product into a \ref layout_store — skipping combinations
///        whose results the store already holds. This is the glue between
///        generation (PR 2's resilient portfolio) and serving (the store +
///        query engine): the CLI, the server's --generate mode and the CI
///        smoke job all populate through this one function, so cache
///        semantics are identical everywhere.
///
/// Cache semantics:
///
/// - A combination is skipped when \ref cache_key(set, name, library, combo)
///   is already in the store — either as a stored layout or as a
///   completed-without-layout marker (exact finding no solution, PLO
///   yielding no gain).
/// - ok outcomes are always marked completed, so a second run skips every
///   combination of an already-populated benchmark.
/// - Failed combinations are recorded as failure provenance but NOT cached:
///   a rerun retries them.
///
/// Crash containment and resume (PR 7):
///
/// - The run decomposes into a **job matrix**: one \ref regen_job per
///   benchmark entry × gate library. Each job's results are made durable
///   (store.save(), fsync'd) *before* its `job_done` record lands in the
///   \ref run_journal — so after a kill at any instant, the journal's done
///   set is an underestimate that is always safe to skip on resume.
/// - With \ref populate_options::resume, the journal is replayed and done
///   jobs are skipped; in-flight and crashed jobs re-run. Because blob
///   writes are idempotent and the manifest is saved in canonical order, a
///   resumed run converges on a store byte-identical to an uninterrupted
///   one.
/// - With \ref populate_options::workers > 0, jobs are fork/exec'd into
///   supervised worker processes (see common/supervisor.hpp): a worker that
///   segfaults, hangs or exceeds its rlimits is captured as a synthesized
///   \ref mnt::cat::failure_record (combination \ref worker_combination)
///   while the remaining jobs complete. On a later resume the crashed job
///   re-runs and, if it succeeds, the synthesized record is removed.

#include "benchmarks/suites.hpp"
#include "physical_design/portfolio.hpp"
#include "service/journal.hpp"
#include "service/store.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

namespace mnt::svc
{

/// The combination label under which a worker-process death (crash, hang,
/// OOM kill) is recorded as a failure_record: the whole job died, not one
/// specific combination, so the record is attributed to the worker itself.
inline constexpr const char* worker_combination = "(worker)";

/// One cell of the regeneration job matrix: a benchmark entry × gate
/// library, the unit of journaling, supervision and resume.
struct regen_job
{
    /// Index into the entries vector handed to \ref populate_store.
    std::size_t entry_index{0};
    cat::gate_library_kind library{};
    pd::portfolio_flavor flavor{};
    /// Stable job id: `<set>/<name>|<library>` (cache-key prefix).
    std::string id{};
};

/// Configuration of \ref populate_store.
struct populate_options
{
    /// Portfolio configuration (deadline, retries, jobs, tool budgets). The
    /// is_cached hook is overwritten by populate_store; size-class defaults
    /// are applied per entry unless \ref use_entry_size_defaults is off.
    pd::portfolio_params params{};

    /// Apply per-entry size-class tool budgets (the Table I policy: exact
    /// only for tiny functions, NanoPlaceR for small ones, ...) on top of
    /// \ref params.
    bool use_entry_size_defaults{true};

    /// Gate libraries to generate for.
    bool qca{true};
    bool bestagon{true};

    /// Write the append-only run journal (journal.jsonl in the store root)
    /// and save the manifest durably after every job. Off = the pre-PR 7
    /// behavior: one save at the end, no resume capability.
    bool journal{true};

    /// Replay the journal before running: jobs with a durable job_done
    /// record are skipped, in-flight and crashed jobs re-run.
    bool resume{false};

    /// Deterministic output mode for byte-identity verification: zeroes the
    /// wall-clock fields persisted in the manifest (runtime_s, elapsed_s)
    /// and disables exact (whose soft wall-clock timeout makes its result
    /// set timing-dependent). Everything else in the pipeline is already
    /// seed-deterministic.
    bool deterministic{false};

    /// Cooperative cancellation (SIGINT/SIGTERM): once set, the current
    /// job's portfolio unwinds at its next deadline poll, its partial
    /// products are kept (idempotently re-ingested on resume), no job_done
    /// is written for it, and the journal gets a checkpoint record.
    std::shared_ptr<const std::atomic<bool>> cancel{};

    /// Number of supervised worker *processes* to run jobs in (0 = run all
    /// jobs in-process). Each worker is fork/exec'd per job with rlimits, a
    /// heartbeat pipe and a SIGTERM→SIGKILL watchdog; requires
    /// \ref worker_command. Implies \ref journal.
    std::size_t workers{0};

    /// argv prefix used to launch one worker process; populate appends
    /// `--worker-job <id>`. Typically the running executable itself plus
    /// the flags reproducing this configuration (store path, deadline, ...).
    std::vector<std::string> worker_command{};

    /// Supervision limits for each worker process (0 = disabled).
    double worker_wall_timeout_s{0.0};
    double worker_hang_timeout_s{0.0};
    double worker_cpu_limit_s{0.0};
    std::uint64_t worker_address_space_bytes{0};
};

/// What one populate run did.
struct populate_report
{
    std::size_t networks_added{0};
    std::size_t layouts_added{0};
    std::size_t failures_recorded{0};
    /// Combinations skipped because the store already had their result.
    std::size_t cached_combos_skipped{0};
    /// Combinations actually executed.
    std::size_t combos_run{0};

    /// Size of the job matrix for this configuration.
    std::size_t jobs_total{0};
    /// Jobs that actually ran (in-process or in a worker).
    std::size_t jobs_run{0};
    /// Jobs skipped because the journal already marks them done.
    std::size_t jobs_skipped_resume{0};
    /// Jobs whose worker process crashed, hung or failed to spawn.
    std::size_t jobs_crashed{0};
    /// True when the run stopped on the cancellation flag; the journal holds
    /// a checkpoint record and the run is resumable.
    bool interrupted{false};
};

/// The job matrix \ref populate_store will execute for this configuration,
/// in execution order (entries × enabled libraries).
[[nodiscard]] std::vector<regen_job> enumerate_regen_jobs(const std::vector<bm::benchmark_entry>& entries,
                                                          const populate_options& options = {});

/// Runs the portfolio for every entry × enabled library, ingests networks,
/// layouts and failures into \p store and saves the manifest. Combinations
/// already present in the store are skipped (incremental regeneration);
/// journaling, resume, cancellation and process supervision per
/// \ref populate_options.
///
/// \throws mnt::mnt_error when the manifest or journal cannot be written
populate_report populate_store(layout_store& store, const std::vector<bm::benchmark_entry>& entries,
                               const populate_options& options = {});

/// Worker-process entry point: runs the single job \p job_id against the
/// store at \p store_root, writing results into a per-job shard manifest
/// (`shards/job-<hash>.json`) that the supervising parent merges. The main
/// manifest is only ever read here — the parent stays its single writer.
/// Returns the per-job report.
///
/// \throws mnt::mnt_error when \p job_id does not name a job of \p entries
populate_report run_regen_job(const std::filesystem::path& store_root,
                              const std::vector<bm::benchmark_entry>& entries, const std::string& job_id,
                              const populate_options& options = {});

/// Shard-manifest path (relative joins under \p store_root) for \p job_id.
[[nodiscard]] std::filesystem::path shard_manifest_path(const std::filesystem::path& store_root,
                                                        const std::string& job_id);

}  // namespace mnt::svc
