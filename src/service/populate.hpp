#pragma once

/// \file populate.hpp
/// \brief Incremental store population: runs the layout-generation portfolio
///        over benchmark entries and ingests every product into a
///        \ref layout_store — skipping combinations whose results the store
///        already holds. This is the glue between generation (PR 2's
///        resilient portfolio) and serving (the store + query engine): the
///        CLI, the server's --generate mode and the CI smoke job all
///        populate through this one function, so cache semantics are
///        identical everywhere.
///
/// Cache semantics:
///
/// - A combination is skipped when \ref cache_key(set, name, library, combo)
///   is already in the store — either as a stored layout or as a
///   completed-without-layout marker (exact finding no solution, PLO
///   yielding no gain).
/// - ok outcomes are always marked completed, so a second run skips every
///   combination of an already-populated benchmark.
/// - Failed combinations are recorded as failure provenance but NOT cached:
///   a rerun retries them.

#include "benchmarks/suites.hpp"
#include "physical_design/portfolio.hpp"
#include "service/store.hpp"

#include <cstddef>
#include <vector>

namespace mnt::svc
{

/// Configuration of \ref populate_store.
struct populate_options
{
    /// Portfolio configuration (deadline, retries, jobs, tool budgets). The
    /// is_cached hook is overwritten by populate_store; size-class defaults
    /// are applied per entry unless \ref use_entry_size_defaults is off.
    pd::portfolio_params params{};

    /// Apply per-entry size-class tool budgets (the Table I policy: exact
    /// only for tiny functions, NanoPlaceR for small ones, ...) on top of
    /// \ref params.
    bool use_entry_size_defaults{true};

    /// Gate libraries to generate for.
    bool qca{true};
    bool bestagon{true};
};

/// What one populate run did.
struct populate_report
{
    std::size_t networks_added{0};
    std::size_t layouts_added{0};
    std::size_t failures_recorded{0};
    /// Combinations skipped because the store already had their result.
    std::size_t cached_combos_skipped{0};
    /// Combinations actually executed.
    std::size_t combos_run{0};
};

/// Runs the portfolio for every entry × enabled library, ingests networks,
/// layouts and failures into \p store and saves the manifest. Combinations
/// already present in the store are skipped (incremental regeneration).
///
/// \throws mnt::mnt_error when the manifest cannot be saved
populate_report populate_store(layout_store& store, const std::vector<bm::benchmark_entry>& entries,
                               const populate_options& options = {});

}  // namespace mnt::svc
