#include "service/populate.hpp"

#include "telemetry/telemetry.hpp"

#include <atomic>
#include <utility>

namespace mnt::svc
{

namespace
{

/// Size-class tool budgets, mirroring the Table I policy (exact only on tiny
/// functions, stochastic placement up to small, scalable heuristics beyond).
void apply_size_defaults(pd::portfolio_params& params, const bm::size_class size)
{
    switch (size)
    {
        case bm::size_class::tiny: break;
        case bm::size_class::small: params.try_exact = false; break;
        case bm::size_class::medium:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 3;
            break;
        case bm::size_class::large:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 2;
            params.try_plo = false;
            break;
    }
}

}  // namespace

populate_report populate_store(layout_store& store, const std::vector<bm::benchmark_entry>& entries,
                               const populate_options& options)
{
    MNT_SPAN("populate/store");
    populate_report report{};
    // the is_cached hook runs on portfolio worker threads when params.jobs > 1
    std::atomic<std::size_t> skipped{0};
    std::atomic<std::size_t> ran{0};

    std::vector<std::pair<cat::gate_library_kind, pd::portfolio_flavor>> libraries;
    if (options.qca)
    {
        libraries.emplace_back(cat::gate_library_kind::qca_one, pd::portfolio_flavor::cartesian);
    }
    if (options.bestagon)
    {
        libraries.emplace_back(cat::gate_library_kind::bestagon, pd::portfolio_flavor::hexagonal);
    }

    for (const auto& entry : entries)
    {
        const auto network = entry.build();
        if (!store.has_network(entry.set, entry.name))
        {
            store.put_network(entry.set, entry.name, network);
            ++report.networks_added;
        }

        auto params = options.params;
        if (options.use_entry_size_defaults)
        {
            apply_size_defaults(params, entry.size);
        }

        for (const auto& [library, flavor] : libraries)
        {
            // incremental regeneration: the portfolio consults the store
            // before running each combination
            params.is_cached = [&store, &entry, library = library, &skipped, &ran](const std::string& combo)
            {
                if (store.contains(cache_key(entry.set, entry.name, library, combo)))
                {
                    skipped.fetch_add(1, std::memory_order_relaxed);
                    return true;
                }
                ran.fetch_add(1, std::memory_order_relaxed);
                return false;
            };

            const auto run = pd::generate_portfolio(network, flavor, params);

            for (const auto& r : run.results)
            {
                cat::layout_record record{};
                record.benchmark_set = entry.set;
                record.benchmark_name = entry.name;
                record.library = library;
                record.clocking = r.clocking;
                record.algorithm = r.algorithm;
                record.optimizations = r.optimizations;
                record.runtime = r.runtime;
                record.layout = r.layout;
                store.put_layout(record);
                ++report.layouts_added;
            }
            for (const auto& o : run.outcomes)
            {
                const auto key = cache_key(entry.set, entry.name, library, o.label);
                if (o.is_ok())
                {
                    // covers completed-without-layout combinations (exact
                    // finding no solution, PLO yielding no gain), so reruns
                    // skip them too; layout-producing combos are keyed twice
                    // harmlessly
                    if (!store.contains(key))
                    {
                        store.mark_completed(key);
                    }
                    continue;
                }
                cat::failure_record failure{};
                failure.benchmark_set = entry.set;
                failure.benchmark_name = entry.name;
                failure.library = library;
                failure.combination = o.label;
                failure.kind = res::outcome_kind_name(o.kind);
                failure.message = o.message;
                failure.elapsed_s = o.elapsed_s;
                failure.attempts = o.attempts;
                store.put_failure(failure);
                ++report.failures_recorded;
            }
        }
    }

    report.cached_combos_skipped = skipped.load();
    report.combos_run = ran.load();
    store.save();

    if (tel::enabled())
    {
        tel::count("populate.runs");
        tel::count("populate.layouts_added", report.layouts_added);
        tel::count("populate.cached_combos_skipped", report.cached_combos_skipped);
        tel::count("populate.combos_run", report.combos_run);
    }
    return report;
}

}  // namespace mnt::svc
