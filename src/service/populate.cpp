#include "service/populate.hpp"

#include "common/supervisor.hpp"
#include "common/types.hpp"
#include "service/hash.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

namespace mnt::svc
{

namespace
{

/// Size-class tool budgets, mirroring the Table I policy (exact only on tiny
/// functions, stochastic placement up to small, scalable heuristics beyond).
void apply_size_defaults(pd::portfolio_params& params, const bm::size_class size)
{
    switch (size)
    {
        case bm::size_class::tiny: break;
        case bm::size_class::small: params.try_exact = false; break;
        case bm::size_class::medium:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 3;
            break;
        case bm::size_class::large:
            params.try_exact = false;
            params.try_nanoplacer = false;
            params.input_orderings = 2;
            params.try_plo = false;
            break;
    }
}

/// Human-readable options fingerprint for the journal's run_start record; a
/// resume under a different configuration logs a warning (the done set is
/// still safe to skip, but the job matrix may differ).
// only options that change what the run *produces* belong here: resuming a
// sharded run in-process (or vice versa) is legitimate and must not warn
std::string config_fingerprint(const populate_options& options)
{
    std::string config;
    config += "qca=" + std::to_string(options.qca ? 1 : 0);
    config += ",bestagon=" + std::to_string(options.bestagon ? 1 : 0);
    config += ",deterministic=" + std::to_string(options.deterministic ? 1 : 0);
    config += ",size_defaults=" + std::to_string(options.use_entry_size_defaults ? 1 : 0);
    return config;
}

bool cancelled(const populate_options& options) noexcept
{
    return options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed);
}

/// What running one job of the matrix produced, before it is folded into
/// the populate_report.
struct job_products
{
    std::size_t networks_added{0};
    std::size_t layouts_added{0};
    std::size_t failures_recorded{0};
    std::size_t completed_marked{0};
    std::vector<std::string> blob_ids{};
    /// True when the job was cut short by the cancellation flag: its partial
    /// products are ingested (idempotent) but it must not be marked done.
    bool interrupted{false};
};

/// Runs one regen_job's portfolio and ingests everything into \p sink.
/// \p cache decides which combinations are skipped (for supervised workers
/// the main store is consulted in addition to the shard being written).
job_products run_job_into(layout_store& sink, const layout_store* cache, const bm::benchmark_entry& entry,
                          const regen_job& job, const populate_options& options,
                          std::atomic<std::size_t>& skipped, std::atomic<std::size_t>& ran)
{
    MNT_SPAN("populate/job");
    job_products products{};

    // the fault site the CI crash-containment demo triggers: a worker
    // process aborts here, exercising the supervisor's capture path
    if (MNT_FAULT_FIRES("worker.crash"))
    {
        std::abort();
    }

    const auto network = entry.build();
    sup::heartbeat();
    const bool network_known =
        sink.has_network(entry.set, entry.name) || (cache != nullptr && cache->has_network(entry.set, entry.name));
    if (!network_known)
    {
        sink.put_network(entry.set, entry.name, network, entry.family);
        ++products.networks_added;
    }

    auto params = options.params;
    if (options.use_entry_size_defaults)
    {
        apply_size_defaults(params, entry.size);
    }
    if (options.deterministic)
    {
        // exact's soft wall-clock timeout makes its result set
        // timing-dependent; a byte-identity run must exclude it
        params.try_exact = false;
    }
    if (options.cancel != nullptr)
    {
        params.stop = options.cancel;
    }

    const auto& set = entry.set;
    const auto& name = entry.name;
    const auto library = job.library;
    // incremental regeneration: the portfolio consults the store(s) before
    // running each combination; the hook doubles as a worker heartbeat
    params.is_cached = [&](const std::string& combo)
    {
        sup::heartbeat();
        const auto key = cache_key(set, name, library, combo);
        if (sink.contains(key) || (cache != nullptr && cache->contains(key)))
        {
            skipped.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        ran.fetch_add(1, std::memory_order_relaxed);
        return false;
    };

    const auto run = pd::generate_portfolio(network, job.flavor, params);
    sup::heartbeat();
    products.interrupted = cancelled(options);

    for (const auto& r : run.results)
    {
        cat::layout_record record{};
        record.benchmark_set = set;
        record.benchmark_name = name;
        record.library = library;
        record.clocking = r.clocking;
        record.algorithm = r.algorithm;
        record.optimizations = r.optimizations;
        record.runtime = options.deterministic ? 0.0 : r.runtime;
        record.family = entry.family;
        record.family_seed = entry.family_seed;
        record.layout = r.layout;
        const auto blob = sink.put_layout(record);
        if (!blob.empty())
        {
            products.blob_ids.push_back(blob);
        }
        ++products.layouts_added;
    }
    for (const auto& o : run.outcomes)
    {
        const auto key = cache_key(set, name, library, o.label);
        if (o.is_ok())
        {
            // covers completed-without-layout combinations (exact finding no
            // solution, PLO yielding no gain), so reruns skip them too;
            // layout-producing combos are keyed twice harmlessly
            if (!sink.contains(key) && (cache == nullptr || !cache->contains(key)))
            {
                sink.mark_completed(key);
                ++products.completed_marked;
            }
            continue;
        }
        if (products.interrupted)
        {
            // a cancelled run reports the cut-off combinations as timeouts;
            // those are artifacts of the interrupt, not results — the job
            // re-runs on resume, so record nothing for it
            continue;
        }
        cat::failure_record failure{};
        failure.benchmark_set = set;
        failure.benchmark_name = name;
        failure.library = library;
        failure.combination = o.label;
        failure.kind = res::outcome_kind_name(o.kind);
        failure.message = o.message;
        failure.elapsed_s = options.deterministic ? 0.0 : o.elapsed_s;
        failure.attempts = o.attempts;
        sink.put_failure(failure);
        ++products.failures_recorded;
    }
    return products;
}

void fold(populate_report& report, const job_products& products)
{
    report.networks_added += products.networks_added;
    report.layouts_added += products.layouts_added;
    report.failures_recorded += products.failures_recorded;
}

/// Records a worker-process death as a failure_record attributed to the
/// worker itself (combination "(worker)").
cat::failure_record synthesize_worker_failure(const bm::benchmark_entry& entry, const regen_job& job,
                                              const sup::worker_result& result)
{
    cat::failure_record failure{};
    failure.benchmark_set = entry.set;
    failure.benchmark_name = entry.name;
    failure.library = job.library;
    failure.combination = worker_combination;
    failure.kind = res::outcome_kind_name(sup::classify(result));
    failure.message = sup::describe(result);
    if (!result.stderr_tail.empty())
    {
        failure.message += " | stderr: " + result.stderr_tail;
    }
    failure.elapsed_s = result.elapsed_s;
    failure.attempts = 1;
    return failure;
}

}  // namespace

std::vector<regen_job> enumerate_regen_jobs(const std::vector<bm::benchmark_entry>& entries,
                                            const populate_options& options)
{
    std::vector<std::pair<cat::gate_library_kind, pd::portfolio_flavor>> libraries;
    if (options.qca)
    {
        libraries.emplace_back(cat::gate_library_kind::qca_one, pd::portfolio_flavor::cartesian);
    }
    if (options.bestagon)
    {
        libraries.emplace_back(cat::gate_library_kind::bestagon, pd::portfolio_flavor::hexagonal);
    }

    std::vector<regen_job> jobs;
    jobs.reserve(entries.size() * libraries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
    {
        for (const auto& [library, flavor] : libraries)
        {
            regen_job job{};
            job.entry_index = i;
            job.library = library;
            job.flavor = flavor;
            job.id = entries[i].set + "/" + entries[i].name + "|" + cat::gate_library_name(library);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::filesystem::path shard_manifest_path(const std::filesystem::path& store_root, const std::string& job_id)
{
    return store_root / layout_store::shard_dir_name / ("job-" + content_hash(job_id) + ".json");
}

populate_report run_regen_job(const std::filesystem::path& store_root,
                              const std::vector<bm::benchmark_entry>& entries, const std::string& job_id,
                              const populate_options& options)
{
    const auto jobs = enumerate_regen_jobs(entries, options);
    const auto it = std::find_if(jobs.begin(), jobs.end(), [&](const regen_job& j) { return j.id == job_id; });
    if (it == jobs.end())
    {
        throw mnt_error{"populate: unknown regeneration job '" + job_id + "'"};
    }
    const auto& job = *it;
    const auto& entry = entries[job.entry_index];

    // the main store is the read-only cache view; all writes land in the
    // per-job shard manifest (same blob directory — blobs are idempotent)
    layout_store main_store{store_root};
    layout_store shard{store_root, std::filesystem::path{layout_store::shard_dir_name} /
                                       ("job-" + content_hash(job_id) + ".json")};

    std::atomic<std::size_t> skipped{0};
    std::atomic<std::size_t> ran{0};
    const auto products = run_job_into(shard, &main_store, entry, job, options, skipped, ran);
    shard.save();
    sup::heartbeat();

    populate_report report{};
    report.jobs_total = 1;
    report.jobs_run = 1;
    fold(report, products);
    report.cached_combos_skipped = skipped.load();
    report.combos_run = ran.load();
    report.interrupted = products.interrupted;
    return report;
}

populate_report populate_store(layout_store& store, const std::vector<bm::benchmark_entry>& entries,
                               const populate_options& options)
{
    MNT_SPAN("populate/store");
    populate_report report{};
    std::atomic<std::size_t> skipped{0};
    std::atomic<std::size_t> ran{0};

    const auto jobs = enumerate_regen_jobs(entries, options);
    report.jobs_total = jobs.size();

    const bool journaling = options.journal || options.workers > 0 || options.resume;
    const auto journal_path = store.root() / run_journal::default_filename;

    // resume: replay the journal; durable job_done records are skipped
    journal_replay replay{};
    if (options.resume)
    {
        replay = journal_replay::replay(journal_path);
        if (!replay.config.empty() && replay.config != config_fingerprint(options))
        {
            tel::log_event(tel::log_severity::warn, "populate", "resuming under a different configuration",
                           {{"journal", replay.config}, {"current", config_fingerprint(options)}});
        }
        if (replay.malformed_lines > 0)
        {
            tel::log_event(tel::log_severity::warn, "populate", "journal contained malformed records",
                           {{"path", journal_path.string()},
                            {"malformed", std::to_string(replay.malformed_lines)}});
        }
    }

    std::unique_ptr<run_journal> journal;
    if (journaling)
    {
        journal = std::make_unique<run_journal>(journal_path);
        journal->run_start(jobs.size(), config_fingerprint(options));
    }

    // partition the matrix into skip (done on a previous run) and work
    std::vector<const regen_job*> work;
    work.reserve(jobs.size());
    for (const auto& job : jobs)
    {
        if (options.resume && replay.done.count(job.id) != 0)
        {
            ++report.jobs_skipped_resume;
            tel::count("regen.jobs[state=skipped]");
            continue;
        }
        work.push_back(&job);
    }

    const auto finish_job_inline = [&](const regen_job& job, const job_products& products)
    {
        // a successful rerun clears any worker-crash record a previous
        // (crashed) attempt left for this job
        store.remove_failure(entries[job.entry_index].set, entries[job.entry_index].name,
                             cat::gate_library_name(job.library), worker_combination);
        if (journaling)
        {
            // durability ordering: the manifest holding the job's results is
            // fsync'd (store.save) *before* the journal marks the job done —
            // a done record therefore always points at durable results
            store.save();
            journal->job_done(job.id, products.layouts_added, products.failures_recorded,
                              products.completed_marked, products.blob_ids);
        }
        ++report.jobs_run;
        tel::count("regen.jobs[state=done]");
    };

    if (options.workers == 0)
    {
        // ------------------------------------------------- in-process path
        for (const auto* job_ptr : work)
        {
            const auto& job = *job_ptr;
            if (cancelled(options))
            {
                report.interrupted = true;
                break;
            }
            if (journaling)
            {
                journal->job_start(job.id);
            }
            const auto products = run_job_into(store, nullptr, entries[job.entry_index], job, options, skipped, ran);
            fold(report, products);
            if (products.interrupted)
            {
                // partial products are ingested (idempotent), but the job is
                // NOT marked done: resume re-runs it to completion
                report.interrupted = true;
                break;
            }
            finish_job_inline(job, products);
        }
    }
    else
    {
        // ------------------------------------------------ supervised path
        if (options.worker_command.empty())
        {
            throw mnt_error{"populate: workers > 0 requires a worker_command"};
        }

        std::mutex merge_mutex;  // serializes store/journal/report access
        std::deque<const regen_job*> queue{work.begin(), work.end()};

        const auto worker_loop = [&]
        {
            for (;;)
            {
                const regen_job* job_ptr = nullptr;
                {
                    const std::lock_guard<std::mutex> lock{merge_mutex};
                    if (queue.empty() || report.interrupted)
                    {
                        return;
                    }
                    if (cancelled(options))
                    {
                        report.interrupted = true;
                        return;
                    }
                    job_ptr = queue.front();
                    queue.pop_front();
                    if (journaling)
                    {
                        journal->job_start(job_ptr->id);
                    }
                }
                const auto& job = *job_ptr;
                const auto& entry = entries[job.entry_index];

                auto argv = options.worker_command;
                argv.push_back("--worker-job");
                argv.push_back(job.id);

                sup::worker_limits limits{};
                limits.wall_timeout_s = options.worker_wall_timeout_s;
                limits.hang_timeout_s = options.worker_hang_timeout_s;
                limits.cpu_limit_s = options.worker_cpu_limit_s;
                limits.address_space_bytes = options.worker_address_space_bytes;
                limits.cancel = options.cancel.get();

                const auto result = sup::run_worker(argv, limits);

                const std::lock_guard<std::mutex> lock{merge_mutex};
                if (result.ok())
                {
                    const auto shard_path = shard_manifest_path(store.root(), job.id);
                    try
                    {
                        const auto stats = store.merge_manifest_file(shard_path);
                        store.remove_failure(entry.set, entry.name, cat::gate_library_name(job.library),
                                             worker_combination);
                        store.save();
                        if (journaling)
                        {
                            journal->job_done(job.id, stats.layouts, stats.failures, stats.completed,
                                              stats.blob_ids);
                        }
                        std::error_code ec;
                        std::filesystem::remove(shard_path, ec);  // merged: the shard is spent
                        report.networks_added += stats.networks;
                        report.layouts_added += stats.layouts;
                        report.failures_recorded += stats.failures;
                        ++report.jobs_run;
                        tel::count("regen.jobs[state=done]");
                    }
                    catch (const std::exception& e)
                    {
                        // worker claimed success but its shard is unusable:
                        // treat like a crash so resume re-runs the job
                        tel::log_event(tel::log_severity::error, "populate", "shard merge failed",
                                       {{"job", job.id}, {"error", e.what()}});
                        if (journaling)
                        {
                            journal->job_crashed(job.id, "shard_merge_failed", 0, result.exit_code, e.what());
                        }
                        ++report.jobs_crashed;
                        tel::count("regen.jobs[state=crashed]");
                    }
                    continue;
                }

                if (result.reason == sup::kill_reason::cancel)
                {
                    // the watchdog killed the worker because *we* are
                    // shutting down — that is an interrupt, not a crash
                    report.interrupted = true;
                    continue;
                }

                const auto failure = synthesize_worker_failure(entry, job, result);
                store.put_failure(failure);
                ++report.failures_recorded;
                store.save();
                if (journaling)
                {
                    journal->job_crashed(job.id, sup::worker_status_name(result.status), result.signal,
                                         result.exit_code, sup::describe(result));
                }
                ++report.jobs_crashed;
                tel::count("regen.jobs[state=crashed]");
                tel::log_event(tel::log_severity::warn, "populate", "worker job failed",
                               {{"job", job.id},
                                {"status", sup::worker_status_name(result.status)},
                                {"detail", sup::describe(result)}});
            }
        };

        std::vector<std::thread> supervisors;
        const auto n = std::min<std::size_t>(std::max<std::size_t>(options.workers, 1), work.size());
        supervisors.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
        {
            supervisors.emplace_back(worker_loop);
        }
        for (auto& t : supervisors)
        {
            t.join();
        }
        if (cancelled(options))
        {
            report.interrupted = true;
        }
    }

    report.cached_combos_skipped = skipped.load();
    report.combos_run = ran.load();

    if (journaling)
    {
        if (report.interrupted)
        {
            journal->checkpoint("cancelled");
        }
        else
        {
            journal->run_end(report.jobs_run, report.jobs_crashed);
        }
    }
    store.save();

    if (tel::enabled())
    {
        tel::count("populate.runs");
        tel::count("populate.layouts_added", report.layouts_added);
        tel::count("populate.cached_combos_skipped", report.cached_combos_skipped);
        tel::count("populate.combos_run", report.combos_run);
    }
    return report;
}

}  // namespace mnt::svc
