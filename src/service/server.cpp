#include "service/server.hpp"

#include "common/provenance.hpp"
#include "common/resilience.hpp"
#include "io/fgl_writer.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mnt::svc
{

namespace
{

const char* status_text(const int status) noexcept
{
    switch (status)
    {
        case 200: return "OK";
        case 304: return "Not Modified";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Payload Too Large";
        case 500: return "Internal Server Error";
        case 501: return "Not Implemented";
        case 503: return "Service Unavailable";
    }
    return "Status";
}

/// Server metrics are recorded unconditionally — not gated by MNT_TELEMETRY
/// — so a /metrics scrape of an otherwise-unconfigured server is still
/// informative. Registry instrument references are stable for the process
/// lifetime, which is what makes direct recording safe here.
void count_always(const std::string_view name, const std::uint64_t delta = 1)
{
    tel::registry::instance().get_counter(name).add(delta);
}

http_response error_response(const int status, const std::string& message)
{
    auto error = json_value::make_object();
    error.set("status", json_value{static_cast<std::uint64_t>(status)});
    error.set("message", json_value{message});
    auto document = json_value::make_object();
    document.set("error", std::move(error));
    return http_response{status, "application/json", document.dump(), {}};
}

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux fallback; pair with an external SIGPIPE handler
#endif

[[nodiscard]] bool iequals(const std::string_view a, const std::string_view b) noexcept
{
    if (a.size() != b.size())
    {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        const auto la = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] + 32) : a[i];
        const auto lb = b[i] >= 'A' && b[i] <= 'Z' ? static_cast<char>(b[i] + 32) : b[i];
        if (la != lb)
        {
            return false;
        }
    }
    return true;
}

[[nodiscard]] std::string_view trim_ows(std::string_view text) noexcept
{
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    {
        text.remove_prefix(1);
    }
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
    {
        text.remove_suffix(1);
    }
    return text;
}

/// True when the comma-separated Connection header \p value carries
/// \p token (case-insensitive).
[[nodiscard]] bool connection_header_has(const std::string_view value, const std::string_view token) noexcept
{
    std::size_t pos = 0;
    while (pos <= value.size())
    {
        const auto comma = value.find(',', pos);
        const auto part =
            trim_ows(value.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos));
        if (iequals(part, token))
        {
            return true;
        }
        if (comma == std::string_view::npos)
        {
            break;
        }
        pos = comma + 1;
    }
    return false;
}

/// RFC 7231's method registry; anything else is unrecognized and earns 501
/// rather than a route-shaped 404/405.
[[nodiscard]] bool known_http_method(const std::string& method) noexcept
{
    static constexpr const char* methods[] = {"GET",    "HEAD",    "POST",  "PUT",  "DELETE",
                                              "CONNECT", "OPTIONS", "TRACE", "PATCH"};
    return std::any_of(std::begin(methods), std::end(methods),
                       [&](const char* m) { return method == m; });
}

/// Renders the response head (+ body unless suppressed) for the wire.
/// HEAD responses keep the would-be Content-Length with no body; 304
/// responses carry neither content headers nor body (RFC 7232) but do
/// repeat the ETag.
[[nodiscard]] std::string serialize_response(const http_response& response, const bool keep_alive,
                                             const bool head_only)
{
    std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " + status_text(response.status) + "\r\n";
    if (response.status != 304)
    {
        wire += "Content-Type: " + response.content_type + "\r\n";
        wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    }
    if (!response.etag.empty())
    {
        wire += "ETag: \"" + response.etag + "\"\r\n";
    }
    wire += keep_alive ? "Connection: keep-alive\r\n\r\n" : "Connection: close\r\n\r\n";
    if (!head_only && response.status != 304)
    {
        wire += response.body;
    }
    return wire;
}

void set_nonblocking(const int fd) noexcept
{
    const auto flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
    {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
}

using clock_type = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(const clock_type::time_point then) noexcept
{
    return std::chrono::duration<double>(clock_type::now() - then).count();
}

}  // namespace

http_parse_result parse_http_request(const std::string_view bytes, const std::size_t max_bytes)
{
    http_parse_result result{};

    const auto header_end = bytes.find("\r\n\r\n");
    if (header_end == std::string_view::npos)
    {
        result.status = bytes.size() > max_bytes ? http_parse_status::too_large : http_parse_status::incomplete;
        return result;
    }

    // request line: METHOD SP target SP HTTP/1.x
    const auto line_end = bytes.find("\r\n");
    const auto line = bytes.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 == std::string_view::npos ? std::string_view::npos : sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).substr(0, 7) != "HTTP/1.")
    {
        result.status = http_parse_status::malformed;
        return result;
    }
    result.request.method = std::string{line.substr(0, sp1)};
    const auto target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto question = target.find('?');
    result.request.path = std::string{target.substr(0, question)};
    if (question != std::string_view::npos)
    {
        result.request.query = std::string{target.substr(question + 1)};
    }
    // HTTP/1.0 defaults to close unless the client opts into keep-alive
    const auto version_tail = line.substr(sp2 + 1);
    const bool http10 = version_tail.size() >= 8 && version_tail[7] == '0';

    // headers: Content-Length (framing), Connection (persistence),
    // If-None-Match (conditional requests)
    std::size_t content_length = 0;
    bool close_requested = false;
    bool keep_alive_requested = false;
    std::size_t pos = line_end + 2;
    while (pos < header_end)
    {
        const auto eol = bytes.find("\r\n", pos);
        const auto header = bytes.substr(pos, eol - pos);
        const auto colon = header.find(':');
        if (colon != std::string_view::npos)
        {
            const auto name = header.substr(0, colon);
            const auto value = trim_ows(header.substr(colon + 1));
            if (iequals(name, "content-length"))
            {
                const std::string text{value};
                content_length = static_cast<std::size_t>(std::strtoull(text.c_str(), nullptr, 10));
            }
            else if (iequals(name, "connection"))
            {
                close_requested = close_requested || connection_header_has(value, "close");
                keep_alive_requested = keep_alive_requested || connection_header_has(value, "keep-alive");
            }
            else if (iequals(name, "if-none-match"))
            {
                result.request.if_none_match = std::string{value};
            }
        }
        pos = eol + 2;
    }
    result.request.connection_close = close_requested || (http10 && !keep_alive_requested);

    const auto body_start = header_end + 4;
    // subtract instead of adding: body_start + content_length can wrap
    // around for a hostile Content-Length near SIZE_MAX, turning an
    // oversized request into a never-completing "incomplete" one
    if (body_start > max_bytes || content_length > max_bytes - body_start)
    {
        result.status = http_parse_status::too_large;
        return result;
    }
    if (bytes.size() - body_start < content_length)
    {
        result.status = http_parse_status::incomplete;
        return result;
    }
    result.request.body = std::string{bytes.substr(body_start, content_length)};
    result.consumed = body_start + content_length;
    result.status = http_parse_status::ok;
    return result;
}

// ------------------------------------------------------------ response_cache

response_cache::response_cache(const std::size_t max_entries, const std::size_t max_bytes) :
        max_entries{max_entries},
        max_bytes{max_bytes}
{}

std::optional<cached_response> response_cache::get(const std::string& key)
{
    const std::scoped_lock lock{mutex};
    const auto found = index.find(key);
    if (found == index.cend())
    {
        return std::nullopt;
    }
    entries.splice(entries.begin(), entries, found->second);
    return found->second->response;
}

void response_cache::put(const std::string& key, const std::string& body, const std::string& etag,
                         const std::uint64_t generation)
{
    if (max_entries == 0)
    {
        return;
    }
    const std::scoped_lock lock{mutex};
    if (generation != current_generation)
    {
        return;  // rendered against a snapshot that has since been swapped out
    }
    const auto entry_bytes = key.size() + body.size() + etag.size();
    if (const auto found = index.find(key); found != index.cend())
    {
        total_bytes -= found->second->key.size() + found->second->response.body.size() +
                       found->second->response.etag.size();
        found->second->response = cached_response{body, etag};
        total_bytes += entry_bytes;
        entries.splice(entries.begin(), entries, found->second);
    }
    else
    {
        entries.emplace_front(entry{key, cached_response{body, etag}});
        index.emplace(key, entries.begin());
        total_bytes += entry_bytes;
    }
    evict_to_bounds();
}

void response_cache::invalidate(const std::uint64_t generation)
{
    const std::scoped_lock lock{mutex};
    current_generation = generation;
    entries.clear();
    index.clear();
    total_bytes = 0;
}

void response_cache::evict_to_bounds()
{
    while (!entries.empty() && (entries.size() > max_entries || total_bytes > max_bytes))
    {
        const auto& victim = entries.back();
        total_bytes -= victim.key.size() + victim.response.body.size() + victim.response.etag.size();
        index.erase(victim.key);
        entries.pop_back();
    }
}

std::size_t response_cache::size() const
{
    const std::scoped_lock lock{mutex};
    return entries.size();
}

std::size_t response_cache::bytes() const
{
    const std::scoped_lock lock{mutex};
    return total_bytes;
}

// ----------------------------------------------------------- event-loop state

/// Per-connection state machine. A connection cycles between *reading* (a
/// partial request sits in inbuf; must complete within the request
/// deadline), *idle* (keep-alive, nothing buffered; bounded by the idle
/// timeout) and *flushing* (outbuf bytes pending; EPOLLOUT armed until
/// drained).
struct catalog_server::connection
{
    int fd{-1};
    std::string inbuf;   ///< received, not-yet-parsed bytes
    std::string outbuf;  ///< serialized responses awaiting the socket
    std::size_t outpos{0};
    clock_type::time_point last_activity{};
    clock_type::time_point read_start{};  ///< first byte of the pending request
    bool reading{false};                  ///< inbuf holds a partial request
    bool want_write{false};               ///< EPOLLOUT currently armed
    bool close_after_flush{false};
    bool peer_closed{false};
};

/// Per-thread epoll state. Each loop owns its connections outright; no
/// cross-loop locking ever touches a connection.
struct catalog_server::event_loop
{
    int epoll_fd{-1};
    int wake_fd{-1};  ///< eventfd poked by stop()
    bool accept_armed{false};
    std::uint32_t accept_backoff_ms{0};
    clock_type::time_point accept_resume_at{};
    std::unordered_map<int, connection> connections;
    bool draining{false};
    clock_type::time_point drain_deadline{};
};

// ------------------------------------------------------------ catalog_server

catalog_server::catalog_server(const query_engine& engine, server_options options) :
        // non-owning: the caller guarantees the engine outlives the server
        catalog_server{std::shared_ptr<const query_engine>{&engine, [](const query_engine*) {}},
                       std::move(options)}
{}

catalog_server::catalog_server(std::shared_ptr<const query_engine> engine, server_options options) :
        options{std::move(options)},
        cache{this->options.cache_capacity, this->options.cache_capacity_bytes},
        current_snapshot{build_catalog_snapshot(std::move(engine), 0)}
{}

void catalog_server::attach_store(const layout_store* store) noexcept
{
    this->store = store;
}

std::shared_ptr<const catalog_snapshot> catalog_server::snapshot() const
{
    const std::scoped_lock lock{snapshot_mutex};
    return current_snapshot;
}

void catalog_server::publish(std::shared_ptr<const query_engine> engine)
{
    std::uint64_t generation = 0;
    {
        const std::scoped_lock lock{snapshot_mutex};
        generation = next_generation++;
    }
    auto snapshot = build_catalog_snapshot(std::move(engine), generation);
    // invalidate BEFORE the swap: once the cache's accepted generation has
    // advanced, a put() raced from a handler still rendering against the old
    // snapshot is rejected — the stale-200-after-regeneration window closes
    cache.invalidate(generation);
    {
        const std::scoped_lock lock{snapshot_mutex};
        current_snapshot = snapshot;
    }
    auto& reg = tel::registry::instance();
    reg.get_gauge("server.snapshot_generation").set(static_cast<double>(generation));
    reg.get_gauge("server.cache_bytes").set(static_cast<double>(cache.bytes()));
    tel::log_event(tel::log_severity::info, "server", "snapshot published",
                   {{"generation", std::to_string(generation)},
                    {"pages", std::to_string(snapshot->pages.size())},
                    {"layouts", std::to_string(snapshot->engine->catalog().num_layouts())}});
}

std::uint64_t catalog_server::snapshot_generation() const
{
    return snapshot()->generation;
}

void catalog_server::start()
{
    if (active.load())
    {
        throw mnt_error{"server: already running"};
    }
    stopping.store(false);

    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
    {
        throw mnt_error{std::string{"server: socket(): "} + std::strerror(errno)};
    }
    const int enable = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &address.sin_addr) != 1)
    {
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{"server: invalid bind address '" + options.host + "'"};
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0)
    {
        const auto detail = std::string{std::strerror(errno)};
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{"server: bind(" + options.host + ":" + std::to_string(options.port) + "): " + detail};
    }
    socklen_t length = sizeof(address);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address), &length);
    bound_port = ntohs(address.sin_port);
    if (::listen(listen_fd, 256) != 0)
    {
        const auto detail = std::string{std::strerror(errno)};
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{std::string{"server: listen(): "} + detail};
    }
    set_nonblocking(listen_fd);

    const auto num_loops = std::max<std::size_t>(1, options.threads);
    loops.clear();
    for (std::size_t i = 0; i < num_loops; ++i)
    {
        auto loop = std::make_unique<event_loop>();
        loop->epoll_fd = ::epoll_create1(0);
        loop->wake_fd = ::eventfd(0, EFD_NONBLOCK);
        if (loop->epoll_fd < 0 || loop->wake_fd < 0)
        {
            throw mnt_error{std::string{"server: epoll/eventfd: "} + std::strerror(errno)};
        }
        epoll_event wake{};
        wake.events = EPOLLIN;
        wake.data.fd = loop->wake_fd;
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &wake);

        epoll_event accept_event{};
#ifdef EPOLLEXCLUSIVE
        accept_event.events = EPOLLIN | EPOLLEXCLUSIVE;
#else
        accept_event.events = EPOLLIN;
#endif
        accept_event.data.fd = listen_fd;
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd, &accept_event);
        loop->accept_armed = true;
        loops.push_back(std::move(loop));
    }

    active.store(true);
    open_connections.store(0);
    loop_threads.reserve(num_loops);
    for (auto& loop : loops)
    {
        loop_threads.emplace_back([this, raw = loop.get()] { loop_thread(*raw); });
    }
    tel::registry::instance().get_gauge("server.workers").set(static_cast<double>(num_loops));
    tel::log_event(tel::log_severity::info, "server", "listening",
                   {{"host", options.host},
                    {"port", std::to_string(bound_port)},
                    {"loops", std::to_string(num_loops)}});
}

void catalog_server::stop()
{
    const auto was_active = active.load();
    stopping.store(true);
    for (const auto& loop : loops)
    {
        if (loop && loop->wake_fd >= 0)
        {
            const std::uint64_t one = 1;
            [[maybe_unused]] const auto n = ::write(loop->wake_fd, &one, sizeof(one));
        }
    }
    for (auto& thread : loop_threads)
    {
        if (thread.joinable())
        {
            thread.join();
        }
    }
    loop_threads.clear();
    loops.clear();
    if (listen_fd >= 0)
    {
        ::close(listen_fd);
        listen_fd = -1;
    }
    active.store(false);
    if (was_active)
    {
        tel::log_event(tel::log_severity::info, "server", "stopped", {{"uptime_s", std::to_string(uptime_s())}});
    }
}

catalog_server::~catalog_server()
{
    stop();
}

std::uint16_t catalog_server::port() const noexcept
{
    return bound_port;
}

bool catalog_server::running() const noexcept
{
    return active.load();
}

// --------------------------------------------------------------- event loops

void catalog_server::loop_thread(event_loop& loop)
{
    epoll_event events[64];
    for (;;)
    {
        if (stopping.load() && !loop.draining)
        {
            // begin the drain: stop accepting, close idle connections, keep
            // serving connections that still owe or await bytes
            loop.draining = true;
            loop.drain_deadline = clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                                                          std::chrono::duration<double>(options.drain_timeout_s));
            if (loop.accept_armed)
            {
                ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
                loop.accept_armed = false;
            }
            std::vector<int> idle;
            for (const auto& [fd, conn] : loop.connections)
            {
                if (!conn.reading && conn.outpos >= conn.outbuf.size())
                {
                    idle.push_back(fd);
                }
            }
            for (const int fd : idle)
            {
                close_connection(loop, fd);
            }
        }
        if (loop.draining &&
            (loop.connections.empty() || clock_type::now() >= loop.drain_deadline))
        {
            break;
        }

        // re-arm accepting after an error backoff
        if (!loop.draining && !loop.accept_armed && clock_type::now() >= loop.accept_resume_at)
        {
            epoll_event accept_event{};
#ifdef EPOLLEXCLUSIVE
            accept_event.events = EPOLLIN | EPOLLEXCLUSIVE;
#else
            accept_event.events = EPOLLIN;
#endif
            accept_event.data.fd = listen_fd;
            ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, listen_fd, &accept_event);
            loop.accept_armed = true;
        }

        const int n = ::epoll_wait(loop.epoll_fd, events, 64, 50);
        for (int i = 0; i < n; ++i)
        {
            const int fd = events[i].data.fd;
            if (fd == loop.wake_fd)
            {
                std::uint64_t drained = 0;
                [[maybe_unused]] const auto r = ::read(loop.wake_fd, &drained, sizeof(drained));
                continue;
            }
            if (fd == listen_fd)
            {
                accept_ready(loop);
                continue;
            }
            const auto found = loop.connections.find(fd);
            if (found == loop.connections.end())
            {
                continue;  // closed earlier in this batch
            }
            auto& conn = found->second;
            if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 && (events[i].events & EPOLLIN) == 0)
            {
                close_connection(loop, fd);
                continue;
            }
            if ((events[i].events & EPOLLIN) != 0)
            {
                connection_readable(loop, conn);
                // the handler may have closed the connection
                if (loop.connections.find(fd) == loop.connections.end())
                {
                    continue;
                }
            }
            if ((events[i].events & EPOLLOUT) != 0)
            {
                connection_writable(loop, conn);
            }
        }
        sweep_deadlines(loop);
    }

    // drain budget exhausted (or clean): close whatever remains
    std::vector<int> remaining;
    remaining.reserve(loop.connections.size());
    for (const auto& [fd, conn] : loop.connections)
    {
        remaining.push_back(fd);
    }
    for (const int fd : remaining)
    {
        close_connection(loop, fd);
    }
    ::close(loop.epoll_fd);
    ::close(loop.wake_fd);
    loop.epoll_fd = -1;
    loop.wake_fd = -1;
}

void catalog_server::accept_ready(event_loop& loop)
{
    for (;;)
    {
        if (open_connections.load() >= options.max_connections)
        {
            // fd budget: make room by shedding the oldest idle keep-alive
            // connection; with nothing idle, refuse the newcomer
            if (!shed_oldest_idle(loop))
            {
                const auto fd = ::accept(listen_fd, nullptr, nullptr);
                if (fd >= 0)
                {
                    ::close(fd);
                    count_always("server.overload_closed");
                }
                return;
            }
        }

        int fd = -1;
        if (MNT_FAULT_FIRES("server.accept"))
        {
            errno = EMFILE;  // simulated fd exhaustion (counted site grammar)
        }
        else
        {
            fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
        }
        if (fd < 0)
        {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
            {
                loop.accept_backoff_ms = 0;
                return;
            }
            if (errno == EINTR || errno == ECONNABORTED)
            {
                continue;
            }
            // persistent failure (EMFILE/ENFILE/ENOMEM...): count it, shed
            // an idle connection to free an fd, and back off exponentially —
            // a level-triggered listen fd would otherwise spin this loop at
            // 100% CPU re-reporting the same readable event
            count_always("server.accept_errors");
            shed_oldest_idle(loop);
            loop.accept_backoff_ms =
                loop.accept_backoff_ms == 0 ? 25 : std::min<std::uint32_t>(loop.accept_backoff_ms * 2, 1000);
            loop.accept_resume_at = clock_type::now() + std::chrono::milliseconds{loop.accept_backoff_ms};
            ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
            loop.accept_armed = false;
            tel::log_event(tel::log_severity::warn, "server", "accept failed; backing off",
                           {{"errno", std::string{std::strerror(errno)}},
                            {"backoff_ms", std::to_string(loop.accept_backoff_ms)}});
            return;
        }
        loop.accept_backoff_ms = 0;
        count_always("server.connections");
        open_connections.fetch_add(1);
        tel::registry::instance().get_gauge("server.open_connections")
            .set(static_cast<double>(open_connections.load()));

        connection conn{};
        conn.fd = fd;
        conn.last_activity = clock_type::now();
        loop.connections.emplace(fd, std::move(conn));

        epoll_event event{};
        event.events = EPOLLIN;
        event.data.fd = fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &event);
    }
}

bool catalog_server::shed_oldest_idle(event_loop& loop)
{
    int victim = -1;
    clock_type::time_point oldest{};
    for (const auto& [fd, conn] : loop.connections)
    {
        const bool idle = !conn.reading && conn.inbuf.empty() && conn.outpos >= conn.outbuf.size();
        if (idle && (victim < 0 || conn.last_activity < oldest))
        {
            victim = fd;
            oldest = conn.last_activity;
        }
    }
    if (victim < 0)
    {
        return false;
    }
    count_always("server.connections_shed");
    close_connection(loop, victim);
    return true;
}

void catalog_server::close_connection(event_loop& loop, const int fd)
{
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    loop.connections.erase(fd);
    open_connections.fetch_sub(1);
    tel::registry::instance().get_gauge("server.open_connections")
        .set(static_cast<double>(open_connections.load()));
}

void catalog_server::connection_readable(event_loop& loop, connection& conn)
{
    char buffer[16384];
    for (;;)
    {
        const auto n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
        if (n > 0)
        {
            if (conn.inbuf.empty() && !conn.reading)
            {
                conn.reading = true;
                conn.read_start = clock_type::now();
            }
            conn.inbuf.append(buffer, static_cast<std::size_t>(n));
            conn.last_activity = clock_type::now();
            continue;
        }
        if (n == 0)
        {
            conn.peer_closed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
        {
            break;
        }
        if (errno == EINTR)
        {
            continue;
        }
        close_connection(loop, conn.fd);
        return;
    }

    process_input(loop, conn);

    if (conn.peer_closed)
    {
        if (!conn.inbuf.empty() && !conn.close_after_flush)
        {
            // the peer left mid-request; answer 400 for the torn bytes
            tel::log_event(tel::log_severity::info, "server", "peer closed mid-request");
            conn.outbuf += serialize_response(error_response(400, "malformed HTTP request"), false, false);
        }
        conn.close_after_flush = true;
    }
    flush_output(loop, conn);
}

void catalog_server::connection_writable(event_loop& loop, connection& conn)
{
    flush_output(loop, conn);
}

void catalog_server::process_input(event_loop& loop, connection& conn)
{
    while (!conn.close_after_flush)
    {
        auto parsed = parse_http_request(conn.inbuf, options.max_request_bytes);
        if (parsed.status == http_parse_status::incomplete)
        {
            if (conn.inbuf.empty())
            {
                conn.reading = false;
            }
            return;
        }
        if (parsed.status == http_parse_status::malformed)
        {
            tel::log_event(tel::log_severity::info, "server", "malformed HTTP request");
            conn.outbuf += serialize_response(error_response(400, "malformed HTTP request"), false, false);
            conn.close_after_flush = true;
            return;
        }
        if (parsed.status == http_parse_status::too_large)
        {
            tel::log_event(tel::log_severity::warn, "server", "request exceeds the size limit",
                           {{"max_bytes", std::to_string(options.max_request_bytes)}});
            conn.outbuf += serialize_response(error_response(413, "request exceeds the size limit"), false, false);
            conn.close_after_flush = true;
            return;
        }

        conn.inbuf.erase(0, parsed.consumed);
        // each pipelined request gets a fresh read budget for its successor
        conn.reading = !conn.inbuf.empty();
        conn.read_start = clock_type::now();
        if (!conn.inbuf.empty())
        {
            count_always("server.pipelined_requests");
        }

        const auto deadline = res::deadline_clock::after(options.request_deadline_s);
        const auto response = handle(parsed.request, deadline);

        // 408 means framing trust is gone; errors on the request line keep
        // the connection only when the client asked for keep-alive
        const bool close_now =
            parsed.request.connection_close || stopping.load() || response.status == 408;
        const bool head_only = parsed.request.method == "HEAD";
        conn.outbuf += serialize_response(response, !close_now, head_only);
        if (close_now)
        {
            conn.close_after_flush = true;
        }
    }
}

void catalog_server::flush_output(event_loop& loop, connection& conn)
{
    while (conn.outpos < conn.outbuf.size())
    {
        const auto n = ::send(conn.fd, conn.outbuf.data() + conn.outpos, conn.outbuf.size() - conn.outpos,
                              MSG_NOSIGNAL);
        if (n > 0)
        {
            conn.outpos += static_cast<std::size_t>(n);
            conn.last_activity = clock_type::now();
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        {
            if (!conn.want_write)
            {
                conn.want_write = true;
                epoll_event event{};
                event.events = EPOLLIN | EPOLLOUT;
                event.data.fd = conn.fd;
                ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
            }
            return;
        }
        if (n < 0 && errno == EINTR)
        {
            continue;
        }
        close_connection(loop, conn.fd);
        return;
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    if (conn.want_write)
    {
        conn.want_write = false;
        epoll_event event{};
        event.events = EPOLLIN;
        event.data.fd = conn.fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &event);
    }
    if (conn.close_after_flush || conn.peer_closed)
    {
        close_connection(loop, conn.fd);
    }
}

void catalog_server::sweep_deadlines(event_loop& loop)
{
    std::vector<int> expired_reads;
    std::vector<int> expired_idle;
    for (const auto& [fd, conn] : loop.connections)
    {
        if (conn.reading && seconds_since(conn.read_start) > options.request_deadline_s)
        {
            expired_reads.push_back(fd);
        }
        else if (!conn.reading && conn.outpos >= conn.outbuf.size() &&
                 seconds_since(conn.last_activity) > options.idle_timeout_s)
        {
            expired_idle.push_back(fd);
        }
    }
    for (const int fd : expired_reads)
    {
        auto& conn = loop.connections.at(fd);
        count_always("server.read_timeouts");
        tel::log_event(tel::log_severity::warn, "server", "request read timed out",
                       {{"deadline_s", std::to_string(options.request_deadline_s)}});
        conn.outbuf +=
            serialize_response(error_response(408, "request was not received within the deadline"), false, false);
        conn.close_after_flush = true;
        conn.reading = false;
        conn.inbuf.clear();
        flush_output(loop, conn);
    }
    for (const int fd : expired_idle)
    {
        count_always("server.idle_closed");
        close_connection(loop, fd);
    }
}

// ------------------------------------------------------------------- routing

http_response catalog_server::handle(const http_request& request, const res::deadline_clock& deadline)
{
    const tel::span request_span{"server/request", request.method + ' ' + request.path};
    const tel::stopwatch watch;
    count_always("server.requests");

    http_response response;
    try
    {
        response = route(request, deadline);
    }
    catch (const res::deadline_exceeded& e)
    {
        response = error_response(408, e.what());
    }
    catch (const mnt_error& e)
    {
        response = error_response(400, e.what());
    }
    catch (const std::exception& e)
    {
        tel::log_event(tel::log_severity::error, "server", "unhandled exception in request handler",
                       {{"path", request.path}, {"what", e.what()}});
        response = error_response(500, e.what());
    }

    // conditional requests: a matching strong validator turns the response
    // into a bodiless 304 — the repeat visitor costs ~zero bytes
    if ((request.method == "GET" || request.method == "HEAD") && response.status == 200 &&
        !response.etag.empty() && etag_matches(request.if_none_match, response.etag))
    {
        count_always("server.not_modified");
        http_response not_modified{304, response.content_type, {}, response.etag};
        response = std::move(not_modified);
    }

    const auto elapsed = watch.seconds();
    auto& reg = tel::registry::instance();
    reg.get_counter("server.responses[code=" + std::to_string(response.status) + "]").add();
    reg.get_histogram("server.request_s").record(elapsed);
    reg.get_histogram("server.request_s[route=" + route_key(request.path) + "]").record(elapsed);
    return response;
}

http_response catalog_server::route(const http_request& request, const res::deadline_clock& deadline)
{
    deadline.throw_if_expired("server/route");

    if (!known_http_method(request.method))
    {
        return error_response(501, "method not implemented: " + request.method);
    }
    // HEAD is GET with the body suppressed at the socket layer; everything
    // else (headers, ETag, cache semantics) is identical by construction
    const bool head = request.method == "HEAD";
    const std::string& method = head ? std::string{"GET"} : request.method;
    if (method != "GET" && method != "POST")
    {
        return error_response(405, "method not allowed: " + request.method);
    }

    if (request.path == "/healthz")
    {
        return healthz_response();
    }
    if (request.path == "/metrics")
    {
        return http_response{200, "text/plain; version=0.0.4; charset=utf-8", tel::prometheus_text(), {}};
    }
    if (request.path == "/statz")
    {
        return statz_response();
    }
    if (request.path == "/benchmarks")
    {
        const auto snap = snapshot();
        count_always("server.snapshot_hits");
        return http_response{200, "application/json", snap->benchmarks.body, snap->benchmarks.etag};
    }
    if (request.path == "/layouts")
    {
        const auto query = method == "POST" ? page_query::from_json(json_value::parse(request.body)) :
                                              page_query::from_query_string(request.query);
        deadline.throw_if_expired("server/layouts");
        return page_response(query);
    }
    if (request.path == "/facets")
    {
        auto query = page_query::from_query_string(request.query);
        query.limit = 0;
        query.include_facets = true;
        deadline.throw_if_expired("server/facets");
        return page_response(query);
    }
    if (request.path == "/best")
    {
        auto query = page_query::from_query_string(request.query);
        query.filter.best_only = true;
        deadline.throw_if_expired("server/best");
        return page_response(query);
    }
    if (request.path.rfind("/download/", 0) == 0)
    {
        if (method != "GET")
        {
            return error_response(405, "downloads are GET-only");
        }
        // ids are 32 lowercase hex digits; reject anything else up front so
        // hostile ids (path traversal, case variants) never reach the store
        // or the filesystem
        const auto id = request.path.substr(10);
        if (!is_valid_blob_id(id))
        {
            return error_response(404, "no layout with id '" + id + "'");
        }
        return download_response(id);
    }
    return error_response(404, "no such route: " + request.path);
}

http_response catalog_server::page_response(const page_query& query)
{
    const auto key = query.cache_key();
    const auto snap = snapshot();

    // hot path: the default pages were rendered when the snapshot was built
    if (const auto found = snap->pages.find(key); found != snap->pages.cend())
    {
        count_always("server.snapshot_hits");
        return http_response{200, "application/json", found->second.body, found->second.etag};
    }
    if (auto cached = cache.get(key); cached.has_value())
    {
        count_always("server.cache_hits");
        return http_response{200, "application/json", std::move(cached->body), std::move(cached->etag)};
    }
    count_always("server.cache_misses");
    auto body = page_json_string(snap->engine->run(query));
    auto etag = make_etag(body);
    cache.put(key, body, etag, snap->generation);
    tel::registry::instance().get_gauge("server.cache_bytes").set(static_cast<double>(cache.bytes()));
    return http_response{200, "application/json", std::move(body), std::move(etag)};
}

http_response catalog_server::healthz_response()
{
    const auto snap = snapshot();
    auto document = json_value::make_object();
    document.set("status", json_value{std::string{"ok"}});
    document.set("layouts", json_value{static_cast<std::uint64_t>(snap->engine->catalog().num_layouts())});
    document.set("uptime_s", json_value{uptime_s()});
    document.set("version", json_value{prov::build_info().version});
    return http_response{200, "application/json", document.dump(), {}};
}

http_response catalog_server::statz_response()
{
    auto& reg = tel::registry::instance();
    const auto& info = prov::build_info();
    const auto snap = snapshot();

    auto document = json_value::make_object();
    document.set("uptime_s", json_value{uptime_s()});

    auto build = json_value::make_object();
    build.set("version", json_value{info.version});
    build.set("compiler", json_value{info.compiler});
    build.set("build_type", json_value{info.build_type});
    build.set("cxx_standard", json_value{info.cxx_standard});
    document.set("build", std::move(build));

    auto srv = json_value::make_object();
    srv.set("requests", json_value{reg.get_counter("server.requests").value()});
    srv.set("connections", json_value{reg.get_counter("server.connections").value()});
    srv.set("open_connections", json_value{static_cast<std::uint64_t>(open_connections.load())});
    srv.set("read_timeouts", json_value{reg.get_counter("server.read_timeouts").value()});
    srv.set("accept_errors", json_value{reg.get_counter("server.accept_errors").value()});
    srv.set("not_modified", json_value{reg.get_counter("server.not_modified").value()});
    srv.set("workers", json_value{static_cast<std::uint64_t>(loops.size())});
    srv.set("cache_entries", json_value{static_cast<std::uint64_t>(cache.size())});
    srv.set("cache_bytes", json_value{static_cast<std::uint64_t>(cache.bytes())});
    srv.set("snapshot_generation", json_value{snap->generation});
    srv.set("snapshot_pages", json_value{static_cast<std::uint64_t>(snap->pages.size())});
    document.set("server", std::move(srv));

    // per-route p50/p95/p99 estimated from the log-bucket latency histograms
    auto latency = json_value::make_object();
    for (const auto& h : reg.histograms())
    {
        const auto identity = tel::parse_instrument_name(h.name);
        if (identity.base != "server.request_s" || identity.labels.empty())
        {
            continue;
        }
        auto entry = json_value::make_object();
        entry.set("count", json_value{h.count});
        entry.set("p50_s", json_value{tel::histogram_quantile(h, 0.50)});
        entry.set("p95_s", json_value{tel::histogram_quantile(h, 0.95)});
        entry.set("p99_s", json_value{tel::histogram_quantile(h, 0.99)});
        latency.set(identity.labels.front().second, std::move(entry));
    }
    document.set("request_latency_s", std::move(latency));

    if (store != nullptr)
    {
        auto st = json_value::make_object();
        st.set("networks", json_value{static_cast<std::uint64_t>(store->num_networks())});
        st.set("layouts", json_value{static_cast<std::uint64_t>(store->num_layouts())});
        st.set("failures", json_value{static_cast<std::uint64_t>(store->num_failures())});
        st.set("open_issues", json_value{static_cast<std::uint64_t>(store->open_issues().size())});
        document.set("store", std::move(st));
    }

    auto& log = tel::event_log::instance();
    auto events = json_value::make_object();
    events.set("total", json_value{log.total_logged()});
    events.set("overwritten", json_value{log.overwritten()});
    document.set("eventlog", std::move(events));

    auto trace = json_value::make_object();
    trace.set("recording", json_value{tel::trace_recording()});
    trace.set("events", json_value{static_cast<std::uint64_t>(reg.trace_events().size())});
    trace.set("dropped", json_value{reg.dropped_trace_events()});
    document.set("trace", std::move(trace));

    return http_response{200, "application/json", document.dump(), {}};
}

double catalog_server::uptime_s() const noexcept
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at).count();
}

std::string catalog_server::route_key(const std::string& path)
{
    static constexpr const char* known[] = {"/healthz", "/metrics", "/statz",  "/benchmarks",
                                            "/layouts", "/facets",  "/best"};
    for (const char* route : known)
    {
        if (path == route)
        {
            return route;
        }
    }
    if (path.rfind("/download/", 0) == 0)
    {
        return "/download";
    }
    return "other";
}

bool catalog_server::is_valid_blob_id(const std::string& id) noexcept
{
    if (id.size() != 32)
    {
        return false;
    }
    return std::all_of(id.cbegin(), id.cend(), [](const unsigned char ch)
                       { return (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'); });
}

http_response catalog_server::download_response(const std::string& id)
{
    // a blob id IS its content hash, so it doubles as the strong ETag
    if (store != nullptr)
    {
        if (const auto path = store->blob_path(id); path.has_value())
        {
            count_always("server.downloads");
            return http_response{200, "application/xml", read_file(*path), id};
        }
    }
    const auto snap = snapshot();
    if (const auto index = snap->engine->index_of(id); index.has_value())
    {
        tel::count("server.downloads");
        return http_response{200, "application/xml",
                             io::write_fgl_string(snap->engine->catalog().layouts()[*index].layout), id};
    }
    return error_response(404, "no layout with id '" + id + "'");
}

}  // namespace mnt::svc
