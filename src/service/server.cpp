#include "service/server.hpp"

#include "common/provenance.hpp"
#include "io/fgl_writer.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace mnt::svc
{

namespace
{

const char* status_text(const int status) noexcept
{
    switch (status)
    {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Payload Too Large";
        case 500: return "Internal Server Error";
    }
    return "Status";
}

/// Server metrics are recorded unconditionally — not gated by MNT_TELEMETRY
/// — so a /metrics scrape of an otherwise-unconfigured server is still
/// informative. Registry instrument references are stable for the process
/// lifetime, which is what makes direct recording safe here.
void count_always(const std::string_view name, const std::uint64_t delta = 1)
{
    tel::registry::instance().get_counter(name).add(delta);
}

http_response error_response(const int status, const std::string& message)
{
    auto error = json_value::make_object();
    error.set("status", json_value{static_cast<std::uint64_t>(status)});
    error.set("message", json_value{message});
    auto document = json_value::make_object();
    document.set("error", std::move(error));
    return http_response{status, "application/json", document.dump()};
}

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux fallback; pair with an external SIGPIPE handler
#endif

/// Sends the whole buffer, honoring SO_SNDTIMEO; returns false on error.
/// MSG_NOSIGNAL turns a peer that closed the connection into an EPIPE error
/// instead of a process-killing SIGPIPE.
bool send_all(const int fd, const std::string& bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size())
    {
        const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
        {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void set_socket_timeout(const int fd, const double seconds)
{
    // never pass a zero timeval: SO_RCVTIMEO/SO_SNDTIMEO treat it as
    // "block forever"
    const auto bounded = std::max(seconds, 1e-3);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(bounded);
    tv.tv_usec = static_cast<suseconds_t>((bounded - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

[[nodiscard]] bool iequals(const std::string_view a, const std::string_view b) noexcept
{
    if (a.size() != b.size())
    {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        const auto la = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] + 32) : a[i];
        const auto lb = b[i] >= 'A' && b[i] <= 'Z' ? static_cast<char>(b[i] + 32) : b[i];
        if (la != lb)
        {
            return false;
        }
    }
    return true;
}

/// Outcome of reading one request off a connection.
struct read_result
{
    bool ok{false};
    bool too_large{false};
    bool malformed{false};
    bool timed_out{false};
    http_request request;
};

/// One bounded recv against the request deadline: SO_RCVTIMEO is shrunk to
/// the remaining budget before every call, so a slow-loris client trickling
/// bytes cannot stretch a read beyond \p deadline no matter how many
/// one-byte packets it sends. Returns the recv count, or -2 when the
/// deadline expired (before or during the call).
ssize_t recv_within_deadline(const int fd, char* buffer, const std::size_t capacity,
                             const res::deadline_clock& deadline)
{
    const auto remaining = deadline.remaining_s();
    if (remaining <= 0.0)
    {
        return -2;
    }
    if (std::isfinite(remaining))
    {
        set_socket_timeout(fd, remaining);
    }
    const auto n = ::recv(fd, buffer, capacity, 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
    {
        return -2;
    }
    return n;
}

read_result read_request(const int fd, const std::size_t max_bytes, const res::deadline_clock& deadline)
{
    read_result result{};
    std::string data;
    char buffer[4096];

    while (true)
    {
        auto parsed = parse_http_request(data, max_bytes);
        switch (parsed.status)
        {
            case http_parse_status::ok:
                result.ok = true;
                result.request = std::move(parsed.request);
                return result;
            case http_parse_status::malformed: result.malformed = true; return result;
            case http_parse_status::too_large: result.too_large = true; return result;
            case http_parse_status::incomplete: break;
        }
        const auto n = recv_within_deadline(fd, buffer, sizeof(buffer), deadline);
        if (n == -2)
        {
            result.timed_out = true;
            return result;
        }
        if (n <= 0)
        {
            // peer closed mid-request; an empty read on a fresh connection is
            // not an error, anything else is
            result.malformed = !data.empty();
            return result;
        }
        data.append(buffer, static_cast<std::size_t>(n));
    }
}

}  // namespace

http_parse_result parse_http_request(const std::string_view bytes, const std::size_t max_bytes)
{
    http_parse_result result{};

    const auto header_end = bytes.find("\r\n\r\n");
    if (header_end == std::string_view::npos)
    {
        result.status = bytes.size() > max_bytes ? http_parse_status::too_large : http_parse_status::incomplete;
        return result;
    }

    // request line: METHOD SP target SP HTTP/1.x
    const auto line_end = bytes.find("\r\n");
    const auto line = bytes.substr(0, line_end);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.find(' ', sp1 == std::string_view::npos ? std::string_view::npos : sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.substr(sp2 + 1).substr(0, 7) != "HTTP/1.")
    {
        result.status = http_parse_status::malformed;
        return result;
    }
    result.request.method = std::string{line.substr(0, sp1)};
    const auto target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto question = target.find('?');
    result.request.path = std::string{target.substr(0, question)};
    if (question != std::string_view::npos)
    {
        result.request.query = std::string{target.substr(question + 1)};
    }

    // headers: only Content-Length matters to this server
    std::size_t content_length = 0;
    std::size_t pos = line_end + 2;
    while (pos < header_end)
    {
        const auto eol = bytes.find("\r\n", pos);
        const auto header = bytes.substr(pos, eol - pos);
        const auto colon = header.find(':');
        if (colon != std::string_view::npos && iequals(header.substr(0, colon), "content-length"))
        {
            const std::string value{header.substr(colon + 1)};
            content_length = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
        }
        pos = eol + 2;
    }

    const auto body_start = header_end + 4;
    // subtract instead of adding: body_start + content_length can wrap
    // around for a hostile Content-Length near SIZE_MAX, turning an
    // oversized request into a never-completing "incomplete" one
    if (body_start > max_bytes || content_length > max_bytes - body_start)
    {
        result.status = http_parse_status::too_large;
        return result;
    }
    if (bytes.size() - body_start < content_length)
    {
        result.status = http_parse_status::incomplete;
        return result;
    }
    result.request.body = std::string{bytes.substr(body_start, content_length)};
    result.consumed = body_start + content_length;
    result.status = http_parse_status::ok;
    return result;
}

// ------------------------------------------------------------ response_cache

response_cache::response_cache(const std::size_t capacity) : capacity{capacity} {}

std::optional<std::string> response_cache::get(const std::string& key)
{
    const std::scoped_lock lock{mutex};
    const auto found = index.find(key);
    if (found == index.cend())
    {
        return std::nullopt;
    }
    entries.splice(entries.begin(), entries, found->second);
    return found->second->second;
}

void response_cache::put(const std::string& key, const std::string& body)
{
    if (capacity == 0)
    {
        return;
    }
    const std::scoped_lock lock{mutex};
    const auto found = index.find(key);
    if (found != index.cend())
    {
        found->second->second = body;
        entries.splice(entries.begin(), entries, found->second);
        return;
    }
    entries.emplace_front(key, body);
    index.emplace(key, entries.begin());
    while (entries.size() > capacity)
    {
        index.erase(entries.back().first);
        entries.pop_back();
    }
}

std::size_t response_cache::size() const
{
    const std::scoped_lock lock{mutex};
    return entries.size();
}

// ------------------------------------------------------------ catalog_server

catalog_server::catalog_server(const query_engine& engine, server_options options) :
        engine{engine},
        options{std::move(options)},
        cache{this->options.cache_capacity}
{}

void catalog_server::attach_store(const layout_store* store) noexcept
{
    this->store = store;
}

void catalog_server::start()
{
    if (active.load())
    {
        throw mnt_error{"server: already running"};
    }
    stopping.store(false);

    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
    {
        throw mnt_error{std::string{"server: socket(): "} + std::strerror(errno)};
    }
    const int enable = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &address.sin_addr) != 1)
    {
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{"server: invalid bind address '" + options.host + "'"};
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0)
    {
        const auto detail = std::string{std::strerror(errno)};
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{"server: bind(" + options.host + ":" + std::to_string(options.port) + "): " + detail};
    }
    socklen_t length = sizeof(address);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address), &length);
    bound_port = ntohs(address.sin_port);
    if (::listen(listen_fd, 64) != 0)
    {
        const auto detail = std::string{std::strerror(errno)};
        ::close(listen_fd);
        listen_fd = -1;
        throw mnt_error{std::string{"server: listen(): "} + detail};
    }

    active.store(true);
    acceptor = std::thread{[this] { accept_loop(); }};
    const auto num_workers = std::max<std::size_t>(1, options.threads);
    workers.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i)
    {
        workers.emplace_back([this] { worker_loop(); });
    }
    tel::registry::instance().get_gauge("server.workers").set(static_cast<double>(num_workers));
    tel::log_event(tel::log_severity::info, "server", "listening",
                   {{"host", options.host},
                    {"port", std::to_string(bound_port)},
                    {"workers", std::to_string(num_workers)}});
}

void catalog_server::stop()
{
    const auto was_active = active.load();
    stopping.store(true);
    queue_ready.notify_all();
    if (acceptor.joinable())
    {
        acceptor.join();
    }
    for (auto& worker : workers)
    {
        if (worker.joinable())
        {
            worker.join();
        }
    }
    workers.clear();
    if (listen_fd >= 0)
    {
        ::close(listen_fd);
        listen_fd = -1;
    }
    active.store(false);
    if (was_active)
    {
        tel::log_event(tel::log_severity::info, "server", "stopped", {{"uptime_s", std::to_string(uptime_s())}});
    }
}

catalog_server::~catalog_server()
{
    stop();
}

std::uint16_t catalog_server::port() const noexcept
{
    return bound_port;
}

bool catalog_server::running() const noexcept
{
    return active.load();
}

void catalog_server::accept_loop()
{
    while (!stopping.load())
    {
        pollfd poller{listen_fd, POLLIN, 0};
        const auto ready = ::poll(&poller, 1, 200);  // finite timeout so stop() is noticed promptly
        if (ready <= 0)
        {
            continue;
        }
        const auto fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
        {
            continue;
        }
        count_always("server.connections");
        {
            const std::scoped_lock lock{queue_mutex};
            pending.push_back(fd);
        }
        queue_ready.notify_one();
    }
}

void catalog_server::worker_loop()
{
    while (true)
    {
        int fd = -1;
        {
            std::unique_lock lock{queue_mutex};
            queue_ready.wait(lock, [this] { return stopping.load() || !pending.empty(); });
            if (pending.empty())
            {
                return;  // stopping and fully drained
            }
            fd = pending.front();
            pending.pop_front();
        }
        serve_connection(fd);
    }
}

void catalog_server::serve_connection(const int fd)
{
    set_socket_timeout(fd, options.request_deadline_s);
    const auto deadline = res::deadline_clock::after(options.request_deadline_s);

    const auto incoming = read_request(fd, options.max_request_bytes, deadline);
    http_response response;
    if (incoming.ok)
    {
        response = handle(incoming.request, deadline);
    }
    else if (incoming.timed_out)
    {
        count_always("server.read_timeouts");
        tel::log_event(tel::log_severity::warn, "server", "request read timed out",
                       {{"deadline_s", std::to_string(options.request_deadline_s)}});
        response = error_response(408, "request was not received within the deadline");
    }
    else if (incoming.too_large)
    {
        tel::log_event(tel::log_severity::warn, "server", "request exceeds the size limit",
                       {{"max_bytes", std::to_string(options.max_request_bytes)}});
        response = error_response(413, "request exceeds the size limit");
    }
    else if (incoming.malformed)
    {
        tel::log_event(tel::log_severity::info, "server", "malformed HTTP request");
        response = error_response(400, "malformed HTTP request");
    }
    else
    {
        ::close(fd);  // the peer connected and left without sending anything
        return;
    }

    std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " + status_text(response.status) + "\r\n";
    head += "Content-Type: " + response.content_type + "\r\n";
    head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    head += "Connection: close\r\n\r\n";
    if (send_all(fd, head))
    {
        send_all(fd, response.body);
    }
    ::close(fd);
}

http_response catalog_server::handle(const http_request& request, const res::deadline_clock& deadline)
{
    const tel::span request_span{"server/request", request.method + ' ' + request.path};
    const tel::stopwatch watch;
    count_always("server.requests");

    http_response response;
    try
    {
        response = route(request, deadline);
    }
    catch (const res::deadline_exceeded& e)
    {
        response = error_response(408, e.what());
    }
    catch (const mnt_error& e)
    {
        response = error_response(400, e.what());
    }
    catch (const std::exception& e)
    {
        tel::log_event(tel::log_severity::error, "server", "unhandled exception in request handler",
                       {{"path", request.path}, {"what", e.what()}});
        response = error_response(500, e.what());
    }

    const auto elapsed = watch.seconds();
    auto& reg = tel::registry::instance();
    reg.get_counter("server.responses[code=" + std::to_string(response.status) + "]").add();
    reg.get_histogram("server.request_s").record(elapsed);
    reg.get_histogram("server.request_s[route=" + route_key(request.path) + "]").record(elapsed);
    return response;
}

http_response catalog_server::route(const http_request& request, const res::deadline_clock& deadline)
{
    deadline.throw_if_expired("server/route");

    if (request.method != "GET" && request.method != "POST")
    {
        return error_response(405, "method not allowed: " + request.method);
    }

    if (request.path == "/healthz")
    {
        return healthz_response();
    }
    if (request.path == "/metrics")
    {
        return http_response{200, "text/plain; version=0.0.4; charset=utf-8", tel::prometheus_text()};
    }
    if (request.path == "/statz")
    {
        return statz_response();
    }
    if (request.path == "/benchmarks")
    {
        return benchmarks_response();
    }
    if (request.path == "/layouts")
    {
        const auto query = request.method == "POST" ?
                               page_query::from_json(json_value::parse(request.body)) :
                               page_query::from_query_string(request.query);
        deadline.throw_if_expired("server/layouts");
        return page_response(query);
    }
    if (request.path == "/facets")
    {
        auto query = page_query::from_query_string(request.query);
        query.limit = 0;
        query.include_facets = true;
        deadline.throw_if_expired("server/facets");
        return page_response(query);
    }
    if (request.path == "/best")
    {
        auto query = page_query::from_query_string(request.query);
        query.filter.best_only = true;
        deadline.throw_if_expired("server/best");
        return page_response(query);
    }
    if (request.path.rfind("/download/", 0) == 0)
    {
        if (request.method != "GET")
        {
            return error_response(405, "downloads are GET-only");
        }
        // ids are 32 lowercase hex digits; reject anything else up front so
        // hostile ids (path traversal, case variants) never reach the store
        // or the filesystem
        const auto id = request.path.substr(10);
        if (!is_valid_blob_id(id))
        {
            return error_response(404, "no layout with id '" + id + "'");
        }
        return download_response(id);
    }
    return error_response(404, "no such route: " + request.path);
}

http_response catalog_server::page_response(const page_query& query)
{
    const auto key = query.cache_key();
    if (auto cached = cache.get(key); cached.has_value())
    {
        count_always("server.cache_hits");
        return http_response{200, "application/json", std::move(*cached)};
    }
    count_always("server.cache_misses");
    auto body = page_json_string(engine.run(query));
    cache.put(key, body);
    return http_response{200, "application/json", std::move(body)};
}

http_response catalog_server::benchmarks_response()
{
    const auto& cat = engine.catalog();
    std::map<std::pair<std::string, std::string>, std::size_t> layout_counts;
    for (const auto& r : cat.layouts())
    {
        ++layout_counts[{r.benchmark_set, r.benchmark_name}];
    }

    auto rows = json_value::make_array();
    for (const auto& n : cat.networks())
    {
        auto row = json_value::make_object();
        row.set("set", json_value{n.benchmark_set});
        row.set("name", json_value{n.benchmark_name});
        row.set("inputs", json_value{static_cast<std::uint64_t>(n.num_pis)});
        row.set("outputs", json_value{static_cast<std::uint64_t>(n.num_pos)});
        row.set("gates", json_value{static_cast<std::uint64_t>(n.num_gates)});
        const auto found = layout_counts.find({n.benchmark_set, n.benchmark_name});
        row.set("layouts", json_value{static_cast<std::uint64_t>(found != layout_counts.cend() ? found->second : 0)});
        rows.push_back(std::move(row));
    }
    auto document = json_value::make_object();
    document.set("count", json_value{static_cast<std::uint64_t>(cat.num_networks())});
    document.set("benchmarks", std::move(rows));
    return http_response{200, "application/json", document.dump()};
}

http_response catalog_server::healthz_response()
{
    auto document = json_value::make_object();
    document.set("status", json_value{std::string{"ok"}});
    document.set("layouts", json_value{static_cast<std::uint64_t>(engine.catalog().num_layouts())});
    document.set("uptime_s", json_value{uptime_s()});
    document.set("version", json_value{prov::build_info().version});
    return http_response{200, "application/json", document.dump()};
}

http_response catalog_server::statz_response()
{
    auto& reg = tel::registry::instance();
    const auto& info = prov::build_info();

    auto document = json_value::make_object();
    document.set("uptime_s", json_value{uptime_s()});

    auto build = json_value::make_object();
    build.set("version", json_value{info.version});
    build.set("compiler", json_value{info.compiler});
    build.set("build_type", json_value{info.build_type});
    build.set("cxx_standard", json_value{info.cxx_standard});
    document.set("build", std::move(build));

    auto srv = json_value::make_object();
    srv.set("requests", json_value{reg.get_counter("server.requests").value()});
    srv.set("connections", json_value{reg.get_counter("server.connections").value()});
    srv.set("read_timeouts", json_value{reg.get_counter("server.read_timeouts").value()});
    srv.set("workers", json_value{static_cast<std::uint64_t>(workers.size())});
    srv.set("cache_entries", json_value{static_cast<std::uint64_t>(cache.size())});
    document.set("server", std::move(srv));

    // per-route p50/p95/p99 estimated from the log-bucket latency histograms
    auto latency = json_value::make_object();
    for (const auto& h : reg.histograms())
    {
        const auto identity = tel::parse_instrument_name(h.name);
        if (identity.base != "server.request_s" || identity.labels.empty())
        {
            continue;
        }
        auto entry = json_value::make_object();
        entry.set("count", json_value{h.count});
        entry.set("p50_s", json_value{tel::histogram_quantile(h, 0.50)});
        entry.set("p95_s", json_value{tel::histogram_quantile(h, 0.95)});
        entry.set("p99_s", json_value{tel::histogram_quantile(h, 0.99)});
        latency.set(identity.labels.front().second, std::move(entry));
    }
    document.set("request_latency_s", std::move(latency));

    if (store != nullptr)
    {
        auto st = json_value::make_object();
        st.set("networks", json_value{static_cast<std::uint64_t>(store->num_networks())});
        st.set("layouts", json_value{static_cast<std::uint64_t>(store->num_layouts())});
        st.set("failures", json_value{static_cast<std::uint64_t>(store->num_failures())});
        st.set("open_issues", json_value{static_cast<std::uint64_t>(store->open_issues().size())});
        document.set("store", std::move(st));
    }

    auto& log = tel::event_log::instance();
    auto events = json_value::make_object();
    events.set("total", json_value{log.total_logged()});
    events.set("overwritten", json_value{log.overwritten()});
    document.set("eventlog", std::move(events));

    auto trace = json_value::make_object();
    trace.set("recording", json_value{tel::trace_recording()});
    trace.set("events", json_value{static_cast<std::uint64_t>(reg.trace_events().size())});
    trace.set("dropped", json_value{reg.dropped_trace_events()});
    document.set("trace", std::move(trace));

    return http_response{200, "application/json", document.dump()};
}

double catalog_server::uptime_s() const noexcept
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at).count();
}

std::string catalog_server::route_key(const std::string& path)
{
    static constexpr const char* known[] = {"/healthz", "/metrics", "/statz",  "/benchmarks",
                                            "/layouts", "/facets",  "/best"};
    for (const char* route : known)
    {
        if (path == route)
        {
            return route;
        }
    }
    if (path.rfind("/download/", 0) == 0)
    {
        return "/download";
    }
    return "other";
}

bool catalog_server::is_valid_blob_id(const std::string& id) noexcept
{
    if (id.size() != 32)
    {
        return false;
    }
    return std::all_of(id.cbegin(), id.cend(), [](const unsigned char ch)
                       { return (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'); });
}

http_response catalog_server::download_response(const std::string& id)
{
    if (store != nullptr)
    {
        if (const auto path = store->blob_path(id); path.has_value())
        {
            count_always("server.downloads");
            return http_response{200, "application/xml", read_file(*path)};
        }
    }
    if (const auto index = engine.index_of(id); index.has_value())
    {
        tel::count("server.downloads");
        return http_response{200, "application/xml",
                             io::write_fgl_string(engine.catalog().layouts()[*index].layout)};
    }
    return error_response(404, "no layout with id '" + id + "'");
}

}  // namespace mnt::svc
