#pragma once

/// \file trace_export.hpp
/// \brief Chrome/Perfetto trace-event JSON export of the telemetry timeline:
///        every span closed while \ref mnt::tel::trace_recording was on
///        becomes one complete ("ph":"X") event with microsecond timestamps,
///        a process id, a dense thread id and an optional `args.detail`
///        string — loadable in `chrome://tracing`, Perfetto UI and Speedscope.
///
/// Activation paths:
///
/// - `MNT_TRACE_OUT=<path>` in the environment turns recording on at process
///   start; the CLIs call \ref export_trace_if_requested on exit to write
///   the file.
/// - `--trace-out <path>` on mnt_bench / mnt_bench_serve does the same
///   without touching the environment (they call
///   \ref set_trace_recording(true) up front and
///   \ref write_chrome_trace_file at the end).
///
/// The emitted document is the "JSON Object Format" of the trace-event spec:
/// a top-level object with a `traceEvents` array (metadata `ph:"M"`
/// thread_name/process_name events first, then the spans),
/// `displayTimeUnit`, and an `otherData` object carrying build provenance
/// and the dropped-event count.

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::tel
{

/// Options for the trace writer.
struct chrome_trace_options
{
    /// Process name shown in the viewer's process header.
    std::string process_name{"mnt_bench"};
};

/// Writes the current timeline buffer as Chrome trace-event JSON to \p out.
/// Valid (and loadable) even when the buffer is empty.
void write_chrome_trace(std::ostream& out, const chrome_trace_options& options = {});

/// \ref write_chrome_trace into a string (tests, HTTP handlers).
[[nodiscard]] std::string chrome_trace_string(const chrome_trace_options& options = {});

/// \ref write_chrome_trace into a file (truncating).
///
/// \throws mnt::mnt_error when the file cannot be opened or written
void write_chrome_trace_file(const std::filesystem::path& path, const chrome_trace_options& options = {});

/// When the MNT_TRACE_OUT environment variable names a path and the timeline
/// recorded at least one event, writes the trace there and returns the path;
/// returns an empty path otherwise. Errors are reported to stderr, not
/// thrown — trace export must never turn a successful run into a failure.
std::filesystem::path export_trace_if_requested();

}  // namespace mnt::tel
