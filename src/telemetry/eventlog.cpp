#include "telemetry/eventlog.hpp"

#include "common/types.hpp"
#include "telemetry/text_escape.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>

namespace mnt::tel
{

namespace
{

using detail::json_escape_utf8;

double unix_now_s() noexcept
{
    return std::chrono::duration<double>(std::chrono::system_clock::now().time_since_epoch()).count();
}

}  // namespace

const char* severity_name(const log_severity severity) noexcept
{
    switch (severity)
    {
        case log_severity::debug: return "debug";
        case log_severity::info: return "info";
        case log_severity::warn: return "warn";
        case log_severity::error: return "error";
    }
    return "info";
}

log_severity parse_severity(const std::string_view name) noexcept
{
    if (name == "debug")
    {
        return log_severity::debug;
    }
    if (name == "warn" || name == "warning")
    {
        return log_severity::warn;
    }
    if (name == "error")
    {
        return log_severity::error;
    }
    return log_severity::info;
}

std::string log_record_json(const log_record& record)
{
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%.3f", record.ts);
    std::string line = "{\"ts\": ";
    line += ts;
    line += ", \"severity\": \"";
    line += severity_name(record.severity);
    line += "\", \"component\": \"";
    line += json_escape_utf8(record.component);
    line += "\", \"message\": \"";
    line += json_escape_utf8(record.message);
    line += "\"";
    if (!record.fields.empty())
    {
        line += ", \"fields\": {";
        bool first = true;
        for (const auto& [key, value] : record.fields)
        {
            line += first ? "\"" : ", \"";
            line += json_escape_utf8(key);
            line += "\": \"";
            line += json_escape_utf8(value);
            line += "\"";
            first = false;
        }
        line += "}";
    }
    line += "}";
    return line;
}

// ---------------------------------------------------------------- event_log

struct event_log::impl
{
    mutable std::mutex mutex;
    std::deque<log_record> ring;
    std::size_t capacity{default_capacity};
    log_severity threshold{log_severity::info};
    std::ofstream sink;
    bool stderr_echo{false};
    std::uint64_t total{0};
    std::uint64_t dropped{0};
};

event_log::event_log() : state{new impl{}}
{
    if (const char* level = std::getenv("MNT_LOG_LEVEL"); level != nullptr)
    {
        state->threshold = parse_severity(level);
    }
    if (const char* path = std::getenv("MNT_EVENT_LOG"); path != nullptr && *path != '\0')
    {
        state->sink.open(path, std::ios::app);
        // a failed open is reported on the first log attempt via stderr once,
        // not thrown: env-driven logging must never kill the process
        if (!state->sink)
        {
            std::fprintf(stderr, "eventlog: cannot open MNT_EVENT_LOG sink '%s'\n", path);
        }
    }
}

event_log::~event_log()
{
    delete state;
}

event_log& event_log::instance()
{
    static event_log the_log;
    return the_log;
}

void event_log::log(const log_severity severity, const std::string_view component,
                    const std::string_view message, std::vector<std::pair<std::string, std::string>> fields)
{
    const std::lock_guard lock{state->mutex};
    if (severity < state->threshold)
    {
        return;
    }
    log_record record{};
    record.ts = unix_now_s();
    record.severity = severity;
    record.component = std::string{component};
    record.message = std::string{message};
    record.fields = std::move(fields);

    if (state->sink.is_open() && state->sink)
    {
        state->sink << log_record_json(record) << '\n';
        if (severity >= log_severity::warn)
        {
            state->sink.flush();
        }
    }
    if (state->stderr_echo && severity >= log_severity::warn)
    {
        std::string detail;
        for (const auto& [key, value] : record.fields)
        {
            detail += " " + key + "=" + value;
        }
        std::fprintf(stderr, "[%s] %s: %s%s\n", severity_name(severity), record.component.c_str(),
                     record.message.c_str(), detail.c_str());
    }

    ++state->total;
    if (state->capacity == 0)
    {
        ++state->dropped;
        return;
    }
    while (state->ring.size() >= state->capacity)
    {
        state->ring.pop_front();
        ++state->dropped;
    }
    state->ring.push_back(std::move(record));
}

void event_log::set_min_severity(const log_severity severity)
{
    const std::lock_guard lock{state->mutex};
    state->threshold = severity;
}

log_severity event_log::min_severity() const
{
    const std::lock_guard lock{state->mutex};
    return state->threshold;
}

void event_log::set_capacity(const std::size_t capacity)
{
    const std::lock_guard lock{state->mutex};
    state->capacity = capacity;
    while (state->ring.size() > capacity)
    {
        state->ring.pop_front();
        ++state->dropped;
    }
}

void event_log::open_sink(const std::filesystem::path& path)
{
    const std::lock_guard lock{state->mutex};
    state->sink.close();
    state->sink.clear();
    state->sink.open(path, std::ios::app);
    if (!state->sink)
    {
        throw mnt_error{"eventlog: cannot open sink '" + path.string() + "' for appending"};
    }
}

void event_log::close_sink()
{
    const std::lock_guard lock{state->mutex};
    if (state->sink.is_open())
    {
        state->sink.flush();
        state->sink.close();
    }
}

void event_log::flush()
{
    const std::lock_guard lock{state->mutex};
    if (state->sink.is_open())
    {
        state->sink.flush();
    }
}

void event_log::set_stderr_echo(const bool on)
{
    const std::lock_guard lock{state->mutex};
    state->stderr_echo = on;
}

std::vector<log_record> event_log::snapshot() const
{
    const std::lock_guard lock{state->mutex};
    return {state->ring.begin(), state->ring.end()};
}

std::uint64_t event_log::total_logged() const
{
    const std::lock_guard lock{state->mutex};
    return state->total;
}

std::uint64_t event_log::overwritten() const
{
    const std::lock_guard lock{state->mutex};
    return state->dropped;
}

void event_log::clear()
{
    const std::lock_guard lock{state->mutex};
    state->ring.clear();
    state->total = 0;
    state->dropped = 0;
}

void log_event(const log_severity severity, const std::string_view component, const std::string_view message,
               std::vector<std::pair<std::string, std::string>> fields)
{
    event_log::instance().log(severity, component, message, std::move(fields));
}

}  // namespace mnt::tel
