#pragma once

/// \file text_escape.hpp
/// \brief Internal string-escaping helpers shared by the telemetry
///        exporters (event log JSONL, Prometheus exposition, Chrome trace
///        JSON). Mirrors the UTF-8 validation contract of
///        mnt::cat::json_escape — duplicated here, once, so the telemetry
///        layer stays dependency-free below src/core/.

#include <cstdio>
#include <string>
#include <string_view>

namespace mnt::tel::detail
{

/// Byte length of the UTF-8 sequence starting at \p i, or 0 when the bytes
/// at \p i do not begin a valid (shortest-form, non-surrogate, <= U+10FFFF)
/// sequence.
inline std::size_t utf8_sequence_length(const std::string_view raw, const std::size_t i)
{
    const auto byte = [&](const std::size_t k) { return static_cast<unsigned char>(raw[k]); };
    const auto is_continuation = [&](const std::size_t k)
    { return k < raw.size() && (byte(k) & 0xC0U) == 0x80U; };

    const auto lead = byte(i);
    if (lead < 0x80U)
    {
        return 1;
    }
    if ((lead & 0xE0U) == 0xC0U)  // 2-byte sequence, U+0080..U+07FF
    {
        return lead >= 0xC2U && is_continuation(i + 1) ? 2 : 0;
    }
    if ((lead & 0xF0U) == 0xE0U)  // 3-byte sequence minus surrogates
    {
        if (!is_continuation(i + 1) || !is_continuation(i + 2))
        {
            return 0;
        }
        if ((lead == 0xE0U && byte(i + 1) < 0xA0U) || (lead == 0xEDU && byte(i + 1) >= 0xA0U))
        {
            return 0;
        }
        return 3;
    }
    if ((lead & 0xF8U) == 0xF0U)  // 4-byte sequence, U+10000..U+10FFFF
    {
        if (!is_continuation(i + 1) || !is_continuation(i + 2) || !is_continuation(i + 3))
        {
            return 0;
        }
        if ((lead == 0xF0U && byte(i + 1) < 0x90U) || lead > 0xF4U || (lead == 0xF4U && byte(i + 1) >= 0x90U))
        {
            return 0;
        }
        return 4;
    }
    return 0;  // continuation byte in lead position, or 0xF8..0xFF
}

/// JSON string escaping with UTF-8 validation: control bytes become \uXXXX,
/// invalid sequences become (escaped) U+FFFD, valid UTF-8 passes through.
inline std::string json_escape_utf8(const std::string_view raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (std::size_t i = 0; i < raw.size();)
    {
        const auto c = static_cast<unsigned char>(raw[i]);
        switch (c)
        {
            case '"': out += "\\\""; ++i; continue;
            case '\\': out += "\\\\"; ++i; continue;
            case '\b': out += "\\b"; ++i; continue;
            case '\f': out += "\\f"; ++i; continue;
            case '\n': out += "\\n"; ++i; continue;
            case '\r': out += "\\r"; ++i; continue;
            case '\t': out += "\\t"; ++i; continue;
            default: break;
        }
        if (c < 0x20 || c == 0x7F)
        {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
            ++i;
            continue;
        }
        const auto length = utf8_sequence_length(raw, i);
        if (length == 0)
        {
            out += "\\ufffd";
            ++i;
            continue;
        }
        out.append(raw.substr(i, length));
        i += length;
    }
    return out;
}

/// Replaces invalid UTF-8 with the (literal) U+FFFD replacement character
/// and strips nothing else — the pre-pass for Prometheus label values, whose
/// own escaping layer only handles backslash, quote and newline.
inline std::string scrub_utf8(const std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();)
    {
        const auto length = utf8_sequence_length(raw, i);
        if (length == 0)
        {
            out += "\xEF\xBF\xBD";  // U+FFFD
            ++i;
            continue;
        }
        out.append(raw.substr(i, length));
        i += length;
    }
    return out;
}

}  // namespace mnt::tel::detail
