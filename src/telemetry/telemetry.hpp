#pragma once

/// \file telemetry.hpp
/// \brief Unified telemetry for the layout-generation pipeline: a thread-safe
///        metrics registry (monotonic counters, gauges, log-scale latency
///        histograms), RAII scoped spans that nest into a per-run trace tree,
///        and a shared stopwatch used by every algorithm's runtime field.
///
/// Design constraints (see DESIGN.md "Telemetry & run reports"):
///
/// - **Zero cost when disabled.** The global enable flag is a single relaxed
///   atomic load; every recording entry point checks it first and the
///   disabled path performs no allocation, no locking and no registry
///   lookup. Hot loops (BFS expansions, exact search nodes) accumulate into
///   local variables and flush once per call.
/// - **Thread safety.** Counters, gauges and histogram buckets are atomics;
///   the registry and the trace tree are mutex-protected. Instrument
///   references returned by the registry have stable addresses for the
///   process lifetime, so they may be cached (e.g. in function-local
///   statics).
/// - **Aggregating spans.** Spans with the same name under the same parent
///   merge into one trace-tree node (call count + total seconds) instead of
///   recording individual events, so a 10^6-iteration annealer produces a
///   bounded report.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mnt::tel
{

// ------------------------------------------------------------- enable flag

/// True when telemetry recording is on. Initialized once from the
/// MNT_TELEMETRY environment variable ("1", "true", "on" enable it);
/// overridable at runtime via \ref set_enabled.
[[nodiscard]] bool enabled() noexcept;

/// Turns recording on or off process-wide (e.g. from the CLI --report flag).
void set_enabled(bool on) noexcept;

/// True when timeline trace-event recording is on: every span additionally
/// appends one timestamped complete event (begin + duration + thread id) to
/// a bounded process-wide buffer, exportable as Chrome/Perfetto trace JSON
/// (see trace_export.hpp). Initialized once from the presence of the
/// MNT_TRACE_OUT environment variable; overridable via
/// \ref set_trace_recording. Independent of \ref enabled — a trace can be
/// recorded without the aggregated report and vice versa.
[[nodiscard]] bool trace_recording() noexcept;

/// Turns timeline recording on or off process-wide (e.g. from --trace-out).
void set_trace_recording(bool on) noexcept;

// --------------------------------------------------------------- stopwatch

/// Minimal steady-clock stopwatch: the one way every algorithm computes its
/// `runtime` field. Starts on construction.
class stopwatch
{
public:
    stopwatch() noexcept : t0{std::chrono::steady_clock::now()} {}

    /// Seconds elapsed since construction (or the last \ref restart).
    [[nodiscard]] double seconds() const noexcept
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }

    void restart() noexcept
    {
        t0 = std::chrono::steady_clock::now();
    }

private:
    std::chrono::steady_clock::time_point t0;
};

// ------------------------------------------------------------- instruments

/// Monotonic counter.
class counter
{
public:
    void add(const std::uint64_t delta = 1) noexcept
    {
        total.fetch_add(delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept
    {
        return total.load(std::memory_order_relaxed);
    }

    void reset() noexcept
    {
        total.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> total{0};
};

/// Last-value gauge.
class gauge
{
public:
    void set(const double value) noexcept
    {
        stored.store(value, std::memory_order_relaxed);
    }

    [[nodiscard]] double value() const noexcept
    {
        return stored.load(std::memory_order_relaxed);
    }

    void reset() noexcept
    {
        stored.store(0.0, std::memory_order_relaxed);
    }

private:
    std::atomic<double> stored{0.0};
};

/// Histogram over positive values with fixed base-2 log-scale buckets.
///
/// Bucket i covers the half-open value range [2^(i - zero_bucket),
/// 2^(i - zero_bucket + 1)); bucket 0 additionally absorbs everything below
/// its lower bound (zero, negatives, NaN), the last bucket everything above.
/// With zero_bucket = 32 the grid spans ~2.3e-10 .. 4.3e9, covering
/// nanosecond latencies as well as multi-gigabyte byte counts.
class histogram
{
public:
    static constexpr std::size_t num_buckets = 64;
    static constexpr int zero_bucket = 32;  ///< index of the [1, 2) bucket

    /// Bucket index for \p value (total function; clamps at both ends).
    [[nodiscard]] static std::size_t bucket_index(double value) noexcept;

    /// Inclusive lower bound of bucket \p index (0 for the first bucket).
    [[nodiscard]] static double bucket_lower(std::size_t index) noexcept;

    /// Exclusive upper bound of bucket \p index (+inf for the last bucket).
    [[nodiscard]] static double bucket_upper(std::size_t index) noexcept;

    void record(double value) noexcept;

    /// Adds all of \p other's observations into this histogram.
    void merge(const histogram& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] double sum() const noexcept;
    /// Observation count of bucket \p index.
    [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const noexcept;
    /// Smallest / largest recorded value (0 when empty).
    [[nodiscard]] double min() const noexcept;
    [[nodiscard]] double max() const noexcept;

    /// Discards all observations.
    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, num_buckets> buckets{};
    std::atomic<std::uint64_t> observations{0};
    std::atomic<double> total{0.0};
    std::atomic<double> lowest{std::numeric_limits<double>::infinity()};
    std::atomic<double> highest{-std::numeric_limits<double>::infinity()};
};

// -------------------------------------------------------------- snapshots

/// Value snapshots used by the run-report exporters (report.hpp).
struct counter_value
{
    std::string name;
    std::uint64_t value{0};
};

struct gauge_value
{
    std::string name;
    double value{0.0};
};

struct histogram_value
{
    std::string name;
    std::uint64_t count{0};
    double sum{0.0};
    double min{0.0};
    double max{0.0};
    std::array<std::uint64_t, histogram::num_buckets> buckets{};
};

/// One structured event — a discrete, noteworthy occurrence (a combination
/// failure, a retry, an injected fault) that aggregated instruments cannot
/// express. Events are kept in a bounded in-order log (see
/// \ref registry::max_events); overflow increments a drop counter instead of
/// growing without bound.
struct event_record
{
    /// Event class, e.g. "combo_failure".
    std::string category;
    /// Subject, e.g. the combination label "NPR@USE".
    std::string label;
    /// Discriminator within the category, e.g. the outcome kind "timeout".
    std::string kind;
    /// Free-form human-readable detail.
    std::string message;
    /// Numeric payload (e.g. elapsed seconds).
    double value{0.0};
};

/// One aggregated node of the trace tree: all spans with the same name under
/// the same parent fold into a single node. The root node has an empty name
/// and zero calls; it only holds the top-level spans.
struct span_node
{
    std::string name;
    std::uint64_t calls{0};
    double seconds{0.0};
    std::vector<std::unique_ptr<span_node>> children;
};

/// One timestamped timeline event — an individual span occurrence, recorded
/// only while \ref trace_recording is on. Unlike the aggregated \ref
/// span_node tree, timeline events keep every occurrence with its wall
/// position, so a Perfetto/Chrome trace viewer can show portfolio combos,
/// algorithm phases and HTTP requests on a per-thread timeline.
struct trace_event
{
    std::string name;
    /// Free-form detail shown as the event's "detail" arg in the viewer
    /// (e.g. "GET /layouts"); empty = no args.
    std::string args;
    /// Microseconds since the process-wide trace epoch (steady clock).
    double start_us{0.0};
    /// Event duration in microseconds.
    double dur_us{0.0};
    /// Small dense thread id (assigned per thread on first span).
    std::uint32_t tid{0};
};

// ----------------------------------------------------------------- registry

class span_context;
[[nodiscard]] span_context current_span_context();

/// Process-wide instrument registry. Instruments are created on first use
/// and live until process exit; returned references are stable (also across
/// \ref reset, which zeroes instruments in place).
class registry
{
public:
    [[nodiscard]] static registry& instance();

    [[nodiscard]] counter& get_counter(std::string_view name);
    [[nodiscard]] gauge& get_gauge(std::string_view name);
    [[nodiscard]] histogram& get_histogram(std::string_view name);

    /// Snapshots, sorted by name.
    [[nodiscard]] std::vector<counter_value> counters();
    [[nodiscard]] std::vector<gauge_value> gauges();
    [[nodiscard]] std::vector<histogram_value> histograms();

    /// Hard cap of the event log; appends past it are counted, not stored.
    static constexpr std::size_t max_events = 256;

    /// Appends \p ev to the event log (or bumps the drop counter at the cap).
    void add_event(event_record ev);

    /// Snapshot of the event log, in append order.
    [[nodiscard]] std::vector<event_record> events();

    /// Events discarded because the log was full.
    [[nodiscard]] std::uint64_t dropped_events();

    /// Deep copy of the aggregated trace tree (root has an empty name).
    [[nodiscard]] std::unique_ptr<span_node> trace();

    /// Hard cap of the timeline buffer; spans closed past it bump
    /// \ref dropped_trace_events instead of growing without bound.
    static constexpr std::size_t max_trace_events = 1U << 20U;

    /// Snapshot of the timeline buffer (recorded while \ref trace_recording
    /// was on), in completion order.
    [[nodiscard]] std::vector<trace_event> trace_events();

    /// Timeline events discarded because the buffer was full.
    [[nodiscard]] std::uint64_t dropped_trace_events();

    /// Zeroes every instrument in place and discards the whole trace tree
    /// (used between runs and by tests). Spans still open at reset time are
    /// retired silently: their close does not touch the new tree.
    /// Instrument references stay valid across resets — entries are never
    /// erased — so hot paths may cache them for the process lifetime.
    void reset();

    registry(const registry&) = delete;
    registry& operator=(const registry&) = delete;

private:
    registry() = default;

    struct impl;
    [[nodiscard]] impl& state();

    friend class span;
    friend span_context current_span_context();
};

// ------------------------------------------------- convenience entry points

/// Increments the named counter by \p delta; no-op (no lookup) when disabled.
void count(std::string_view name, std::uint64_t delta = 1);

/// Records \p value into the named histogram; no-op when disabled.
void observe(std::string_view name, double value);

/// Sets the named gauge; no-op when disabled.
void set_gauge(std::string_view name, double value);

/// Appends a structured event to the registry log; no-op when disabled.
void add_event(event_record ev);

// ------------------------------------------------------------- scrape hooks

/// Registers a callback invoked immediately before metric snapshots are
/// taken (/metrics exposition, run-report capture). Subsystems that keep
/// their counters *outside* the registry for hot-path reasons — the task
/// runtime's per-worker sharded stats, for example — publish them lazily
/// from their hook instead of taking the registry mutex per event. Hooks
/// run outside the registry lock (they typically call \ref set_gauge) and
/// must be callable from any thread. Registration is process-lifetime:
/// hooks cannot be removed.
void register_scrape_hook(void (*hook)());

/// Invokes every registered scrape hook (called by the prometheus and
/// report snapshot paths; idempotent and cheap when no hooks exist).
void run_scrape_hooks();

// -------------------------------------------------------------------- spans

/// RAII scoped span. When telemetry is enabled, opening a span descends into
/// the (thread-local) current position of the shared trace tree; closing it
/// adds the elapsed time and the call count. Spans nest lexically per
/// thread; spans opened on other threads attach to the trace root unless the
/// thread adopted a parent via \ref context_guard. While \ref
/// trace_recording is on, closing a span additionally appends one
/// timestamped \ref trace_event (with the optional \p args detail string).
class span
{
public:
    explicit span(std::string_view name, std::string args = {});
    ~span();

    span(const span&) = delete;
    span& operator=(const span&) = delete;
    span(span&&) = delete;
    span& operator=(span&&) = delete;

private:
    span_node* node{nullptr};  ///< nullptr <=> telemetry was disabled at open
    span_node* parent{nullptr};
    std::uint64_t generation{0};
    stopwatch watch;
    std::string event_name;  ///< only kept while the timeline records
    std::string event_args;
    double event_start_us{-1.0};  ///< < 0 <=> no timeline event on close
};

// ------------------------------------------------------ span-context handoff

/// An opaque position in the shared trace tree, capturable on one thread and
/// adoptable on another so worker-pool spans nest under the span that
/// launched the pool instead of appearing as orphan per-thread roots.
/// Invalidated by registry::reset (adoption then degrades to the root, never
/// to a dangling node).
class span_context
{
public:
    /// Context naming the trace root (the default for unadopted threads).
    span_context() = default;

private:
    span_node* node{nullptr};
    std::uint64_t generation{~std::uint64_t{0}};

    friend class context_guard;
    friend span_context current_span_context();
};

/// The calling thread's current position in the trace tree (the innermost
/// open span). Capture this *before* spawning workers and hand it to each
/// worker's \ref context_guard.
[[nodiscard]] span_context current_span_context();

/// RAII adoption of a \ref span_context: for its lifetime, spans opened on
/// this thread nest under the adopted position. Restores the thread's
/// previous position on destruction. A default-constructed context is a
/// no-op (spans attach to the root as before).
class context_guard
{
public:
    explicit context_guard(const span_context& context);
    ~context_guard();

    context_guard(const context_guard&) = delete;
    context_guard& operator=(const context_guard&) = delete;
    context_guard(context_guard&&) = delete;
    context_guard& operator=(context_guard&&) = delete;

private:
    span_node* saved_node{nullptr};
    std::uint64_t saved_generation{0};
    bool adopted{false};
};

#define MNT_TEL_CONCAT_INNER(a, b) a##b
#define MNT_TEL_CONCAT(a, b) MNT_TEL_CONCAT_INNER(a, b)

/// Opens a scoped span for the rest of the enclosing block:
/// `MNT_SPAN("ortho/route");`
#define MNT_SPAN(name_literal) const ::mnt::tel::span MNT_TEL_CONCAT(mnt_tel_span_, __LINE__){name_literal}

}  // namespace mnt::tel
