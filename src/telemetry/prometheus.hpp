#pragma once

/// \file prometheus.hpp
/// \brief Prometheus text exposition (format 0.0.4) over the telemetry
///        registry: counters, gauges and log-scale histograms rendered as
///        scrapeable metric families, plus log-bucket quantile estimation
///        for the p50/p95/p99 summaries shown on /statz.
///
/// Naming convention. Registry instruments are flat dotted names
/// ("server.request_s"); an optional bracketed label suffix turns one
/// logical instrument into a labeled family member:
///
///     server.request_s[route=/layouts]
///
/// becomes the Prometheus series
///
///     mnt_server_request_s_bucket{route="/layouts",le="..."} ...
///
/// All emitted metric names are sanitized to `mnt_` + [a-zA-Z0-9_:]*; label
/// values keep their raw bytes modulo UTF-8 scrubbing and the exposition
/// escapes (backslash, double quote, newline). Series sharing a base name
/// are grouped under a single # TYPE line, as the format requires.

#include "telemetry/telemetry.hpp"

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mnt::tel
{

/// An instrument name split into its metric base and label set.
struct metric_identity
{
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
};

/// Splits `base[key=value,key2=value2]` into base + labels. Names without a
/// well-formed bracket suffix (no `[`, unterminated, or a pair missing `=`)
/// are returned whole as the base with no labels — a malformed name must
/// still be scrapeable, just unlabeled.
[[nodiscard]] metric_identity parse_instrument_name(std::string_view raw);

/// Sanitized Prometheus metric name: "mnt_" + \p base with every byte
/// outside [a-zA-Z0-9_:] replaced by '_'.
[[nodiscard]] std::string prometheus_metric_name(std::string_view base);

/// Label-value escaping per the exposition format: `\` -> `\\`, `"` -> `\"`,
/// newline -> `\n`; invalid UTF-8 bytes are replaced with U+FFFD first.
[[nodiscard]] std::string prometheus_escape_label(std::string_view value);

/// Estimated \p quantile (in [0, 1]) of a log-bucket histogram snapshot:
/// linear interpolation inside the owning bucket, clamped to the recorded
/// [min, max] so the estimate never leaves the observed range. Returns 0
/// when the histogram is empty.
[[nodiscard]] double histogram_quantile(const histogram_value& h, double quantile);

/// Renders the full registry (counters, gauges, histograms) as Prometheus
/// text exposition into \p out. Histograms emit cumulative `_bucket` series
/// with `le` upper bounds, `_sum` and `_count`; only buckets that hold
/// observations appear (plus the mandatory `+Inf`), keeping the 64-bucket
/// grid from bloating every scrape.
void write_prometheus_text(std::ostream& out);

/// \ref write_prometheus_text into a string (what the /metrics handler
/// serves).
[[nodiscard]] std::string prometheus_text();

}  // namespace mnt::tel
