#include "telemetry/report.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace mnt::tel
{

namespace
{

/// Escapes a string for inclusion in a JSON document (same contract as
/// cat::json_escape; duplicated here so the telemetry layer stays
/// dependency-free below src/core/).
std::string json_escape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size() + 8);
    for (const unsigned char c : raw)
    {
        switch (c)
        {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20)
                {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                }
                else
                {
                    out.push_back(static_cast<char>(c));
                }
                break;
        }
    }
    return out;
}

/// Shortest round-trippable representation of a double that is always valid
/// JSON (no inf/nan literals: they are clamped to the largest finite value).
std::string json_number(double value)
{
    if (std::isnan(value))
    {
        value = 0.0;
    }
    else if (std::isinf(value))
    {
        value = value > 0 ? std::numeric_limits<double>::max() : std::numeric_limits<double>::lowest();
    }
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void write_span_json(const span_node& node, std::ostream& output, const std::string& indent)
{
    output << indent << "{\"name\": \"" << json_escape(node.name) << "\", \"calls\": " << node.calls
           << ", \"seconds\": " << json_number(node.seconds);
    if (!node.children.empty())
    {
        output << ", \"children\": [\n";
        for (std::size_t i = 0; i < node.children.size(); ++i)
        {
            write_span_json(*node.children[i], output, indent + "  ");
            output << (i + 1 < node.children.size() ? ",\n" : "\n");
        }
        output << indent << "]";
    }
    output << "}";
}

void write_span_text(const span_node& node, std::ostream& output, const int depth)
{
    char line[160];
    std::snprintf(line, sizeof(line), "%*s%-*s calls=%llu total=%.6fs\n", 2 * depth, "",
                  std::max(40 - 2 * depth, 1), node.name.c_str(),
                  static_cast<unsigned long long>(node.calls), node.seconds);
    output << line;
    for (const auto& child : node.children)
    {
        write_span_text(*child, output, depth + 1);
    }
}

}  // namespace

run_report capture_report()
{
    run_scrape_hooks();  // let lazy publishers (taskrt, ...) push their stats first

    auto& reg = registry::instance();
    run_report report{};
    report.counters = reg.counters();
    report.gauges = reg.gauges();
    report.histograms = reg.histograms();
    report.events = reg.events();
    report.dropped_events = reg.dropped_events();
    report.trace = reg.trace();
    return report;
}

void reset()
{
    registry::instance().reset();
}

void write_report_json(const run_report& report, std::ostream& output)
{
    output << "{\n  \"schema\": \"mnt-telemetry-report/2\",\n  \"counters\": [\n";
    for (std::size_t i = 0; i < report.counters.size(); ++i)
    {
        const auto& c = report.counters[i];
        output << "    {\"name\": \"" << json_escape(c.name) << "\", \"value\": " << c.value << "}"
               << (i + 1 < report.counters.size() ? ",\n" : "\n");
    }
    output << "  ],\n  \"gauges\": [\n";
    for (std::size_t i = 0; i < report.gauges.size(); ++i)
    {
        const auto& g = report.gauges[i];
        output << "    {\"name\": \"" << json_escape(g.name) << "\", \"value\": " << json_number(g.value) << "}"
               << (i + 1 < report.gauges.size() ? ",\n" : "\n");
    }
    output << "  ],\n  \"histograms\": [\n";
    for (std::size_t i = 0; i < report.histograms.size(); ++i)
    {
        const auto& h = report.histograms[i];
        output << "    {\"name\": \"" << json_escape(h.name) << "\", \"count\": " << h.count
               << ", \"sum\": " << json_number(h.sum) << ", \"min\": " << json_number(h.min)
               << ", \"max\": " << json_number(h.max) << ", \"buckets\": [";
        bool first = true;
        for (std::size_t b = 0; b < histogram::num_buckets; ++b)
        {
            if (h.buckets[b] == 0)
            {
                continue;  // sparse export: empty buckets are implied
            }
            output << (first ? "" : ", ") << "{\"lo\": " << json_number(histogram::bucket_lower(b))
                   << ", \"hi\": " << json_number(histogram::bucket_upper(b)) << ", \"count\": " << h.buckets[b]
                   << "}";
            first = false;
        }
        output << "]}" << (i + 1 < report.histograms.size() ? ",\n" : "\n");
    }
    output << "  ],\n  \"events\": [\n";
    for (std::size_t i = 0; i < report.events.size(); ++i)
    {
        const auto& e = report.events[i];
        output << "    {\"category\": \"" << json_escape(e.category) << "\", \"label\": \"" << json_escape(e.label)
               << "\", \"kind\": \"" << json_escape(e.kind) << "\", \"message\": \"" << json_escape(e.message)
               << "\", \"value\": " << json_number(e.value) << "}"
               << (i + 1 < report.events.size() ? ",\n" : "\n");
    }
    output << "  ],\n  \"dropped_events\": " << report.dropped_events << ",\n  \"spans\": [\n";
    static const std::vector<std::unique_ptr<span_node>> no_spans;
    const auto& roots = report.trace != nullptr ? report.trace->children : no_spans;
    for (std::size_t i = 0; i < roots.size(); ++i)
    {
        write_span_json(*roots[i], output, "    ");
        output << (i + 1 < roots.size() ? ",\n" : "\n");
    }
    output << "  ]\n}\n";
}

void write_report_json_file(const run_report& report, const std::filesystem::path& path)
{
    std::ofstream file{path};
    if (!file)
    {
        throw mnt_error{"write_report_json_file: cannot open '" + path.string() + "' for writing"};
    }
    write_report_json(report, file);
}

std::string report_json_string(const run_report& report)
{
    std::ostringstream stream;
    write_report_json(report, stream);
    return stream.str();
}

void write_report_text(const run_report& report, std::ostream& output)
{
    output << "== telemetry run report ==\n";
    if (report.trace != nullptr && !report.trace->children.empty())
    {
        output << "spans:\n";
        for (const auto& child : report.trace->children)
        {
            write_span_text(*child, output, 1);
        }
    }
    if (!report.counters.empty())
    {
        output << "counters:\n";
        for (const auto& c : report.counters)
        {
            char line[160];
            std::snprintf(line, sizeof(line), "  %-40s %llu\n", c.name.c_str(),
                          static_cast<unsigned long long>(c.value));
            output << line;
        }
    }
    if (!report.gauges.empty())
    {
        output << "gauges:\n";
        for (const auto& g : report.gauges)
        {
            char line[160];
            std::snprintf(line, sizeof(line), "  %-40s %.6g\n", g.name.c_str(), g.value);
            output << line;
        }
    }
    if (!report.histograms.empty())
    {
        output << "histograms:\n";
        for (const auto& h : report.histograms)
        {
            char line[200];
            std::snprintf(line, sizeof(line), "  %-40s count=%llu sum=%.6g min=%.6g max=%.6g mean=%.6g\n",
                          h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum, h.min, h.max,
                          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
            output << line;
        }
    }
    if (!report.events.empty() || report.dropped_events > 0)
    {
        output << "events:\n";
        for (const auto& e : report.events)
        {
            output << "  [" << e.category << "] " << e.label << " (" << e.kind << "): " << e.message << "\n";
        }
        if (report.dropped_events > 0)
        {
            output << "  ... and " << report.dropped_events << " dropped\n";
        }
    }
}

}  // namespace mnt::tel
