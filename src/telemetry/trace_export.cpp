#include "telemetry/trace_export.hpp"

#include "common/provenance.hpp"
#include "common/types.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/text_escape.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

namespace mnt::tel
{

namespace
{

using detail::json_escape_utf8;

/// Microsecond timestamps with sub-microsecond precision preserved.
std::string format_us(const double us)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", us);
    return buffer;
}

}  // namespace

void write_chrome_trace(std::ostream& out, const chrome_trace_options& options)
{
    auto& reg = registry::instance();
    const auto events = reg.trace_events();
    const auto dropped = reg.dropped_trace_events();
    const auto& build = prov::build_info();

    out << "{\"displayTimeUnit\": \"ms\", \"otherData\": {"
        << "\"tool\": \"" << json_escape_utf8(options.process_name) << "\""
        << ", \"version\": \"" << json_escape_utf8(build.version) << "\""
        << ", \"compiler\": \"" << json_escape_utf8(build.compiler) << "\""
        << ", \"build_type\": \"" << json_escape_utf8(build.build_type) << "\""
        << ", \"dropped_events\": " << dropped << "}, \"traceEvents\": [";

    bool first = true;
    const auto comma = [&]
    {
        if (!first)
        {
            out << ", ";
        }
        first = false;
    };

    // process/thread metadata first, so viewers label the lanes
    comma();
    out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
        << "\"args\": {\"name\": \"" << json_escape_utf8(options.process_name) << "\"}}";

    std::set<std::uint32_t> tids;
    for (const auto& ev : events)
    {
        tids.insert(ev.tid);
    }
    for (const auto tid : tids)
    {
        comma();
        out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
            << ", \"args\": {\"name\": \"" << (tid == 1 ? "main" : "worker " + std::to_string(tid))
            << "\"}}";
    }

    for (const auto& ev : events)
    {
        comma();
        out << "{\"name\": \"" << json_escape_utf8(ev.name) << "\", \"cat\": \"span\", \"ph\": \"X\", "
            << "\"ts\": " << format_us(ev.start_us) << ", \"dur\": " << format_us(ev.dur_us)
            << ", \"pid\": 1, \"tid\": " << ev.tid;
        if (!ev.args.empty())
        {
            out << ", \"args\": {\"detail\": \"" << json_escape_utf8(ev.args) << "\"}";
        }
        out << '}';
    }

    out << "]}\n";
}

std::string chrome_trace_string(const chrome_trace_options& options)
{
    std::ostringstream out;
    write_chrome_trace(out, options);
    return out.str();
}

void write_chrome_trace_file(const std::filesystem::path& path, const chrome_trace_options& options)
{
    std::ofstream out{path, std::ios::trunc};
    if (!out)
    {
        throw mnt_error{"trace_export: cannot open '" + path.string() + "' for writing"};
    }
    write_chrome_trace(out, options);
    out.flush();
    if (!out)
    {
        throw mnt_error{"trace_export: short write to '" + path.string() + "'"};
    }
}

std::filesystem::path export_trace_if_requested()
{
    const char* path = std::getenv("MNT_TRACE_OUT");
    if (path == nullptr || *path == '\0')
    {
        return {};
    }
    if (registry::instance().trace_events().empty())
    {
        return {};
    }
    try
    {
        write_chrome_trace_file(path);
        return path;
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "trace_export: %s\n", e.what());
        return {};
    }
}

}  // namespace mnt::tel
