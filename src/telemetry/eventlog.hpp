#pragma once

/// \file eventlog.hpp
/// \brief Structured, process-wide event log: severity-leveled records with
///        key/value fields, kept in a bounded ring buffer and optionally
///        streamed to a JSONL sink — the one place the server, the
///        portfolio, store repair and resilience retries report discrete
///        occurrences, replacing ad-hoc stderr prints.
///
/// Design constraints:
///
/// - **Always on, bounded.** Unlike the aggregated telemetry registry
///   (gated by MNT_TELEMETRY), the event log records unconditionally: a
///   ring buffer of the most recent \ref event_log::default_capacity
///   records costs a few hundred kilobytes at worst and makes the server's
///   /statz endpoint informative without any flag. Overwritten records are
///   counted, never silently lost.
/// - **One line per record.** The JSONL sink writes each record as one
///   self-contained JSON object per line (schema below), so logs are
///   greppable, `jq`-able and append-safe across process restarts.
/// - **Thread safety.** All entry points are mutex-protected; the record
///   path is one lock, one ring slot write and (with a sink) one buffered
///   line write — cheap enough for warn/error paths, and hot loops should
///   not log per-iteration anyway.
///
/// JSONL schema (one object per line):
///
/// \code{.json}
/// {"ts": 1754650000.123, "severity": "warn", "component": "store",
///  "message": "pruned corrupt blob", "fields": {"id": "3f2a...", "n": "1"}}
/// \endcode
///
/// Environment:
///
/// - `MNT_EVENT_LOG=<path>`  open a JSONL sink at startup (append mode)
/// - `MNT_LOG_LEVEL=<debug|info|warn|error>`  minimum recorded severity
///   (default info)

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mnt::tel
{

/// Record severity, ordered: debug < info < warn < error.
enum class log_severity : std::uint8_t
{
    debug = 0,
    info = 1,
    warn = 2,
    error = 3
};

/// Lowercase severity name ("debug", "info", "warn", "error").
[[nodiscard]] const char* severity_name(log_severity severity) noexcept;

/// Parses a severity name (case-sensitive, as listed above); anything
/// unrecognized yields info.
[[nodiscard]] log_severity parse_severity(std::string_view name) noexcept;

/// One structured log record.
struct log_record
{
    /// Wall-clock seconds since the Unix epoch at record time.
    double ts{0.0};
    log_severity severity{log_severity::info};
    /// Emitting subsystem, e.g. "server", "portfolio", "store", "resilience".
    std::string component;
    std::string message;
    /// Ordered key/value detail pairs.
    std::vector<std::pair<std::string, std::string>> fields;
};

/// Serializes \p record as one JSONL line (no trailing newline). All strings
/// are JSON-escaped; invalid UTF-8 bytes are replaced, never emitted raw.
[[nodiscard]] std::string log_record_json(const log_record& record);

/// The process-wide event log.
class event_log
{
public:
    static constexpr std::size_t default_capacity = 1024;

    [[nodiscard]] static event_log& instance();

    /// Appends a record (timestamped now) when \p severity clears the
    /// minimum. With a sink attached the record is also written as one JSONL
    /// line and flushed on warn/error.
    void log(log_severity severity, std::string_view component, std::string_view message,
             std::vector<std::pair<std::string, std::string>> fields = {});

    /// Minimum severity recorded (default info, or MNT_LOG_LEVEL).
    void set_min_severity(log_severity severity);
    [[nodiscard]] log_severity min_severity() const;

    /// Resizes the ring buffer (drops the oldest records when shrinking).
    void set_capacity(std::size_t capacity);

    /// Opens (append) a JSONL sink at \p path, replacing any previous sink.
    ///
    /// \throws mnt::mnt_error when the file cannot be opened
    void open_sink(const std::filesystem::path& path);

    /// Flushes and detaches the sink (records keep going to the ring).
    void close_sink();

    /// Flushes the sink without detaching it. Interrupt paths call this so
    /// an exiting process leaves no buffered JSONL lines behind.
    void flush();

    /// Mirror warn/error records to stderr as human-readable lines (what the
    /// CLIs enable so operators still see problems without tailing a file).
    void set_stderr_echo(bool on);

    /// The retained records, oldest first.
    [[nodiscard]] std::vector<log_record> snapshot() const;

    /// Total records accepted (including ones the ring has since dropped).
    [[nodiscard]] std::uint64_t total_logged() const;

    /// Records overwritten by ring wrap-around.
    [[nodiscard]] std::uint64_t overwritten() const;

    /// Empties the ring and zeroes the counters (tests); the sink, echo flag
    /// and severity threshold are kept.
    void clear();

    event_log(const event_log&) = delete;
    event_log& operator=(const event_log&) = delete;

private:
    event_log();
    ~event_log();

    struct impl;
    impl* state;
};

/// Convenience: event_log::instance().log(...).
void log_event(log_severity severity, std::string_view component, std::string_view message,
               std::vector<std::pair<std::string, std::string>> fields = {});

}  // namespace mnt::tel
