#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace mnt::tel
{

// ------------------------------------------------------------- enable flag

namespace
{

bool env_enabled()
{
    const char* value = std::getenv("MNT_TELEMETRY");
    if (value == nullptr)
    {
        return false;
    }
    const std::string_view v{value};
    return v == "1" || v == "true" || v == "on" || v == "yes";
}

std::atomic<bool>& enabled_flag() noexcept
{
    static std::atomic<bool> flag{env_enabled()};
    return flag;
}

std::atomic<bool>& trace_flag() noexcept
{
    // recording is implied by MNT_TRACE_OUT: the CLIs export to that path on
    // exit, and tests/tools may also toggle it programmatically
    static std::atomic<bool> flag{std::getenv("MNT_TRACE_OUT") != nullptr};
    return flag;
}

/// Process-wide timeline origin; every trace_event timestamp is relative to
/// this instant. Anchored on first use (first span or first query).
std::chrono::steady_clock::time_point trace_epoch() noexcept
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

/// Microseconds since the trace epoch.
double since_epoch_us(const std::chrono::steady_clock::time_point t) noexcept
{
    return std::chrono::duration<double, std::micro>(t - trace_epoch()).count();
}

/// Small dense thread id for trace events: 1, 2, 3, ... in first-span order.
std::uint32_t trace_thread_id() noexcept
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/// Lock-free atomic min/max via CAS (atomic<double> has no fetch_min).
void atomic_min(std::atomic<double>& slot, const double value) noexcept
{
    double current = slot.load(std::memory_order_relaxed);
    while (value < current && !slot.compare_exchange_weak(current, value, std::memory_order_relaxed))
    {
    }
}

void atomic_max(std::atomic<double>& slot, const double value) noexcept
{
    double current = slot.load(std::memory_order_relaxed);
    while (value > current && !slot.compare_exchange_weak(current, value, std::memory_order_relaxed))
    {
    }
}

void atomic_add(std::atomic<double>& slot, const double value) noexcept
{
    double current = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(current, current + value, std::memory_order_relaxed))
    {
    }
}

}  // namespace

bool enabled() noexcept
{
    return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(const bool on) noexcept
{
    enabled_flag().store(on, std::memory_order_relaxed);
}

bool trace_recording() noexcept
{
    return trace_flag().load(std::memory_order_relaxed);
}

void set_trace_recording(const bool on) noexcept
{
    if (on)
    {
        trace_epoch();  // anchor the timeline before the first event
    }
    trace_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- histogram

std::size_t histogram::bucket_index(const double value) noexcept
{
    if (std::isnan(value) || value <= 0.0)
    {
        return 0;
    }
    // ilogb = floor(log2) for finite positive values; +inf clamps below
    const auto exponent = static_cast<std::int64_t>(std::ilogb(value));
    const auto index = exponent + zero_bucket;
    if (index < 0)
    {
        return 0;
    }
    if (index >= static_cast<std::int64_t>(num_buckets))
    {
        return num_buckets - 1;
    }
    return static_cast<std::size_t>(index);
}

double histogram::bucket_lower(const std::size_t index) noexcept
{
    return index == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(index) - zero_bucket);
}

double histogram::bucket_upper(const std::size_t index) noexcept
{
    return index >= num_buckets - 1 ? std::numeric_limits<double>::infinity() :
                                      std::ldexp(1.0, static_cast<int>(index) - zero_bucket + 1);
}

void histogram::record(const double value) noexcept
{
    buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    observations.fetch_add(1, std::memory_order_relaxed);
    atomic_add(total, value);
    atomic_min(lowest, value);
    atomic_max(highest, value);
}

void histogram::merge(const histogram& other) noexcept
{
    for (std::size_t i = 0; i < num_buckets; ++i)
    {
        buckets[i].fetch_add(other.buckets[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
    }
    const auto n = other.observations.load(std::memory_order_relaxed);
    if (n == 0)
    {
        return;
    }
    observations.fetch_add(n, std::memory_order_relaxed);
    atomic_add(total, other.total.load(std::memory_order_relaxed));
    atomic_min(lowest, other.lowest.load(std::memory_order_relaxed));
    atomic_max(highest, other.highest.load(std::memory_order_relaxed));
}

std::uint64_t histogram::count() const noexcept
{
    return observations.load(std::memory_order_relaxed);
}

double histogram::sum() const noexcept
{
    return total.load(std::memory_order_relaxed);
}

std::uint64_t histogram::bucket_count(const std::size_t index) const noexcept
{
    return index < num_buckets ? buckets[index].load(std::memory_order_relaxed) : 0;
}

double histogram::min() const noexcept
{
    return count() == 0 ? 0.0 : lowest.load(std::memory_order_relaxed);
}

double histogram::max() const noexcept
{
    return count() == 0 ? 0.0 : highest.load(std::memory_order_relaxed);
}

void histogram::reset() noexcept
{
    for (auto& bucket : buckets)
    {
        bucket.store(0, std::memory_order_relaxed);
    }
    observations.store(0, std::memory_order_relaxed);
    total.store(0.0, std::memory_order_relaxed);
    lowest.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    highest.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// ----------------------------------------------------------------- registry

struct registry::impl
{
    std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<histogram>> histograms;
    span_node trace_root{};
    std::vector<event_record> events;
    std::uint64_t events_dropped{0};
    std::vector<trace_event> timeline;
    std::uint64_t timeline_dropped{0};
    /// Bumped on reset; spans opened under an older generation retire
    /// without touching the (rebuilt) trace tree.
    std::uint64_t generation{0};
};

registry& registry::instance()
{
    static registry the_registry;
    return the_registry;
}

registry::impl& registry::state()
{
    static impl the_state;
    return the_state;
}

namespace
{

template <typename Instrument>
Instrument& get_or_create(std::unordered_map<std::string, std::unique_ptr<Instrument>>& map,
                          const std::string_view name)
{
    const auto it = map.find(std::string{name});
    if (it != map.end())
    {
        return *it->second;
    }
    auto [inserted, is_new] = map.emplace(std::string{name}, std::make_unique<Instrument>());
    static_cast<void>(is_new);
    return *inserted->second;
}

}  // namespace

counter& registry::get_counter(const std::string_view name)
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return get_or_create(s.counters, name);
}

gauge& registry::get_gauge(const std::string_view name)
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return get_or_create(s.gauges, name);
}

histogram& registry::get_histogram(const std::string_view name)
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return get_or_create(s.histograms, name);
}

std::vector<counter_value> registry::counters()
{
    auto& s = state();
    std::vector<counter_value> result;
    {
        const std::lock_guard lock{s.mutex};
        result.reserve(s.counters.size());
        for (const auto& [name, instrument] : s.counters)
        {
            result.push_back({name, instrument->value()});
        }
    }
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) { return a.name < b.name; });
    return result;
}

std::vector<gauge_value> registry::gauges()
{
    auto& s = state();
    std::vector<gauge_value> result;
    {
        const std::lock_guard lock{s.mutex};
        result.reserve(s.gauges.size());
        for (const auto& [name, instrument] : s.gauges)
        {
            result.push_back({name, instrument->value()});
        }
    }
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) { return a.name < b.name; });
    return result;
}

std::vector<histogram_value> registry::histograms()
{
    auto& s = state();
    std::vector<histogram_value> result;
    {
        const std::lock_guard lock{s.mutex};
        result.reserve(s.histograms.size());
        for (const auto& [name, instrument] : s.histograms)
        {
            histogram_value v{};
            v.name = name;
            v.count = instrument->count();
            v.sum = instrument->sum();
            v.min = instrument->min();
            v.max = instrument->max();
            for (std::size_t i = 0; i < histogram::num_buckets; ++i)
            {
                v.buckets[i] = instrument->bucket_count(i);
            }
            result.push_back(std::move(v));
        }
    }
    std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) { return a.name < b.name; });
    return result;
}

void registry::add_event(event_record ev)
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    if (s.events.size() >= max_events)
    {
        ++s.events_dropped;
        return;
    }
    s.events.push_back(std::move(ev));
}

std::vector<event_record> registry::events()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return s.events;
}

std::uint64_t registry::dropped_events()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return s.events_dropped;
}

namespace
{

std::unique_ptr<span_node> clone_node(const span_node& node)
{
    auto copy = std::make_unique<span_node>();
    copy->name = node.name;
    copy->calls = node.calls;
    copy->seconds = node.seconds;
    copy->children.reserve(node.children.size());
    for (const auto& child : node.children)
    {
        copy->children.push_back(clone_node(*child));
    }
    return copy;
}

}  // namespace

std::unique_ptr<span_node> registry::trace()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return clone_node(s.trace_root);
}

std::vector<trace_event> registry::trace_events()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return s.timeline;
}

std::uint64_t registry::dropped_trace_events()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    return s.timeline_dropped;
}

void registry::reset()
{
    auto& s = state();
    const std::lock_guard lock{s.mutex};
    // zero in place: instrument addresses stay valid so hot paths may cache
    // references across runs
    for (const auto& [name, instrument] : s.counters)
    {
        instrument->reset();
    }
    for (const auto& [name, instrument] : s.gauges)
    {
        instrument->reset();
    }
    for (const auto& [name, instrument] : s.histograms)
    {
        instrument->reset();
    }
    s.trace_root.children.clear();
    s.events.clear();
    s.events_dropped = 0;
    s.timeline.clear();
    s.timeline.shrink_to_fit();
    s.timeline_dropped = 0;
    ++s.generation;
}

// ------------------------------------------------- convenience entry points

void count(const std::string_view name, const std::uint64_t delta)
{
    if (!enabled())
    {
        return;
    }
    registry::instance().get_counter(name).add(delta);
}

void observe(const std::string_view name, const double value)
{
    if (!enabled())
    {
        return;
    }
    registry::instance().get_histogram(name).record(value);
}

void set_gauge(const std::string_view name, const double value)
{
    if (!enabled())
    {
        return;
    }
    registry::instance().get_gauge(name).set(value);
}

void add_event(event_record ev)
{
    if (!enabled())
    {
        return;
    }
    registry::instance().add_event(std::move(ev));
}

// ------------------------------------------------------------- scrape hooks

namespace
{

/// Plain function pointers in a fixed-capacity slot array: registration is
/// rare (once per subsystem) and lookups are lock-free, so a scrape never
/// blocks a registering thread or vice versa.
constexpr std::size_t max_scrape_hooks = 8;
std::atomic<void (*)()> scrape_hooks[max_scrape_hooks]{};
std::atomic<std::size_t> scrape_hook_count{0};

}  // namespace

void register_scrape_hook(void (*hook)())
{
    if (hook == nullptr)
    {
        return;
    }
    const auto slot = scrape_hook_count.fetch_add(1, std::memory_order_acq_rel);
    if (slot < max_scrape_hooks)
    {
        scrape_hooks[slot].store(hook, std::memory_order_release);
    }
}

void run_scrape_hooks()
{
    auto n = scrape_hook_count.load(std::memory_order_acquire);
    if (n > max_scrape_hooks)
    {
        n = max_scrape_hooks;
    }
    for (std::size_t i = 0; i < n; ++i)
    {
        if (auto* hook = scrape_hooks[i].load(std::memory_order_acquire); hook != nullptr)
        {
            hook();
        }
    }
}

// -------------------------------------------------------------------- spans

namespace
{

/// Per-thread position in the shared trace tree, validated against the
/// registry generation so resets cannot leave dangling cursors.
struct trace_cursor
{
    span_node* node{nullptr};
    std::uint64_t generation{~std::uint64_t{0}};
};

thread_local trace_cursor cursor;

}  // namespace

span::span(const std::string_view name, std::string args)
{
    const auto tracing = trace_recording();
    if (!enabled() && !tracing)
    {
        return;
    }
    if (tracing)
    {
        event_name = std::string{name};
        event_args = std::move(args);
        event_start_us = since_epoch_us(std::chrono::steady_clock::now());
    }
    auto& s = registry::instance().state();
    const std::lock_guard lock{s.mutex};
    if (cursor.generation != s.generation)
    {
        cursor.node = &s.trace_root;
        cursor.generation = s.generation;
    }
    parent = cursor.node;
    generation = s.generation;
    // aggregate: find the sibling of the same name, or append a new child
    for (const auto& child : parent->children)
    {
        if (child->name == name)
        {
            node = child.get();
            break;
        }
    }
    if (node == nullptr)
    {
        auto fresh = std::make_unique<span_node>();
        fresh->name = std::string{name};
        node = fresh.get();
        parent->children.push_back(std::move(fresh));
    }
    cursor.node = node;
    watch.restart();
}

span::~span()
{
    if (node == nullptr)
    {
        return;
    }
    const auto elapsed = watch.seconds();
    auto& s = registry::instance().state();
    const std::lock_guard lock{s.mutex};
    if (s.generation != generation)
    {
        return;  // the tree was reset while this span was open
    }
    node->calls += 1;
    node->seconds += elapsed;
    if (cursor.generation == generation && cursor.node == node)
    {
        cursor.node = parent;
    }
    if (event_start_us >= 0.0 && trace_recording())
    {
        if (s.timeline.size() >= registry::max_trace_events)
        {
            ++s.timeline_dropped;
        }
        else
        {
            s.timeline.push_back(trace_event{std::move(event_name), std::move(event_args), event_start_us,
                                             elapsed * 1e6, trace_thread_id()});
        }
    }
}

// ------------------------------------------------------ span-context handoff

span_context current_span_context()
{
    span_context context{};
    if (!enabled() && !trace_recording())
    {
        return context;
    }
    auto& s = registry::instance().state();
    const std::lock_guard lock{s.mutex};
    if (cursor.generation != s.generation)
    {
        cursor.node = &s.trace_root;
        cursor.generation = s.generation;
    }
    context.node = cursor.node;
    context.generation = cursor.generation;
    return context;
}

context_guard::context_guard(const span_context& context)
{
    if (context.node == nullptr)
    {
        return;
    }
    adopted = true;
    saved_node = cursor.node;
    saved_generation = cursor.generation;
    // the adopted position is validated against the current generation at
    // every span open, so a reset between capture and adoption degrades to
    // the root instead of a dangling node
    cursor.node = context.node;
    cursor.generation = context.generation;
}

context_guard::~context_guard()
{
    if (!adopted)
    {
        return;
    }
    cursor.node = saved_node;
    cursor.generation = saved_generation;
}

}  // namespace mnt::tel
