#pragma once

/// \file report.hpp
/// \brief Run reports: a snapshot of everything a pipeline run recorded into
///        the telemetry registry (counters, gauges, histograms, trace tree),
///        with exporters to human-readable text and machine-readable JSON —
///        the per-run provenance sidecar of the MNT Bench reproduction.
///
/// JSON schema (`"schema": "mnt-telemetry-report/2"`, documented with an
/// example in README.md). Version 2 adds the "events" array (and its
/// "dropped_events" overflow counter) carrying discrete occurrences such as
/// the portfolio failure manifest; everything from version 1 is unchanged.
///
/// \code{.json}
/// {
///   "schema": "mnt-telemetry-report/2",
///   "counters":   [ {"name": "exact.search_nodes", "value": 6500}, ... ],
///   "gauges":     [ {"name": "portfolio.results", "value": 9}, ... ],
///   "histograms": [ {"name": "catalog.insert_s", "count": 9, "sum": 0.001,
///                    "min": 1e-5, "max": 4e-4,
///                    "buckets": [ {"lo": 0.0, "hi": 2.3e-10, "count": 0},
///                                 ... non-empty buckets only ... ]}, ... ],
///   "events":     [ {"category": "combo_failure", "label": "NPR@USE",
///                    "kind": "timeout", "message": "deadline exceeded in ...",
///                    "value": 1.07}, ... ],
///   "dropped_events": 0,
///   "spans":      [ {"name": "portfolio/cartesian", "calls": 1,
///                    "seconds": 1.73, "children": [ ... ]}, ... ]
/// }
/// \endcode

#include "telemetry/telemetry.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::tel
{

/// Everything one run recorded. Obtained via \ref capture_report.
struct run_report
{
    std::vector<counter_value> counters;
    std::vector<gauge_value> gauges;
    std::vector<histogram_value> histograms;
    /// Structured events in append order (bounded; see registry::max_events).
    std::vector<event_record> events;
    /// Events lost to the log cap.
    std::uint64_t dropped_events{0};
    /// Aggregated trace tree; the root is unnamed and holds the top-level
    /// spans as children. Never null after \ref capture_report.
    std::unique_ptr<span_node> trace;
};

/// Snapshots the current registry contents (instruments sorted by name).
[[nodiscard]] run_report capture_report();

/// Clears the registry so the next run starts from a clean slate.
/// Equivalent to registry::instance().reset().
void reset();

/// Writes \p report as a JSON document (schema above).
void write_report_json(const run_report& report, std::ostream& output);

/// Writes \p report to \p path as JSON.
///
/// \throws mnt::mnt_error when the file cannot be opened
void write_report_json_file(const run_report& report, const std::filesystem::path& path);

/// Convenience: JSON document as a string.
[[nodiscard]] std::string report_json_string(const run_report& report);

/// Writes \p report as an indented human-readable summary (spans with call
/// counts and total seconds, counters, gauges, histogram digests).
void write_report_text(const run_report& report, std::ostream& output);

}  // namespace mnt::tel
