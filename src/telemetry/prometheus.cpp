#include "telemetry/prometheus.hpp"

#include "telemetry/text_escape.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace mnt::tel
{

namespace
{

/// Prometheus float rendering: shortest round-trippable decimal, with the
/// format's spellings for the non-finite values.
std::string format_value(const double value)
{
    if (std::isnan(value))
    {
        return "NaN";
    }
    if (std::isinf(value))
    {
        return value > 0 ? "+Inf" : "-Inf";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/// Label names allow [a-zA-Z0-9_] only (no colon, unlike metric names).
std::string sanitize_label_name(const std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw)
    {
        const bool ok =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    {
        out.insert(out.begin(), '_');
    }
    return out;
}

/// `{k="v",k2="v2"}` (or "" without labels); \p extra appends one more
/// pre-rendered `key="value"` pair (the histogram `le` bound).
std::string label_block(const std::vector<std::pair<std::string, std::string>>& labels,
                        const std::string& extra = {})
{
    if (labels.empty() && extra.empty())
    {
        return {};
    }
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : labels)
    {
        if (!first)
        {
            out += ',';
        }
        out += sanitize_label_name(key);
        out += "=\"";
        out += prometheus_escape_label(value);
        out += '"';
        first = false;
    }
    if (!extra.empty())
    {
        if (!first)
        {
            out += ',';
        }
        out += extra;
    }
    out += '}';
    return out;
}

/// One metric family: a # HELP/# TYPE header plus its pre-rendered samples.
struct family
{
    std::string name;
    const char* type{"counter"};
    std::string help;
    std::vector<std::string> lines;
};

/// Groups samples by sanitized metric name, preserving first-seen order (the
/// registry snapshots are sorted by raw name, so the output is stable).
class family_set
{
public:
    family& get(const std::string& name, const char* type, const std::string& raw_base)
    {
        if (const auto it = index.find(name); it != index.end())
        {
            return families[it->second];
        }
        index.emplace(name, families.size());
        families.push_back(family{name, type, raw_base, {}});
        return families.back();
    }

    void write(std::ostream& out) const
    {
        for (const auto& fam : families)
        {
            out << "# HELP " << fam.name << " MNT Bench instrument " << help_escape(fam.help) << '\n';
            out << "# TYPE " << fam.name << ' ' << fam.type << '\n';
            for (const auto& line : fam.lines)
            {
                out << line << '\n';
            }
        }
    }

private:
    /// HELP text escaping: only backslash and newline, per the format.
    static std::string help_escape(const std::string_view raw)
    {
        std::string out;
        out.reserve(raw.size());
        for (const char c : detail::scrub_utf8(raw))
        {
            if (c == '\\')
            {
                out += "\\\\";
            }
            else if (c == '\n')
            {
                out += "\\n";
            }
            else
            {
                out += c;
            }
        }
        return out;
    }

    std::vector<family> families;
    std::unordered_map<std::string, std::size_t> index;
};

}  // namespace

metric_identity parse_instrument_name(const std::string_view raw)
{
    const auto lbracket = raw.find('[');
    if (lbracket == std::string_view::npos || raw.empty() || raw.back() != ']' || lbracket + 1 >= raw.size())
    {
        return {std::string{raw}, {}};
    }
    const auto inner = raw.substr(lbracket + 1, raw.size() - lbracket - 2);
    metric_identity identity{std::string{raw.substr(0, lbracket)}, {}};
    std::size_t pos = 0;
    while (pos <= inner.size())
    {
        auto comma = inner.find(',', pos);
        if (comma == std::string_view::npos)
        {
            comma = inner.size();
        }
        const auto pair = inner.substr(pos, comma - pos);
        const auto eq = pair.find('=');
        if (eq == std::string_view::npos || eq == 0)
        {
            // malformed pair: fall back to the whole raw name as the base so
            // the instrument still shows up on a scrape
            return {std::string{raw}, {}};
        }
        identity.labels.emplace_back(std::string{pair.substr(0, eq)}, std::string{pair.substr(eq + 1)});
        pos = comma + 1;
    }
    return identity;
}

std::string prometheus_metric_name(const std::string_view base)
{
    std::string out = "mnt_";
    out.reserve(base.size() + 4);
    for (const char c : base)
    {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string prometheus_escape_label(const std::string_view value)
{
    std::string out;
    out.reserve(value.size() + 4);
    for (const char c : detail::scrub_utf8(value))
    {
        if (c == '\\')
        {
            out += "\\\\";
        }
        else if (c == '"')
        {
            out += "\\\"";
        }
        else if (c == '\n')
        {
            out += "\\n";
        }
        else
        {
            out += c;
        }
    }
    return out;
}

double histogram_quantile(const histogram_value& h, double quantile)
{
    if (h.count == 0)
    {
        return 0.0;
    }
    quantile = std::clamp(quantile, 0.0, 1.0);
    const double rank = quantile * static_cast<double>(h.count);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram::num_buckets; ++i)
    {
        const auto n = h.buckets[i];
        if (n == 0)
        {
            continue;
        }
        if (static_cast<double>(cumulative + n) >= rank)
        {
            const double lower = histogram::bucket_lower(i);
            const double upper = histogram::bucket_upper(i);
            if (!std::isfinite(upper))
            {
                return h.max;
            }
            const double within = (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
            const double estimate = lower + (upper - lower) * within;
            return std::clamp(estimate, h.min, h.max);
        }
        cumulative += n;
    }
    return h.max;
}

void write_prometheus_text(std::ostream& out)
{
    run_scrape_hooks();  // let lazy publishers (taskrt, ...) push their stats first

    auto& reg = registry::instance();
    family_set families;

    for (const auto& c : reg.counters())
    {
        const auto identity = parse_instrument_name(c.name);
        auto& fam = families.get(prometheus_metric_name(identity.base), "counter", identity.base);
        fam.lines.push_back(fam.name + label_block(identity.labels) + ' ' + std::to_string(c.value));
    }
    for (const auto& g : reg.gauges())
    {
        const auto identity = parse_instrument_name(g.name);
        auto& fam = families.get(prometheus_metric_name(identity.base), "gauge", identity.base);
        fam.lines.push_back(fam.name + label_block(identity.labels) + ' ' + format_value(g.value));
    }
    for (const auto& h : reg.histograms())
    {
        const auto identity = parse_instrument_name(h.name);
        auto& fam = families.get(prometheus_metric_name(identity.base), "histogram", identity.base);
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram::num_buckets; ++i)
        {
            if (h.buckets[i] == 0)
            {
                continue;  // the 64-bucket grid is sparse; empty bounds add nothing cumulative
            }
            cumulative += h.buckets[i];
            fam.lines.push_back(fam.name + "_bucket" +
                                label_block(identity.labels,
                                            "le=\"" + format_value(histogram::bucket_upper(i)) + '"') +
                                ' ' + std::to_string(cumulative));
        }
        fam.lines.push_back(fam.name + "_bucket" + label_block(identity.labels, "le=\"+Inf\"") + ' ' +
                            std::to_string(h.count));
        fam.lines.push_back(fam.name + "_sum" + label_block(identity.labels) + ' ' + format_value(h.sum));
        fam.lines.push_back(fam.name + "_count" + label_block(identity.labels) + ' ' +
                            std::to_string(h.count));
    }

    families.write(out);
}

std::string prometheus_text()
{
    std::ostringstream out;
    write_prometheus_text(out);
    return out.str();
}

}  // namespace mnt::tel
