#pragma once

/// \file fgl_writer.hpp
/// \brief Writer for the .fgl gate-level layout format — MNT Bench's
///        contribution #4: a standardized, human-readable representation of
///        FCN gate-level layouts.
///
/// An .fgl document is XML:
///
/// \code{.xml}
/// <?xml version="1.0" encoding="utf-8"?>
/// <fgl>
///   <layout>
///     <name>mux21</name>
///     <topology>cartesian</topology>
///     <clocking>2DDWave</clocking>
///     <size><x>4</x><y>3</y></size>
///     <gates>
///       <gate>
///         <type>pi</type>
///         <name>a</name>
///         <loc><x>1</x><y>0</y><z>0</z></loc>
///       </gate>
///       <gate>
///         <type>and</type>
///         <loc><x>1</x><y>1</y><z>0</z></loc>
///         <incoming>
///           <loc><x>1</x><y>0</y><z>0</z></loc>
///           <loc><x>0</x><y>1</y><z>0</z></loc>
///         </incoming>
///       </gate>
///     </gates>
///     <clockzones>            <!-- OPEN clocking only -->
///       <zone><x>0</x><y>0</y><clock>2</clock></zone>
///     </clockzones>
///   </layout>
/// </fgl>
/// \endcode
///
/// Gates are listed in deterministic (y, x, z) order; `incoming` locations
/// are in fanin-slot order (significant for non-commutative gates).

#include "layout/gate_level_layout.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::io
{

/// Serializes \p layout as an .fgl document to \p output.
void write_fgl(const lyt::gate_level_layout& layout, std::ostream& output);

/// Convenience overload writing to a file.
///
/// \throws mnt::mnt_error if the file cannot be created
void write_fgl_file(const lyt::gate_level_layout& layout, const std::filesystem::path& path);

/// Serializes into a string.
[[nodiscard]] std::string write_fgl_string(const lyt::gate_level_layout& layout);

}  // namespace mnt::io
