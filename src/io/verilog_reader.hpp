#pragma once

/// \file verilog_reader.hpp
/// \brief Structural Verilog front end for the "Network (.v)" abstraction
///        level of MNT Bench.
///
/// The supported subset matches what logic synthesis tools (mockturtle, ABC)
/// emit for FCN benchmarks and what MNT Bench distributes:
///
/// - a single module with a port list,
/// - `input` / `output` / `wire` declarations (scalar nets, comma lists),
/// - continuous assignments `assign lhs = expr;` where expr is built from
///   identifiers, constants (1'b0/1'b1/1'h0/1'h1), parentheses and the
///   operators ~ (not), & (and), ^ (xor), | (or) with standard precedence
///   (~ > & > ^ > |),
/// - gate primitive instantiations `and g1(y, a, b);`, `not(y, a);`,
///   `maj(y, a, b, c);` etc. (one output, first terminal),
/// - `//` line and `/* */` block comments.
///
/// Assignments may appear in any order; dependencies are resolved after
/// parsing. Combinational cycles are rejected.

#include "network/logic_network.hpp"

#include <filesystem>
#include <istream>
#include <string>

namespace mnt::io
{

/// Parses a Verilog module from \p input into a logic network.
///
/// \param input character stream with the Verilog source
/// \param name fallback network name when the module has none
/// \throws mnt::parse_error on syntax errors, undeclared nets, multiply
///         driven nets, or combinational cycles
[[nodiscard]] ntk::logic_network read_verilog(std::istream& input, const std::string& name = "top");

/// Convenience overload reading from a file.
///
/// \throws mnt::mnt_error if the file cannot be opened; mnt::parse_error on
///         syntax errors
[[nodiscard]] ntk::logic_network read_verilog_file(const std::filesystem::path& path);

/// Parses a Verilog module from an in-memory string.
[[nodiscard]] ntk::logic_network read_verilog_string(const std::string& source, const std::string& name = "top");

}  // namespace mnt::io
