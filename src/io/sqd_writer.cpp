#include "io/sqd_writer.hpp"

#include "common/types.hpp"
#include "io/xml.hpp"

#include <fstream>
#include <sstream>

namespace mnt::io
{

void write_sqd(const gl::cell_level_layout& cells, std::ostream& output)
{
    if (cells.technology() != gl::cell_technology::sidb)
    {
        throw precondition_error{"write_sqd: layout is not SiDB technology"};
    }

    xml::element root;
    root.tag = "siqad";
    auto& program = root.add("program");
    program.add("file_purpose", "MNT Bench reproduction SiDB layout");
    program.add("design_name", cells.layout_name());

    auto& layers = root.add("design");
    auto& db_layer = layers.add("layer_prop");
    db_layer.add("name", "DB");
    db_layer.add("type", "DB");

    auto& db = layers.add("layer");
    db.attributes["type"] = "DB";
    for (const auto& c : cells.cells_sorted())
    {
        const auto& payload = cells.get_cell(c);
        auto& dot = db.add("dbdot");
        auto& lat = dot.add("latcoord");
        // abstract site grid -> lattice coordinates (n, m, l)
        lat.attributes["n"] = std::to_string(c.x);
        lat.attributes["m"] = std::to_string(c.y);
        lat.attributes["l"] = std::to_string(static_cast<int>(c.z));
        if (payload.kind == gl::cell_kind::input || payload.kind == gl::cell_kind::output)
        {
            dot.add("label", payload.name);
        }
        if (payload.kind == gl::cell_kind::fixed_1)
        {
            dot.add("perturber", "1");
        }
    }

    output << xml::serialize(root);
}

void write_sqd_file(const gl::cell_level_layout& cells, const std::filesystem::path& path)
{
    std::ofstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot create .sqd file '" + path.string() + "'"};
    }
    write_sqd(cells, file);
}

std::string write_sqd_string(const gl::cell_level_layout& cells)
{
    std::ostringstream stream;
    write_sqd(cells, stream);
    return stream.str();
}

}  // namespace mnt::io
