#include "io/fgl_writer.hpp"

#include "common/types.hpp"
#include "io/xml.hpp"
#include "telemetry/telemetry.hpp"

#include <fstream>
#include <sstream>

namespace mnt::io
{

namespace
{

void add_loc(xml::element& parent, const lyt::coordinate& c)
{
    auto& loc = parent.add("loc");
    loc.add("x", std::to_string(c.x));
    loc.add("y", std::to_string(c.y));
    loc.add("z", std::to_string(c.z));
}

}  // namespace

void write_fgl(const lyt::gate_level_layout& layout, std::ostream& output)
{
    MNT_SPAN("io/fgl_write");
    std::size_t num_records = 0;
    xml::element root;
    root.tag = "fgl";
    auto& lay = root.add("layout");
    lay.add("name", layout.layout_name());
    lay.add("topology", lyt::topology_name(layout.topology()));
    lay.add("clocking", layout.clocking().name());
    auto& size = lay.add("size");
    size.add("x", std::to_string(layout.width()));
    size.add("y", std::to_string(layout.height()));

    // one sorted scan serves both the gate list and the clock-zone list
    const auto tiles = layout.tiles_sorted();

    auto& gates = lay.add("gates");
    for (const auto& c : tiles)
    {
        const auto& d = layout.get(c);
        ++num_records;
        auto& gate = gates.add("gate");
        gate.add("type", std::string{ntk::gate_type_name(d.type)});
        if (!d.io_name.empty())
        {
            gate.add("name", d.io_name);
        }
        add_loc(gate, c);
        if (!d.incoming.empty())
        {
            auto& incoming = gate.add("incoming");
            for (const auto& in : d.incoming)
            {
                add_loc(incoming, in);
            }
        }
    }

    if (!layout.clocking().is_regular())
    {
        auto& zones = lay.add("clockzones");
        for (const auto& c : tiles)
        {
            if (c.z != 0)
            {
                continue;
            }
            auto& zone = zones.add("zone");
            zone.add("x", std::to_string(c.x));
            zone.add("y", std::to_string(c.y));
            zone.add("clock", std::to_string(layout.clock_number(c)));
        }
    }

    const auto document = xml::serialize(root);
    output << document;

    if (tel::enabled())
    {
        tel::count("io.fgl.write_bytes", document.size());
        tel::count("io.fgl.write_records", num_records);
    }
}

void write_fgl_file(const lyt::gate_level_layout& layout, const std::filesystem::path& path)
{
    std::ofstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot create .fgl file '" + path.string() + "'"};
    }
    write_fgl(layout, file);
}

std::string write_fgl_string(const lyt::gate_level_layout& layout)
{
    std::ostringstream stream;
    write_fgl(layout, stream);
    return stream.str();
}

}  // namespace mnt::io
