#pragma once

/// \file ascii_printer.hpp
/// \brief Human-readable ASCII rendering of gate-level layouts for debugging
///        and the example programs (the textual counterpart of MNT Bench's
///        layout previews).

#include "layout/gate_level_layout.hpp"

#include <ostream>
#include <string>

namespace mnt::io
{

/// Options for \ref print_layout.
struct ascii_printer_options
{
    /// Render clock zone digits instead of gate symbols on empty tiles.
    bool show_clock_zones{false};

    /// Mark tiles that have a crossing wire in layer 1 with brackets.
    bool mark_crossings{true};
};

/// Renders \p layout as an ASCII grid. One character per tile:
/// `I` PI, `O` PO, `&` AND, `~&` NAND (rendered `A`), `|` OR, `N` NOR,
/// `^` XOR, `X` XNOR, `!` INV, `F` fanout, `=` wire, `M` MAJ, `.` empty;
/// crossings are wrapped in brackets, e.g. `[=]`.
void print_layout(const lyt::gate_level_layout& layout, std::ostream& output,
                  const ascii_printer_options& options = {});

/// Renders into a string.
[[nodiscard]] std::string layout_to_string(const lyt::gate_level_layout& layout,
                                           const ascii_printer_options& options = {});

}  // namespace mnt::io
