#include "io/xml.hpp"

#include "common/types.hpp"

#include <cctype>
#include <sstream>

namespace mnt::io::xml
{

const element* element::child(const std::string& child_tag) const
{
    for (const auto& c : children)
    {
        if (c->tag == child_tag)
        {
            return c.get();
        }
    }
    return nullptr;
}

std::vector<const element*> element::children_of(const std::string& child_tag) const
{
    std::vector<const element*> result;
    for (const auto& c : children)
    {
        if (c->tag == child_tag)
        {
            result.push_back(c.get());
        }
    }
    return result;
}

const std::string& element::child_text(const std::string& child_tag) const
{
    const auto* c = child(child_tag);
    if (c == nullptr)
    {
        throw parse_error{"missing element <" + child_tag + "> inside <" + tag + ">", line};
    }
    return c->text;
}

element& element::add(const std::string& child_tag)
{
    children.push_back(std::make_unique<element>());
    children.back()->tag = child_tag;
    return *children.back();
}

element& element::add(const std::string& child_tag, const std::string& content)
{
    auto& c = add(child_tag);
    c.text = content;
    return c;
}

namespace
{

class parser
{
public:
    explicit parser(const std::string& document) : doc{document} {}

    std::unique_ptr<element> parse_document()
    {
        skip_misc();
        auto root = parse_element();
        skip_misc();
        if (pos < doc.size())
        {
            throw parse_error{"content after the root element", line};
        }
        return root;
    }

private:
    void skip_whitespace()
    {
        while (pos < doc.size() && std::isspace(static_cast<unsigned char>(doc[pos])))
        {
            if (doc[pos] == '\n')
            {
                ++line;
            }
            ++pos;
        }
    }

    /// Skips whitespace, comments, the XML declaration and processing
    /// instructions.
    void skip_misc()
    {
        while (true)
        {
            skip_whitespace();
            if (match("<?"))
            {
                const auto end = doc.find("?>", pos);
                if (end == std::string::npos)
                {
                    throw parse_error{"unterminated XML declaration", line};
                }
                count_lines(pos, end);
                pos = end + 2;
                continue;
            }
            if (match("<!--"))
            {
                const auto end = doc.find("-->", pos);
                if (end == std::string::npos)
                {
                    throw parse_error{"unterminated comment", line};
                }
                count_lines(pos, end);
                pos = end + 3;
                continue;
            }
            return;
        }
    }

    void count_lines(const std::size_t from, const std::size_t to)
    {
        for (auto i = from; i < to && i < doc.size(); ++i)
        {
            if (doc[i] == '\n')
            {
                ++line;
            }
        }
    }

    bool match(const std::string& s)
    {
        if (doc.compare(pos, s.size(), s) == 0)
        {
            pos += s.size();
            return true;
        }
        return false;
    }

    char peek() const
    {
        return pos < doc.size() ? doc[pos] : '\0';
    }

    std::string parse_name()
    {
        const auto start = pos;
        while (pos < doc.size() && (std::isalnum(static_cast<unsigned char>(doc[pos])) || doc[pos] == '_' ||
                                    doc[pos] == '-' || doc[pos] == ':' || doc[pos] == '.'))
        {
            ++pos;
        }
        if (pos == start)
        {
            throw parse_error{"expected a name", line};
        }
        return doc.substr(start, pos - start);
    }

    std::unique_ptr<element> parse_element()
    {
        if (!match("<"))
        {
            throw parse_error{"expected '<'", line};
        }
        auto elem = std::make_unique<element>();
        elem->line = line;
        elem->tag = parse_name();

        // attributes
        while (true)
        {
            skip_whitespace();
            if (match("/>"))
            {
                return elem;
            }
            if (match(">"))
            {
                break;
            }
            const auto attr = parse_name();
            skip_whitespace();
            if (!match("="))
            {
                throw parse_error{"expected '=' after attribute '" + attr + "'", line};
            }
            skip_whitespace();
            const char quote = peek();
            if (quote != '"' && quote != '\'')
            {
                throw parse_error{"expected quoted attribute value", line};
            }
            ++pos;
            const auto end = doc.find(quote, pos);
            if (end == std::string::npos)
            {
                throw parse_error{"unterminated attribute value", line};
            }
            elem->attributes[attr] = unescape(doc.substr(pos, end - pos));
            count_lines(pos, end);
            pos = end + 1;
        }

        // content
        std::string text;
        while (true)
        {
            if (pos >= doc.size())
            {
                throw parse_error{"unterminated element <" + elem->tag + ">", line};
            }
            if (doc.compare(pos, 4, "<!--") == 0)
            {
                const auto end = doc.find("-->", pos);
                if (end == std::string::npos)
                {
                    throw parse_error{"unterminated comment", line};
                }
                count_lines(pos, end);
                pos = end + 3;
                continue;
            }
            if (doc.compare(pos, 2, "</") == 0)
            {
                pos += 2;
                const auto closing = parse_name();
                if (closing != elem->tag)
                {
                    throw parse_error{"mismatched closing tag </" + closing + "> for <" + elem->tag + ">", line};
                }
                skip_whitespace();
                if (!match(">"))
                {
                    throw parse_error{"expected '>' after closing tag", line};
                }
                elem->text = trim(text);
                return elem;
            }
            if (peek() == '<')
            {
                elem->children.push_back(parse_element());
                continue;
            }
            if (doc[pos] == '\n')
            {
                ++line;
            }
            text.push_back(doc[pos]);
            ++pos;
        }
    }

    static std::string trim(const std::string& s)
    {
        std::size_t begin = 0;
        std::size_t end = s.size();
        while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        {
            ++begin;
        }
        while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        {
            --end;
        }
        return unescape(s.substr(begin, end - begin));
    }

    static std::string unescape(const std::string& s)
    {
        std::string out;
        out.reserve(s.size());
        std::size_t i = 0;
        while (i < s.size())
        {
            if (s[i] == '&')
            {
                if (s.compare(i, 5, "&amp;") == 0)
                {
                    out.push_back('&');
                    i += 5;
                    continue;
                }
                if (s.compare(i, 4, "&lt;") == 0)
                {
                    out.push_back('<');
                    i += 4;
                    continue;
                }
                if (s.compare(i, 4, "&gt;") == 0)
                {
                    out.push_back('>');
                    i += 4;
                    continue;
                }
                if (s.compare(i, 6, "&quot;") == 0)
                {
                    out.push_back('"');
                    i += 6;
                    continue;
                }
                if (s.compare(i, 6, "&apos;") == 0)
                {
                    out.push_back('\'');
                    i += 6;
                    continue;
                }
            }
            out.push_back(s[i]);
            ++i;
        }
        return out;
    }

    const std::string& doc;
    std::size_t pos{0};
    std::size_t line{1};
};

void serialize_element(const element& elem, std::ostringstream& out, const int depth)
{
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    out << indent << '<' << elem.tag;
    for (const auto& [k, v] : elem.attributes)
    {
        out << ' ' << k << "=\"" << escape(v) << '"';
    }
    if (elem.children.empty() && elem.text.empty())
    {
        out << "/>\n";
        return;
    }
    out << '>';
    if (elem.children.empty())
    {
        out << escape(elem.text) << "</" << elem.tag << ">\n";
        return;
    }
    out << '\n';
    if (!elem.text.empty())
    {
        out << indent << "  " << escape(elem.text) << '\n';
    }
    for (const auto& c : elem.children)
    {
        serialize_element(*c, out, depth + 1);
    }
    out << indent << "</" << elem.tag << ">\n";
}

}  // namespace

std::unique_ptr<element> parse(const std::string& document)
{
    parser p{document};
    return p.parse_document();
}

std::string serialize(const element& root)
{
    std::ostringstream out;
    out << "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
    serialize_element(root, out, 0);
    return out.str();
}

std::string escape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw)
    {
        switch (c)
        {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out.push_back(c); break;
        }
    }
    return out;
}

}  // namespace mnt::io::xml
