#include "io/ascii_printer.hpp"

#include <sstream>

namespace mnt::io
{

namespace
{

char gate_symbol(const ntk::gate_type t)
{
    switch (t)
    {
        case ntk::gate_type::pi: return 'I';
        case ntk::gate_type::po: return 'O';
        case ntk::gate_type::buf: return '=';
        case ntk::gate_type::fanout: return 'F';
        case ntk::gate_type::inv: return '!';
        case ntk::gate_type::and2: return '&';
        case ntk::gate_type::nand2: return 'A';
        case ntk::gate_type::or2: return '|';
        case ntk::gate_type::nor2: return 'N';
        case ntk::gate_type::xor2: return '^';
        case ntk::gate_type::xnor2: return 'X';
        case ntk::gate_type::lt2: return '<';
        case ntk::gate_type::gt2: return '>';
        case ntk::gate_type::le2: return 'l';
        case ntk::gate_type::ge2: return 'g';
        case ntk::gate_type::maj3: return 'M';
        default: return '?';
    }
}

}  // namespace

void print_layout(const lyt::gate_level_layout& layout, std::ostream& output, const ascii_printer_options& options)
{
    output << layout.layout_name() << " (" << lyt::topology_name(layout.topology()) << ", "
           << layout.clocking().name() << ", " << layout.width() << " x " << layout.height() << " = "
           << layout.area() << " tiles)\n";

    const bool hex = layout.topology() == lyt::layout_topology::hexagonal_even_row;

    for (std::int32_t y = 0; y < static_cast<std::int32_t>(layout.height()); ++y)
    {
        // hexagonal odd rows are shifted right by half a tile
        if (hex && (y & 1) == 1)
        {
            output << "  ";
        }
        for (std::int32_t x = 0; x < static_cast<std::int32_t>(layout.width()); ++x)
        {
            const lyt::coordinate c{x, y};
            const auto t = layout.type_of(c);
            char symbol = '.';
            if (t != ntk::gate_type::none)
            {
                symbol = gate_symbol(t);
            }
            else if (options.show_clock_zones)
            {
                symbol = static_cast<char>('0' + layout.clock_number(c));
            }

            const bool crossed = options.mark_crossings && layout.has_tile(c.elevated());
            if (crossed)
            {
                output << '[' << symbol << ']' << ' ';
            }
            else
            {
                output << ' ' << symbol << ' ' << ' ';
            }
        }
        output << '\n';
    }
}

std::string layout_to_string(const lyt::gate_level_layout& layout, const ascii_printer_options& options)
{
    std::ostringstream stream;
    print_layout(layout, stream, options);
    return stream.str();
}

}  // namespace mnt::io
