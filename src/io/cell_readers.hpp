#pragma once

/// \file cell_readers.hpp
/// \brief Readers for the cell-level exchange formats written by
///        \ref qca_writer.hpp and \ref sqd_writer.hpp, closing the
///        round-trip so externally edited cell layouts can be re-imported
///        (e.g. after manual fixes in QCADesigner/SiQAD).

#include "gate_library/cell_layout.hpp"

#include <filesystem>
#include <istream>
#include <string>

namespace mnt::io
{

/// Parses a QCADesigner-style document (the subset written by
/// \ref write_qca) into a QCA cell layout.
///
/// \throws mnt::parse_error on malformed documents
[[nodiscard]] gl::cell_level_layout read_qca(std::istream& input);
[[nodiscard]] gl::cell_level_layout read_qca_file(const std::filesystem::path& path);
[[nodiscard]] gl::cell_level_layout read_qca_string(const std::string& document);

/// Parses a SiQAD-style XML document (the subset written by
/// \ref write_sqd) into a SiDB cell layout.
///
/// \throws mnt::parse_error on malformed documents
[[nodiscard]] gl::cell_level_layout read_sqd(std::istream& input);
[[nodiscard]] gl::cell_level_layout read_sqd_file(const std::filesystem::path& path);
[[nodiscard]] gl::cell_level_layout read_sqd_string(const std::string& document);

}  // namespace mnt::io
