#pragma once

/// \file xml.hpp
/// \brief Minimal XML DOM used by the .fgl file format (and the cell-level
///        writers). Supports elements, attributes, text content, comments,
///        and the XML declaration — the subset a human-readable layout
///        exchange format needs; DTDs, namespaces and CDATA are out of scope.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mnt::io::xml
{

/// An XML element node.
struct element
{
    std::string tag;
    std::map<std::string, std::string> attributes;
    /// Concatenated character data directly inside this element (trimmed).
    std::string text;
    std::vector<std::unique_ptr<element>> children;
    /// 1-based source line of the element's opening tag; 0 for elements
    /// built programmatically (writers). Readers thread it into their
    /// parse_error diagnostics.
    std::size_t line{0};

    /// First child with the given tag, or nullptr.
    [[nodiscard]] const element* child(const std::string& child_tag) const;

    /// All children with the given tag.
    [[nodiscard]] std::vector<const element*> children_of(const std::string& child_tag) const;

    /// Text of the first child with the given tag.
    ///
    /// \throws mnt::parse_error if the child does not exist
    [[nodiscard]] const std::string& child_text(const std::string& child_tag) const;

    /// Adds a child element and returns a reference to it.
    element& add(const std::string& child_tag);

    /// Adds a child element containing only text.
    element& add(const std::string& child_tag, const std::string& content);
};

/// Parses an XML document; returns its root element.
///
/// \throws mnt::parse_error on malformed input (with line numbers)
[[nodiscard]] std::unique_ptr<element> parse(const std::string& document);

/// Serializes \p root as an indented XML document (with declaration).
[[nodiscard]] std::string serialize(const element& root);

/// Escapes &, <, >, ", ' for use in text content or attribute values.
[[nodiscard]] std::string escape(const std::string& raw);

}  // namespace mnt::io::xml
