#include "io/fgl_reader.hpp"

#include "common/types.hpp"
#include "io/xml.hpp"
#include "telemetry/telemetry.hpp"
#include "verification/drc.hpp"

#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace mnt::io
{

namespace
{

std::int64_t parse_int(const std::string& text, const std::string& context, const std::size_t line)
{
    std::int64_t value{};
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
    {
        throw parse_error{"invalid integer '" + text + "' in " + context, line};
    }
    return value;
}

/// Hard ceiling on width * height accepted from a file. The dense grid
/// allocates storage for every tile up front, so an absurd declared size
/// must be a diagnostic, not an attempted multi-gigabyte allocation.
constexpr std::int64_t max_fgl_area = 16'777'216;  // 2^24 tiles

std::int32_t checked_i32(const std::int64_t value, const std::string& context, const std::size_t line)
{
    if (value < std::numeric_limits<std::int32_t>::min() || value > std::numeric_limits<std::int32_t>::max())
    {
        throw parse_error{"coordinate " + std::to_string(value) + " out of range in " + context, line};
    }
    return static_cast<std::int32_t>(value);
}

lyt::coordinate parse_loc(const xml::element& loc, const std::string& context)
{
    const auto x = checked_i32(parse_int(loc.child_text("x"), context + "/x", loc.line), context + "/x", loc.line);
    const auto y = checked_i32(parse_int(loc.child_text("y"), context + "/y", loc.line), context + "/y", loc.line);
    std::int64_t z = 0;
    if (loc.child("z") != nullptr)
    {
        z = parse_int(loc.child_text("z"), context + "/z", loc.line);
    }
    if (z < 0 || z > 1)
    {
        throw parse_error{"layer z must be 0 or 1 in " + context, loc.line};
    }
    return {x, y, static_cast<std::uint8_t>(z)};
}

}  // namespace

lyt::gate_level_layout read_fgl(std::istream& input, const fgl_reader_options& options)
{
    MNT_SPAN("io/fgl_read");
    std::ostringstream buffer;
    buffer << input.rdbuf();
    const auto document = buffer.str();
    const auto root = xml::parse(document);

    if (root->tag != "fgl")
    {
        throw parse_error{"root element must be <fgl>, got <" + root->tag + ">", root->line};
    }
    const auto* lay = root->child("layout");
    if (lay == nullptr)
    {
        throw parse_error{"missing <layout> element", root->line};
    }

    const auto name = lay->child_text("name");
    const auto topo = lyt::topology_from_name(lay->child_text("topology"));
    const auto clocking_kind = lyt::clocking_from_name(lay->child_text("clocking"));

    const auto* size = lay->child("size");
    if (size == nullptr)
    {
        throw parse_error{"missing <size> element", lay->line};
    }
    const auto width = parse_int(size->child_text("x"), "size/x", size->line);
    const auto height = parse_int(size->child_text("y"), "size/y", size->line);
    if (width <= 0 || height <= 0)
    {
        throw parse_error{"layout dimensions must be positive", size->line};
    }
    if (width > max_fgl_area || height > max_fgl_area || width * height > max_fgl_area)
    {
        throw parse_error{"layout size " + std::to_string(width) + "x" + std::to_string(height) +
                              " exceeds the supported area of " + std::to_string(max_fgl_area) + " tiles",
                          size->line};
    }

    auto scheme = lyt::clocking_scheme::create(clocking_kind);
    if (!scheme.is_regular())
    {
        const auto* zones = lay->child("clockzones");
        if (zones != nullptr)
        {
            for (const auto* zone : zones->children_of("zone"))
            {
                const auto x = parse_int(zone->child_text("x"), "zone/x", zone->line);
                const auto y = parse_int(zone->child_text("y"), "zone/y", zone->line);
                const auto clock = parse_int(zone->child_text("clock"), "zone/clock", zone->line);
                if (clock < 0 || clock >= lyt::clocking_scheme::num_clocks)
                {
                    throw parse_error{"clock zone must be in [0, 4)", zone->line};
                }
                // zones live on the (already parsed) layout grid; bounding
                // them here keeps hostile coordinates from blowing up the
                // dense per-tile zone storage
                if (x < 0 || y < 0 || x >= width || y >= height)
                {
                    throw parse_error{"clock zone location (" + std::to_string(x) + ", " + std::to_string(y) +
                                          ") is outside the declared layout size",
                                      zone->line};
                }
                scheme.assign_clock({static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)},
                                    static_cast<std::uint8_t>(clock));
            }
        }
    }

    lyt::gate_level_layout layout{name, topo, std::move(scheme), static_cast<std::uint32_t>(width),
                                  static_cast<std::uint32_t>(height)};

    const auto* gates = lay->child("gates");
    if (gates == nullptr)
    {
        throw parse_error{"missing <gates> element", lay->line};
    }

    // first pass: place all gates
    struct pending_connection
    {
        lyt::coordinate from;
        lyt::coordinate to;
        std::size_t line;  // source line of the <loc> for diagnostics
    };
    std::vector<pending_connection> connections;
    std::size_t num_records = 0;

    for (const auto* gate : gates->children_of("gate"))
    {
        ++num_records;
        const auto type_name = gate->child_text("type");
        const auto type = ntk::gate_type_from_name(type_name);
        if (type == ntk::gate_type::none)
        {
            throw parse_error{"unknown gate type '" + type_name + "'", gate->line};
        }
        const auto* loc = gate->child("loc");
        if (loc == nullptr)
        {
            throw parse_error{"gate without <loc>", gate->line};
        }
        const auto c = parse_loc(*loc, "gate/loc");
        std::string io_name;
        if (const auto* n = gate->child("name"); n != nullptr)
        {
            io_name = n->text;
        }
        try
        {
            layout.place(c, type, io_name);
        }
        catch (const precondition_error& e)
        {
            throw design_rule_error{std::string{"fgl (line "} + std::to_string(gate->line) + "): " + e.what()};
        }

        if (const auto* incoming = gate->child("incoming"); incoming != nullptr)
        {
            for (const auto* in : incoming->children_of("loc"))
            {
                const auto from = parse_loc(*in, "incoming/loc");
                if (from == c)
                {
                    throw design_rule_error{std::string{"fgl (line "} + std::to_string(in->line) +
                                            "): gate at " + c.to_string() + " lists itself as fanin"};
                }
                connections.push_back({from, c, in->line});
            }
        }
    }

    // second pass: wire up (order within a gate's list preserved)
    for (const auto& conn : connections)
    {
        try
        {
            layout.connect(conn.from, conn.to);
        }
        catch (const precondition_error& e)
        {
            throw design_rule_error{std::string{"fgl (line "} + std::to_string(conn.line) + "): " + e.what()};
        }
    }

    if (options.run_drc)
    {
        const auto report = ver::gate_level_drc(layout);
        if (!report.passed())
        {
            throw design_rule_error{"fgl: design rule check failed: " + report.errors.front() + " (" +
                                    std::to_string(report.errors.size()) + " error(s))"};
        }
    }

    if (tel::enabled())
    {
        tel::count("io.fgl.read_bytes", document.size());
        tel::count("io.fgl.read_records", num_records);
    }
    return layout;
}

lyt::gate_level_layout read_fgl_file(const std::filesystem::path& path, const fgl_reader_options& options)
{
    std::ifstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot open .fgl file '" + path.string() + "'"};
    }
    return read_fgl(file, options);
}

lyt::gate_level_layout read_fgl_string(const std::string& document, const fgl_reader_options& options)
{
    std::istringstream stream{document};
    return read_fgl(stream, options);
}

}  // namespace mnt::io
