#pragma once

/// \file verilog_writer.hpp
/// \brief Structural Verilog back end: serializes logic networks in the
///        format MNT Bench distributes for the "Network (.v)" level.

#include "network/logic_network.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::io
{

/// Output style of \ref write_verilog.
enum class verilog_style : std::uint8_t
{
    /// Continuous assignments (`assign w = a & b;`); MAJ gates are expanded
    /// into their AND/OR form. This is what synthesis tools emit.
    assignments,
    /// Gate primitive instantiations (`and g0(w, a, b);`); MAJ gates stay
    /// first-class (`maj g1(w, a, b, c);`). Round-trips exactly through
    /// \ref read_verilog.
    primitives
};

/// Serializes \p network as a single Verilog module to \p output.
///
/// Wire names are `n<id>`; PI/PO names are preserved verbatim.
void write_verilog(const ntk::logic_network& network, std::ostream& output,
                   verilog_style style = verilog_style::assignments);

/// Convenience overload writing to a file.
///
/// \throws mnt::mnt_error if the file cannot be created
void write_verilog_file(const ntk::logic_network& network, const std::filesystem::path& path,
                        verilog_style style = verilog_style::assignments);

/// Serializes into a string.
[[nodiscard]] std::string write_verilog_string(const ntk::logic_network& network,
                                               verilog_style style = verilog_style::assignments);

}  // namespace mnt::io
