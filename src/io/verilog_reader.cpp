#include "io/verilog_reader.hpp"

#include "common/types.hpp"
#include "network/gate_type.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace mnt::io
{

namespace
{

using ntk::gate_type;
using ntk::logic_network;

// ---------------------------------------------------------------- tokenizer

struct token
{
    enum class kind : std::uint8_t
    {
        identifier,
        constant,  // value stored in text: "0" or "1"
        symbol,    // single character
        end
    };

    kind type{kind::end};
    std::string text;
    std::size_t line{0};
};

class tokenizer
{
public:
    explicit tokenizer(std::istream& input)
    {
        std::ostringstream buffer;
        buffer << input.rdbuf();
        source = buffer.str();
        tokenize();
    }

    /// Size of the buffered source text (telemetry: bytes read).
    [[nodiscard]] std::size_t num_source_bytes() const noexcept
    {
        return source.size();
    }

    [[nodiscard]] const token& peek(const std::size_t ahead = 0) const
    {
        const auto idx = position + ahead;
        return idx < tokens.size() ? tokens[idx] : sentinel;
    }

    const token& next()
    {
        const auto& t = peek();
        if (position < tokens.size())
        {
            ++position;
        }
        return t;
    }

    [[nodiscard]] bool at_end() const
    {
        return position >= tokens.size();
    }

private:
    void tokenize()
    {
        std::size_t line = 1;
        std::size_t i = 0;
        const auto n = source.size();

        while (i < n)
        {
            const char c = source[i];
            if (c == '\n')
            {
                ++line;
                ++i;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c)))
            {
                ++i;
                continue;
            }
            // comments
            if (c == '/' && i + 1 < n && source[i + 1] == '/')
            {
                while (i < n && source[i] != '\n')
                {
                    ++i;
                }
                continue;
            }
            if (c == '/' && i + 1 < n && source[i + 1] == '*')
            {
                i += 2;
                while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/'))
                {
                    if (source[i] == '\n')
                    {
                        ++line;
                    }
                    ++i;
                }
                if (i + 1 >= n)
                {
                    throw parse_error{"unterminated block comment", line};
                }
                i += 2;
                continue;
            }
            // identifiers / keywords
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\')
            {
                std::size_t start = i;
                if (c == '\\')  // escaped identifier: up to whitespace
                {
                    ++i;
                    start = i;
                    while (i < n && !std::isspace(static_cast<unsigned char>(source[i])))
                    {
                        ++i;
                    }
                }
                else
                {
                    while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_' ||
                                     source[i] == '$' || source[i] == '.'))
                    {
                        ++i;
                    }
                }
                tokens.push_back({token::kind::identifier, source.substr(start, i - start), line});
                continue;
            }
            // sized constants like 1'b0 / 1'h1 and bare digits
            if (std::isdigit(static_cast<unsigned char>(c)))
            {
                std::size_t start = i;
                while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
                {
                    ++i;
                }
                if (i < n && source[i] == '\'')
                {
                    i += 1;
                    if (i < n && (source[i] == 'b' || source[i] == 'h' || source[i] == 'd' || source[i] == 'B' ||
                                  source[i] == 'H' || source[i] == 'D'))
                    {
                        ++i;
                    }
                    std::size_t value_start = i;
                    while (i < n && std::isxdigit(static_cast<unsigned char>(source[i])))
                    {
                        ++i;
                    }
                    const auto value = source.substr(value_start, i - value_start);
                    if (value != "0" && value != "1")
                    {
                        throw parse_error{"only single-bit constants are supported, got '" +
                                              source.substr(start, i - start) + "'",
                                          line};
                    }
                    tokens.push_back({token::kind::constant, value, line});
                }
                else
                {
                    const auto value = source.substr(start, i - start);
                    if (value != "0" && value != "1")
                    {
                        throw parse_error{"unexpected number '" + value + "'", line};
                    }
                    tokens.push_back({token::kind::constant, value, line});
                }
                continue;
            }
            // single-character symbols
            static const std::string symbols = "()[],;=~&|^{}:?";
            if (symbols.find(c) != std::string::npos)
            {
                tokens.push_back({token::kind::symbol, std::string(1, c), line});
                ++i;
                continue;
            }
            throw parse_error{std::string{"unexpected character '"} + c + "'", line};
        }
    }

    std::string source;
    std::vector<token> tokens;
    std::size_t position{0};
    token sentinel{};
};

// ------------------------------------------------------------- expressions

struct expression
{
    enum class kind : std::uint8_t
    {
        net,       // named signal
        constant,  // value 0/1
        op_not,
        op_and,
        op_xor,
        op_or
    };

    kind type;
    std::string name;  // for net
    bool value{};      // for constant
    std::unique_ptr<expression> lhs;
    std::unique_ptr<expression> rhs;
};

using expression_ptr = std::unique_ptr<expression>;

class expression_parser
{
public:
    explicit expression_parser(tokenizer& tokens) : toks{tokens} {}

    expression_ptr parse()
    {
        return parse_or();
    }

private:
    expression_ptr parse_or()
    {
        auto lhs = parse_xor();
        while (toks.peek().type == token::kind::symbol && toks.peek().text == "|")
        {
            toks.next();
            auto node = std::make_unique<expression>();
            node->type = expression::kind::op_or;
            node->lhs = std::move(lhs);
            node->rhs = parse_xor();
            lhs = std::move(node);
        }
        return lhs;
    }

    expression_ptr parse_xor()
    {
        auto lhs = parse_and();
        while (toks.peek().type == token::kind::symbol && toks.peek().text == "^")
        {
            toks.next();
            auto node = std::make_unique<expression>();
            node->type = expression::kind::op_xor;
            node->lhs = std::move(lhs);
            node->rhs = parse_and();
            lhs = std::move(node);
        }
        return lhs;
    }

    expression_ptr parse_and()
    {
        auto lhs = parse_unary();
        while (toks.peek().type == token::kind::symbol && toks.peek().text == "&")
        {
            toks.next();
            auto node = std::make_unique<expression>();
            node->type = expression::kind::op_and;
            node->lhs = std::move(lhs);
            node->rhs = parse_unary();
            lhs = std::move(node);
        }
        return lhs;
    }

    expression_ptr parse_unary()
    {
        if (toks.peek().type == token::kind::symbol && toks.peek().text == "~")
        {
            const auto line = toks.next().line;
            static_cast<void>(line);
            auto node = std::make_unique<expression>();
            node->type = expression::kind::op_not;
            node->lhs = parse_unary();
            return node;
        }
        return parse_primary();
    }

    expression_ptr parse_primary()
    {
        const auto& t = toks.peek();
        if (t.type == token::kind::symbol && t.text == "(")
        {
            toks.next();
            auto inner = parse_or();
            expect_symbol(")");
            return inner;
        }
        if (t.type == token::kind::identifier)
        {
            auto node = std::make_unique<expression>();
            node->type = expression::kind::net;
            node->name = toks.next().text;
            return node;
        }
        if (t.type == token::kind::constant)
        {
            auto node = std::make_unique<expression>();
            node->type = expression::kind::constant;
            node->value = toks.next().text == "1";
            return node;
        }
        throw parse_error{"expected expression, got '" + t.text + "'", t.line};
    }

    void expect_symbol(const std::string& s)
    {
        const auto& t = toks.next();
        if (t.type != token::kind::symbol || t.text != s)
        {
            throw parse_error{"expected '" + s + "', got '" + t.text + "'", t.line};
        }
    }

    tokenizer& toks;
};

// ------------------------------------------------------------------ parser

struct primitive_instance
{
    gate_type type{gate_type::none};
    std::vector<std::string> inputs;
    std::size_t line{0};
};

struct module_description
{
    std::string name;
    std::vector<std::string> inputs;       // in declaration order
    std::vector<std::string> outputs;      // in declaration order
    std::unordered_set<std::string> wires;
    // net -> driving expression or primitive
    std::unordered_map<std::string, expression_ptr> assignments;
    std::unordered_map<std::string, primitive_instance> primitives;
    std::unordered_map<std::string, std::size_t> driver_lines;
    // driven nets in document order; elaboration follows this order so that
    // a written file reads back with gates in their original sequence
    std::vector<std::string> driver_order;
};

class verilog_parser
{
public:
    explicit verilog_parser(std::istream& input) : toks{input} {}

    [[nodiscard]] std::size_t num_source_bytes() const noexcept
    {
        return toks.num_source_bytes();
    }

    module_description parse()
    {
        module_description mod;
        expect_keyword("module");
        mod.name = expect_identifier("module name");
        parse_port_list();
        expect_symbol(";");

        while (true)
        {
            const auto& t = toks.peek();
            if (t.type == token::kind::end)
            {
                throw parse_error{"unexpected end of file: missing 'endmodule'", t.line};
            }
            if (t.type == token::kind::identifier && t.text == "endmodule")
            {
                toks.next();
                break;
            }
            parse_statement(mod);
        }

        if (toks.peek().type != token::kind::end)
        {
            throw parse_error{"content after 'endmodule' (only a single module is supported)", toks.peek().line};
        }
        return mod;
    }

private:
    void parse_port_list()
    {
        // port list is optional; names are re-declared by input/output
        if (toks.peek().type == token::kind::symbol && toks.peek().text == "(")
        {
            toks.next();
            while (!(toks.peek().type == token::kind::symbol && toks.peek().text == ")"))
            {
                const auto& t = toks.next();
                if (t.type == token::kind::end)
                {
                    throw parse_error{"unterminated port list", t.line};
                }
            }
            toks.next();  // consume ')'
        }
    }

    void parse_statement(module_description& mod)
    {
        const auto t = toks.next();
        if (t.type != token::kind::identifier)
        {
            throw parse_error{"expected statement, got '" + t.text + "'", t.line};
        }

        if (t.text == "input" || t.text == "output" || t.text == "wire")
        {
            parse_declaration(mod, t.text, t.line);
            return;
        }
        if (t.text == "assign")
        {
            parse_assignment(mod, t.line);
            return;
        }

        // gate primitive instantiation
        const auto type = ntk::gate_type_from_name(t.text);
        if (type == gate_type::none || type == gate_type::pi || type == gate_type::po)
        {
            throw parse_error{"unknown statement or gate primitive '" + t.text + "'", t.line};
        }
        parse_primitive(mod, type, t.line);
    }

    void parse_declaration(module_description& mod, const std::string& category, const std::size_t line)
    {
        if (toks.peek().type == token::kind::symbol && toks.peek().text == "[")
        {
            throw parse_error{"vector nets are not supported (scalar benchmarks only)", line};
        }
        while (true)
        {
            const auto name = expect_identifier("net name");
            if (category == "input" || category == "output")
            {
                // a port name may appear in exactly one direction, exactly
                // once; accepting repeats would produce networks the writer
                // cannot round-trip (duplicate POs become duplicate drivers)
                const auto declared = [&](const std::vector<std::string>& ports)
                { return std::find(ports.cbegin(), ports.cend(), name) != ports.cend(); };
                if (declared(mod.inputs) || declared(mod.outputs))
                {
                    throw parse_error{"port '" + name + "' is declared more than once", line};
                }
            }
            if (category == "input")
            {
                mod.inputs.push_back(name);
            }
            else if (category == "output")
            {
                mod.outputs.push_back(name);
            }
            else
            {
                mod.wires.insert(name);
            }
            const auto& t = toks.next();
            if (t.type == token::kind::symbol && t.text == ";")
            {
                break;
            }
            if (!(t.type == token::kind::symbol && t.text == ","))
            {
                throw parse_error{"expected ',' or ';' in declaration, got '" + t.text + "'", t.line};
            }
        }
    }

    void parse_assignment(module_description& mod, const std::size_t line)
    {
        const auto lhs = expect_identifier("assignment target");
        expect_symbol("=");
        expression_parser expr_parser{toks};
        auto expr = expr_parser.parse();
        expect_symbol(";");

        if (mod.assignments.contains(lhs) || mod.primitives.contains(lhs))
        {
            throw parse_error{"net '" + lhs + "' is driven multiple times", line};
        }
        mod.assignments.emplace(lhs, std::move(expr));
        mod.driver_lines.emplace(lhs, line);
        mod.driver_order.push_back(lhs);
    }

    void parse_primitive(module_description& mod, const gate_type type, const std::size_t line)
    {
        // optional instance name
        if (toks.peek().type == token::kind::identifier)
        {
            toks.next();
        }
        expect_symbol("(");
        std::vector<std::string> terminals;
        while (true)
        {
            // terminals are net names or constant literals (1'b0 / 1'b1)
            if (toks.peek().type == token::kind::constant)
            {
                terminals.push_back(toks.next().text == "1" ? "$const1" : "$const0");
            }
            else
            {
                terminals.push_back(expect_identifier("terminal"));
            }
            const auto& t = toks.next();
            if (t.type == token::kind::symbol && t.text == ")")
            {
                break;
            }
            if (!(t.type == token::kind::symbol && t.text == ","))
            {
                throw parse_error{"expected ',' or ')' in terminal list, got '" + t.text + "'", t.line};
            }
        }
        expect_symbol(";");

        const auto expected = static_cast<std::size_t>(ntk::gate_arity(type)) + 1u;
        if (terminals.size() != expected)
        {
            throw parse_error{"gate primitive '" + std::string{ntk::gate_type_name(type)} + "' expects " +
                                  std::to_string(expected) + " terminals, got " + std::to_string(terminals.size()),
                              line};
        }

        const auto output = terminals.front();
        if (mod.assignments.contains(output) || mod.primitives.contains(output))
        {
            throw parse_error{"net '" + output + "' is driven multiple times", line};
        }
        primitive_instance inst;
        inst.type = type;
        inst.inputs.assign(terminals.cbegin() + 1, terminals.cend());
        inst.line = line;
        mod.primitives.emplace(output, std::move(inst));
        mod.driver_lines.emplace(output, line);
        mod.driver_order.push_back(output);
    }

    std::string expect_identifier(const std::string& what)
    {
        const auto& t = toks.next();
        if (t.type != token::kind::identifier)
        {
            throw parse_error{"expected " + what + ", got '" + t.text + "'", t.line};
        }
        return t.text;
    }

    void expect_symbol(const std::string& s)
    {
        const auto& t = toks.next();
        if (t.type != token::kind::symbol || t.text != s)
        {
            throw parse_error{"expected '" + s + "', got '" + t.text + "'", t.line};
        }
    }

    void expect_keyword(const std::string& kw)
    {
        const auto& t = toks.next();
        if (t.type != token::kind::identifier || t.text != kw)
        {
            throw parse_error{"expected '" + kw + "', got '" + t.text + "'", t.line};
        }
    }

    tokenizer toks;
};

// ---------------------------------------------------------------- building

class network_builder
{
public:
    explicit network_builder(const module_description& module_desc) :
            mod{module_desc},
            network{module_desc.name}
    {}

    logic_network build()
    {
        for (const auto& in : mod.inputs)
        {
            if (node_of.contains(in))
            {
                throw parse_error{"duplicate input '" + in + "'", 0};
            }
            node_of.emplace(in, network.create_pi(in));
        }

        // elaborate live drivers in document order: demand-driven DFS from
        // the outputs alone would create gates in cone order, so a written
        // file would not read back structurally identical
        const auto live = live_nets();
        for (const auto& net : mod.driver_order)
        {
            if (live.contains(net))
            {
                resolve(net);
            }
        }

        for (const auto& out : mod.outputs)
        {
            network.create_po(resolve(out), out);
        }
        return std::move(network);
    }

private:
    /// Nets reachable from the outputs through the driver maps. Dead
    /// drivers stay unelaborated (and undiagnosed), like ntk::cleanup.
    [[nodiscard]] std::unordered_set<std::string> live_nets() const
    {
        std::unordered_set<std::string> live;
        std::vector<std::string> stack{mod.outputs.cbegin(), mod.outputs.cend()};
        while (!stack.empty())
        {
            auto net = std::move(stack.back());
            stack.pop_back();
            if (!live.insert(net).second)
            {
                continue;
            }
            if (const auto a = mod.assignments.find(net); a != mod.assignments.cend())
            {
                collect_nets(*a->second, stack);
            }
            else if (const auto p = mod.primitives.find(net); p != mod.primitives.cend())
            {
                stack.insert(stack.end(), p->second.inputs.cbegin(), p->second.inputs.cend());
            }
        }
        return live;
    }

    static void collect_nets(const expression& expr, std::vector<std::string>& out)
    {
        switch (expr.type)
        {
            case expression::kind::net: out.push_back(expr.name); break;
            case expression::kind::constant: break;
            case expression::kind::op_not: collect_nets(*expr.lhs, out); break;
            default:
                collect_nets(*expr.lhs, out);
                collect_nets(*expr.rhs, out);
                break;
        }
    }

    logic_network::node resolve(const std::string& net)
    {
        if (net == "$const0")
        {
            return network.get_constant(false);
        }
        if (net == "$const1")
        {
            return network.get_constant(true);
        }
        if (const auto it = node_of.find(net); it != node_of.cend())
        {
            return it->second;
        }
        if (in_progress.contains(net))
        {
            throw parse_error{"combinational cycle through net '" + net + "'", line_of(net)};
        }
        in_progress.insert(net);

        logic_network::node result{};
        if (const auto a = mod.assignments.find(net); a != mod.assignments.cend())
        {
            result = build_expression(*a->second);
        }
        else if (const auto p = mod.primitives.find(net); p != mod.primitives.cend())
        {
            std::vector<logic_network::node> fis;
            fis.reserve(p->second.inputs.size());
            for (const auto& in : p->second.inputs)
            {
                fis.push_back(resolve(in));
            }
            if (p->second.type == gate_type::buf)
            {
                result = fis[0];
            }
            else if (p->second.type == gate_type::inv)
            {
                result = network.create_not(fis[0]);
            }
            else
            {
                result = network.create_gate(p->second.type, fis);
            }
        }
        else
        {
            throw parse_error{"net '" + net + "' is never driven", 0};
        }

        in_progress.erase(net);
        node_of.emplace(net, result);
        return result;
    }

    logic_network::node build_expression(const expression& expr)
    {
        switch (expr.type)
        {
            case expression::kind::net: return resolve(expr.name);
            case expression::kind::constant: return network.get_constant(expr.value);
            case expression::kind::op_not: return network.create_not(build_expression(*expr.lhs));
            case expression::kind::op_and:
                return network.create_and(build_expression(*expr.lhs), build_expression(*expr.rhs));
            case expression::kind::op_xor:
                return network.create_xor(build_expression(*expr.lhs), build_expression(*expr.rhs));
            case expression::kind::op_or:
                return network.create_or(build_expression(*expr.lhs), build_expression(*expr.rhs));
        }
        throw parse_error{"internal expression error", 0};
    }

    [[nodiscard]] std::size_t line_of(const std::string& net) const
    {
        const auto it = mod.driver_lines.find(net);
        return it == mod.driver_lines.cend() ? 0 : it->second;
    }

    const module_description& mod;
    logic_network network;
    std::unordered_map<std::string, logic_network::node> node_of;
    std::unordered_set<std::string> in_progress;
};

}  // namespace

logic_network read_verilog(std::istream& input, const std::string& name)
{
    MNT_SPAN("io/verilog_read");
    verilog_parser parser{input};
    auto mod = parser.parse();
    if (mod.name.empty())
    {
        mod.name = name;
    }
    network_builder builder{mod};
    auto network = builder.build();
    if (tel::enabled())
    {
        tel::count("io.verilog.read_bytes", parser.num_source_bytes());
        tel::count("io.verilog.read_records", network.num_gates());
    }
    return network;
}

logic_network read_verilog_file(const std::filesystem::path& path)
{
    std::ifstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot open Verilog file '" + path.string() + "'"};
    }
    return read_verilog(file, path.stem().string());
}

logic_network read_verilog_string(const std::string& source, const std::string& name)
{
    std::istringstream stream{source};
    return read_verilog(stream, name);
}

}  // namespace mnt::io
