#include "io/qca_writer.hpp"

#include "common/types.hpp"
#include "gate_library/qca_one.hpp"

#include <fstream>
#include <sstream>

namespace mnt::io
{

namespace
{

const char* function_name(const gl::cell_kind kind)
{
    switch (kind)
    {
        case gl::cell_kind::input: return "QCAD_CELL_INPUT";
        case gl::cell_kind::output: return "QCAD_CELL_OUTPUT";
        case gl::cell_kind::fixed_0:
        case gl::cell_kind::fixed_1: return "QCAD_CELL_FIXED";
        default: return "QCAD_CELL_NORMAL";
    }
}

}  // namespace

void write_qca(const gl::cell_level_layout& cells, std::ostream& output)
{
    if (cells.technology() != gl::cell_technology::qca)
    {
        throw precondition_error{"write_qca: layout is not QCA technology"};
    }

    output << "[VERSION]\n"
           << "qcadesigner_version=2.000000\n"
           << "[#VERSION]\n"
           << "[TYPE:DESIGN]\n"
           << "design_name=" << cells.layout_name() << "\n"
           << "cell_count=" << cells.num_cells() << "\n";

    for (const auto& c : cells.cells_sorted())
    {
        const auto& payload = cells.get_cell(c);
        const auto x_nm = static_cast<double>(c.x) * gl::qca_cell_pitch_nm;
        const auto y_nm = static_cast<double>(c.y) * gl::qca_cell_pitch_nm;
        output << "[TYPE:QCADCell]\n"
               << "x=" << x_nm << "\n"
               << "y=" << y_nm << "\n"
               << "layer=" << static_cast<int>(c.z) << "\n"
               << "cell_function=" << function_name(payload.kind) << "\n"
               << "clock=" << static_cast<int>(cells.clock_zone_of(c)) << "\n";
        if (payload.kind == gl::cell_kind::fixed_0)
        {
            output << "polarization=-1.00\n";
        }
        else if (payload.kind == gl::cell_kind::fixed_1)
        {
            output << "polarization=1.00\n";
        }
        else if (payload.kind == gl::cell_kind::crossover)
        {
            output << "mode=QCAD_CELL_MODE_CROSSOVER\n";
        }
        if (!payload.name.empty())
        {
            output << "label=" << payload.name << "\n";
        }
        output << "[#TYPE:QCADCell]\n";
    }
    output << "[#TYPE:DESIGN]\n";
}

void write_qca_file(const gl::cell_level_layout& cells, const std::filesystem::path& path)
{
    std::ofstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot create .qca file '" + path.string() + "'"};
    }
    write_qca(cells, file);
}

std::string write_qca_string(const gl::cell_level_layout& cells)
{
    std::ostringstream stream;
    write_qca(cells, stream);
    return stream.str();
}

}  // namespace mnt::io
