#pragma once

/// \file sqd_writer.hpp
/// \brief SiQAD-style (.sqd) writer for SiDB cell-level layouts, enabling
///        simulation/fabrication handoff of Bestagon layouts.

#include "gate_library/cell_layout.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::io
{

/// Serializes a SiDB cell layout as a SiQAD-compatible XML document.
///
/// \throws mnt::precondition_error if the layout is not SiDB technology
void write_sqd(const gl::cell_level_layout& cells, std::ostream& output);

/// Convenience overload writing to a file.
void write_sqd_file(const gl::cell_level_layout& cells, const std::filesystem::path& path);

/// Serializes into a string.
[[nodiscard]] std::string write_sqd_string(const gl::cell_level_layout& cells);

}  // namespace mnt::io
