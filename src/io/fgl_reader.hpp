#pragma once

/// \file fgl_reader.hpp
/// \brief Validating reader for the .fgl gate-level layout format (see
///        \ref fgl_writer.hpp for the format description).
///
/// The reader is strict: missing elements, unknown gate types, out-of-bounds
/// locations, overfull fanin lists, or references to empty tiles raise
/// mnt::parse_error / mnt::design_rule_error. Optionally a full design rule
/// check can be run after loading.

#include "layout/gate_level_layout.hpp"

#include <filesystem>
#include <istream>
#include <string>

namespace mnt::io
{

/// Options for \ref read_fgl.
struct fgl_reader_options
{
    /// Run \ref mnt::ver::gate_level_drc after loading and throw
    /// mnt::design_rule_error if it reports errors.
    bool run_drc{false};
};

/// Parses an .fgl document from \p input.
///
/// \throws mnt::parse_error on malformed documents,
///         mnt::design_rule_error on semantic violations
[[nodiscard]] lyt::gate_level_layout read_fgl(std::istream& input, const fgl_reader_options& options = {});

/// Convenience overload reading from a file.
[[nodiscard]] lyt::gate_level_layout read_fgl_file(const std::filesystem::path& path,
                                                   const fgl_reader_options& options = {});

/// Parses an .fgl document from an in-memory string.
[[nodiscard]] lyt::gate_level_layout read_fgl_string(const std::string& document,
                                                     const fgl_reader_options& options = {});

}  // namespace mnt::io
