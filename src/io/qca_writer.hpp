#pragma once

/// \file qca_writer.hpp
/// \brief QCADesigner-style writer for QCA cell-level layouts, enabling
///        simulation of MNT Bench layouts in external QCA tools.

#include "gate_library/cell_layout.hpp"

#include <filesystem>
#include <ostream>
#include <string>

namespace mnt::io
{

/// Serializes a QCA cell layout in a QCADesigner-compatible structure.
///
/// \throws mnt::precondition_error if the layout is not QCA technology
void write_qca(const gl::cell_level_layout& cells, std::ostream& output);

/// Convenience overload writing to a file.
void write_qca_file(const gl::cell_level_layout& cells, const std::filesystem::path& path);

/// Serializes into a string.
[[nodiscard]] std::string write_qca_string(const gl::cell_level_layout& cells);

}  // namespace mnt::io
