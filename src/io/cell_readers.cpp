#include "io/cell_readers.hpp"

#include "common/types.hpp"
#include "gate_library/qca_one.hpp"
#include "io/xml.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace mnt::io
{

namespace
{

using gl::cell;
using gl::cell_kind;
using gl::cell_level_layout;
using gl::cell_technology;

struct raw_cell
{
    lyt::coordinate position;
    cell payload;
    std::uint8_t zone{0};
};

std::int64_t to_int(const std::string& text, const std::size_t line, const std::string& what)
{
    std::int64_t value{};
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
    {
        throw parse_error{"invalid integer '" + text + "' for " + what, line};
    }
    return value;
}

double to_double(const std::string& text, const std::size_t line, const std::string& what)
{
    try
    {
        std::size_t used = 0;
        const auto value = std::stod(text, &used);
        if (used != text.size())
        {
            throw std::invalid_argument{text};
        }
        return value;
    }
    catch (const std::exception&)
    {
        throw parse_error{"invalid number '" + text + "' for " + what, line};
    }
}

cell_level_layout build(const std::string& name, const cell_technology tech, const std::vector<raw_cell>& cells)
{
    std::int32_t max_x = 0;
    std::int32_t max_y = 0;
    for (const auto& c : cells)
    {
        if (c.position.x < 0 || c.position.y < 0)
        {
            throw parse_error{"negative cell position " + c.position.to_string(), 0};
        }
        max_x = std::max(max_x, c.position.x);
        max_y = std::max(max_y, c.position.y);
    }
    cell_level_layout layout{name, tech, static_cast<std::uint32_t>(max_x + 1),
                             static_cast<std::uint32_t>(max_y + 1)};
    for (const auto& c : cells)
    {
        layout.place_cell(c.position, c.payload, c.zone);
    }
    return layout;
}

}  // namespace

cell_level_layout read_qca(std::istream& input)
{
    std::string design_name{"design"};
    std::vector<raw_cell> cells;

    raw_cell current{};
    bool in_cell = false;
    std::string line;
    std::size_t line_number = 0;

    while (std::getline(input, line))
    {
        ++line_number;
        // trim
        while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
        {
            line.pop_back();
        }
        if (line.empty())
        {
            continue;
        }

        if (line == "[TYPE:QCADCell]")
        {
            if (in_cell)
            {
                throw parse_error{"nested [TYPE:QCADCell]", line_number};
            }
            in_cell = true;
            current = raw_cell{};
            continue;
        }
        if (line == "[#TYPE:QCADCell]")
        {
            if (!in_cell)
            {
                throw parse_error{"unmatched [#TYPE:QCADCell]", line_number};
            }
            in_cell = false;
            cells.push_back(current);
            continue;
        }
        if (line.front() == '[')
        {
            continue;  // other sections
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
        {
            throw parse_error{"expected key=value, got '" + line + "'", line_number};
        }
        const auto key = line.substr(0, eq);
        const auto value = line.substr(eq + 1);

        if (!in_cell)
        {
            if (key == "design_name")
            {
                design_name = value;
            }
            continue;
        }

        if (key == "x")
        {
            current.position.x =
                static_cast<std::int32_t>(std::llround(to_double(value, line_number, "x") / gl::qca_cell_pitch_nm));
        }
        else if (key == "y")
        {
            current.position.y =
                static_cast<std::int32_t>(std::llround(to_double(value, line_number, "y") / gl::qca_cell_pitch_nm));
        }
        else if (key == "layer")
        {
            const auto layer = to_int(value, line_number, "layer");
            if (layer < 0 || layer > 1)
            {
                throw parse_error{"layer must be 0 or 1", line_number};
            }
            current.position.z = static_cast<std::uint8_t>(layer);
        }
        else if (key == "clock")
        {
            const auto zone = to_int(value, line_number, "clock");
            if (zone < 0 || zone > 3)
            {
                throw parse_error{"clock must be in [0, 4)", line_number};
            }
            current.zone = static_cast<std::uint8_t>(zone);
        }
        else if (key == "cell_function")
        {
            if (value == "QCAD_CELL_INPUT")
            {
                current.payload.kind = cell_kind::input;
            }
            else if (value == "QCAD_CELL_OUTPUT")
            {
                current.payload.kind = cell_kind::output;
            }
            else if (value == "QCAD_CELL_FIXED")
            {
                current.payload.kind = cell_kind::fixed_0;  // refined by polarization
            }
            else if (value == "QCAD_CELL_NORMAL")
            {
                current.payload.kind = cell_kind::normal;
            }
            else
            {
                throw parse_error{"unknown cell_function '" + value + "'", line_number};
            }
        }
        else if (key == "polarization")
        {
            current.payload.kind =
                to_double(value, line_number, "polarization") > 0 ? cell_kind::fixed_1 : cell_kind::fixed_0;
        }
        else if (key == "mode")
        {
            if (value == "QCAD_CELL_MODE_CROSSOVER")
            {
                current.payload.kind = cell_kind::crossover;
            }
        }
        else if (key == "label")
        {
            current.payload.name = value;
        }
        // unknown keys are ignored for forward compatibility
    }

    if (in_cell)
    {
        throw parse_error{"unterminated [TYPE:QCADCell] block", line_number};
    }
    return build(design_name, cell_technology::qca, cells);
}

cell_level_layout read_qca_file(const std::filesystem::path& path)
{
    std::ifstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot open .qca file '" + path.string() + "'"};
    }
    return read_qca(file);
}

cell_level_layout read_qca_string(const std::string& document)
{
    std::istringstream stream{document};
    return read_qca(stream);
}

cell_level_layout read_sqd(std::istream& input)
{
    std::ostringstream buffer;
    buffer << input.rdbuf();
    const auto root = xml::parse(buffer.str());
    if (root->tag != "siqad")
    {
        throw parse_error{"root element must be <siqad>, got <" + root->tag + ">", 0};
    }

    std::string design_name{"design"};
    if (const auto* program = root->child("program"); program != nullptr)
    {
        if (const auto* n = program->child("design_name"); n != nullptr)
        {
            design_name = n->text;
        }
    }

    std::vector<raw_cell> cells;
    const auto* design = root->child("design");
    if (design == nullptr)
    {
        throw parse_error{"missing <design> element", 0};
    }
    for (const auto* layer : design->children_of("layer"))
    {
        for (const auto* dot : layer->children_of("dbdot"))
        {
            const auto* lat = dot->child("latcoord");
            if (lat == nullptr)
            {
                throw parse_error{"dbdot without <latcoord>", 0};
            }
            raw_cell c{};
            const auto attr = [&](const char* key) -> std::int64_t
            {
                const auto it = lat->attributes.find(key);
                if (it == lat->attributes.cend())
                {
                    throw parse_error{std::string{"latcoord missing attribute '"} + key + "'", 0};
                }
                return to_int(it->second, 0, key);
            };
            c.position = {static_cast<std::int32_t>(attr("n")), static_cast<std::int32_t>(attr("m")),
                          static_cast<std::uint8_t>(attr("l"))};
            if (const auto* label = dot->child("label"); label != nullptr)
            {
                c.payload.name = label->text;
                // in our .sqd dialect, named dots are I/O pads; inputs carry
                // "in"-prefixed benchmark names by convention — since roles
                // are not part of SiQAD, mark both as input-or-output by
                // placement heuristic: outputs sit lower (larger m)
                c.payload.kind = cell_kind::input;
            }
            if (dot->child("perturber") != nullptr)
            {
                c.payload.kind = cell_kind::fixed_1;
            }
            cells.push_back(c);
        }
    }

    // second pass: distinguish outputs from inputs by vertical position
    // (ROW-clocked designs flow top to bottom)
    std::int32_t max_y = 0;
    for (const auto& c : cells)
    {
        max_y = std::max(max_y, c.position.y);
    }
    for (auto& c : cells)
    {
        if (c.payload.kind == cell_kind::input && c.position.y > max_y / 2)
        {
            c.payload.kind = cell_kind::output;
        }
    }

    return build(design_name, cell_technology::sidb, cells);
}

cell_level_layout read_sqd_file(const std::filesystem::path& path)
{
    std::ifstream file{path};
    if (!file)
    {
        throw mnt_error{"cannot open .sqd file '" + path.string() + "'"};
    }
    return read_sqd(file);
}

cell_level_layout read_sqd_string(const std::string& document)
{
    std::istringstream stream{document};
    return read_sqd(stream);
}

}  // namespace mnt::io
