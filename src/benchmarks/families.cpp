#include "benchmarks/families.hpp"

#include "common/taskrt/taskrt.hpp"
#include "common/types.hpp"
#include "io/verilog_writer.hpp"
#include "service/hash.hpp"
#include "telemetry/telemetry.hpp"

#include <cstdio>
#include <utility>

namespace mnt::bm
{

namespace
{

/// splitmix64 finalizer: the same bijective mixer pbt::rng steps with; used
/// here to spread (seed, index, version) into independent per-function
/// streams without sequential dependence.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept
{
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31U);
}

[[nodiscard]] std::string hex64(const std::uint64_t value)
{
    char buffer[19];
    std::snprintf(buffer, sizeof buffer, "0x%016llx", static_cast<unsigned long long>(value));
    return std::string{buffer};
}

[[nodiscard]] std::string_view size_class_name(const size_class size) noexcept
{
    switch (size)
    {
        case size_class::tiny: return "tiny";
        case size_class::small: return "small";
        case size_class::medium: return "medium";
        case size_class::large: return "large";
    }
    return "small";
}

}  // namespace

std::string family_set_name(const family_spec& spec)
{
    return "Family-" + spec.name;
}

std::string family_id(const family_spec& spec)
{
    // canonical parameter string: every field that influences generation, in
    // a fixed order, plus the generator version. Hash collisions aside, two
    // families share an id iff they generate identical functions.
    const auto& s = spec.shape;
    std::string canonical;
    canonical.reserve(256);
    canonical += "mnt-family|v";
    canonical += std::to_string(family_generator_version);
    canonical += "|name=" + spec.name;
    canonical += "|seed=" + hex64(spec.seed);
    canonical += "|count=" + std::to_string(spec.count);
    canonical += "|pis=" + std::to_string(s.min_pis) + ".." + std::to_string(s.max_pis);
    canonical += "|pos=" + std::to_string(s.min_pos) + ".." + std::to_string(s.max_pos);
    canonical += "|gates=" + std::to_string(s.min_gates) + ".." + std::to_string(s.max_gates);
    canonical += "|window=" + std::to_string(s.window);
    canonical += "|chain=" + std::to_string(s.chain_percent);
    canonical += "|maj=" + std::string{s.allow_maj ? "1" : "0"};
    canonical += "|xor=" + std::string{s.allow_xor ? "1" : "0"};
    canonical += "|const=" + std::to_string(s.constant_percent);
    return svc::content_hash(canonical);
}

std::string family_function_name(const std::size_t index)
{
    char buffer[16];
    std::snprintf(buffer, sizeof buffer, "f%05zu", index);
    return std::string{buffer};
}

std::uint64_t family_function_seed(const family_spec& spec, const std::size_t index)
{
    // mix in the version first so a generator bump reshuffles every stream,
    // then the index with a golden-ratio stride (splitmix64's increment) so
    // neighbouring indices land in unrelated streams
    auto z = spec.seed ^ mix64(0x6d6e745f66616d00ull + family_generator_version);
    z ^= mix64((static_cast<std::uint64_t>(index) + 1ull) * 0x9e3779b97f4a7c15ull);
    return mix64(z);
}

ntk::logic_network family_network(const family_spec& spec, const std::size_t index)
{
    if (index >= spec.count)
    {
        throw precondition_error{"family_network: function index out of range"};
    }
    auto shape = spec.shape;
    shape.name = family_function_name(index);
    pbt::rng random{family_function_seed(spec, index)};
    auto network = pbt::random_network(random, shape);
    tel::count("family.networks_generated");
    return network;
}

std::vector<benchmark_entry> family_entries(const family_spec& spec)
{
    const auto id = family_id(spec);
    const auto set = family_set_name(spec);

    std::vector<benchmark_entry> entries;
    entries.reserve(spec.count);
    for (std::size_t i = 0; i < spec.count; ++i)
    {
        benchmark_entry entry{};
        entry.set = set;
        entry.name = family_function_name(i);
        entry.build = [spec, i] { return family_network(spec, i); };
        entry.size = spec.size;
        entry.family = id;
        entry.family_seed = family_function_seed(spec, i);
        entries.push_back(std::move(entry));
    }
    tel::count("family.entries_registered", entries.size());
    return entries;
}

svc::json_value family_manifest(const family_spec& spec)
{
    // per-function records are pure in (spec, index): compute them in
    // parallel into pre-sized slots, then assemble the document serially in
    // index order — byte-identical at any thread count
    struct function_record
    {
        std::uint64_t pis{};
        std::uint64_t pos{};
        std::uint64_t gates{};
        std::string verilog_sha;
    };
    std::vector<function_record> records(spec.count);

    trt::parallel_for(0, spec.count, 1,
                      [&](const std::size_t begin, const std::size_t end)
                      {
                          for (std::size_t i = begin; i < end; ++i)
                          {
                              const auto network = family_network(spec, i);
                              records[i].pis = network.num_pis();
                              records[i].pos = network.num_pos();
                              records[i].gates = network.num_gates();
                              records[i].verilog_sha = svc::content_hash(
                                  io::write_verilog_string(network, io::verilog_style::primitives));
                          }
                      });

    const auto& s = spec.shape;

    auto shape = svc::json_value::make_object();
    shape.set("min_pis", svc::json_value{static_cast<std::uint64_t>(s.min_pis)});
    shape.set("max_pis", svc::json_value{static_cast<std::uint64_t>(s.max_pis)});
    shape.set("min_pos", svc::json_value{static_cast<std::uint64_t>(s.min_pos)});
    shape.set("max_pos", svc::json_value{static_cast<std::uint64_t>(s.max_pos)});
    shape.set("min_gates", svc::json_value{static_cast<std::uint64_t>(s.min_gates)});
    shape.set("max_gates", svc::json_value{static_cast<std::uint64_t>(s.max_gates)});
    shape.set("window", svc::json_value{static_cast<std::uint64_t>(s.window)});
    shape.set("chain_percent", svc::json_value{s.chain_percent});
    shape.set("allow_maj", svc::json_value{s.allow_maj});
    shape.set("allow_xor", svc::json_value{s.allow_xor});
    shape.set("constant_percent", svc::json_value{s.constant_percent});

    auto functions = svc::json_value::make_array();
    for (std::size_t i = 0; i < spec.count; ++i)
    {
        auto row = svc::json_value::make_object();
        row.set("name", svc::json_value{family_function_name(i)});
        row.set("seed", svc::json_value{hex64(family_function_seed(spec, i))});
        row.set("pis", svc::json_value{records[i].pis});
        row.set("pos", svc::json_value{records[i].pos});
        row.set("gates", svc::json_value{records[i].gates});
        row.set("verilog_sha", svc::json_value{records[i].verilog_sha});
        functions.push_back(std::move(row));
    }

    auto manifest = svc::json_value::make_object();
    manifest.set("manifest_version", svc::json_value{std::uint64_t{1}});
    manifest.set("generator_version", svc::json_value{static_cast<std::uint64_t>(family_generator_version)});
    manifest.set("family", svc::json_value{family_id(spec)});
    manifest.set("name", svc::json_value{spec.name});
    manifest.set("set", svc::json_value{family_set_name(spec)});
    manifest.set("seed", svc::json_value{hex64(spec.seed)});
    manifest.set("count", svc::json_value{static_cast<std::uint64_t>(spec.count)});
    manifest.set("size", svc::json_value{std::string{size_class_name(spec.size)}});
    manifest.set("shape", std::move(shape));
    manifest.set("functions", std::move(functions));

    tel::count("family.manifests_built");
    return manifest;
}

std::string family_manifest_bytes(const family_spec& spec)
{
    return family_manifest(spec).dump() + "\n";
}

std::string family_manifest_hash(const family_spec& spec)
{
    return svc::content_hash(family_manifest_bytes(spec));
}

std::vector<family_spec> reference_families()
{
    // three gate-mix corners, 1000 functions each. The shapes are locked by
    // KATs (tests/test_families.cpp): changing any field here without
    // bumping family_generator_version breaks those tests by design.
    family_spec aoi{};
    aoi.name = "aoi";
    aoi.seed = 0x616f692d76312e30ull;  // "aoi-v1.0"
    aoi.shape.min_pis = 4;
    aoi.shape.max_pis = 8;
    aoi.shape.min_pos = 1;
    aoi.shape.max_pos = 4;
    aoi.shape.min_gates = 8;
    aoi.shape.max_gates = 32;
    aoi.shape.window = 12;
    aoi.shape.chain_percent = 35;
    aoi.shape.allow_maj = false;
    aoi.shape.allow_xor = false;
    aoi.shape.constant_percent = 0;

    family_spec xor_heavy = aoi;
    xor_heavy.name = "xor";
    xor_heavy.seed = 0x786f722d76312e30ull;  // "xor-v1.0"
    xor_heavy.shape.allow_xor = true;
    xor_heavy.shape.chain_percent = 50;

    family_spec maj = aoi;
    maj.name = "maj";
    maj.seed = 0x6d616a2d76312e30ull;  // "maj-v1.0"
    maj.shape.allow_maj = true;
    maj.shape.allow_xor = true;
    maj.shape.max_gates = 40;

    return {aoi, xor_heavy, maj};
}

std::optional<family_spec> find_reference_family(const std::string& name)
{
    for (auto& spec : reference_families())
    {
        if (spec.name == name)
        {
            return spec;
        }
    }
    return std::nullopt;
}

}  // namespace mnt::bm
