#include "benchmarks/functions.hpp"

#include <string>
#include <vector>

namespace mnt::bm
{

using ntk::logic_network;
using node = logic_network::node;

logic_network mux21()
{
    logic_network network{"mux21"};
    const auto s = network.create_pi("s");
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto l = network.create_and(network.create_not(s), a);
    const auto r = network.create_and(s, b);
    network.create_po(network.create_or(l, r), "y");
    return network;
}

logic_network xor2()
{
    logic_network network{"xor2"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto l = network.create_and(a, network.create_not(b));
    const auto r = network.create_and(network.create_not(a), b);
    network.create_po(network.create_or(l, r), "y");
    return network;
}

logic_network xnor2()
{
    logic_network network{"xnor2"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto both = network.create_and(a, b);
    const auto neither = network.create_and(network.create_not(a), network.create_not(b));
    network.create_po(network.create_or(both, neither), "y");
    return network;
}

logic_network half_adder()
{
    logic_network network{"ha"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_xor(a, b), "sum");
    network.create_po(network.create_and(a, b), "carry");
    return network;
}

logic_network full_adder()
{
    logic_network network{"fa"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto cin = network.create_pi("cin");
    const auto axb = network.create_xor(a, b);
    network.create_po(network.create_xor(axb, cin), "sum");
    network.create_po(network.create_or(network.create_and(a, b), network.create_and(axb, cin)), "carry");
    return network;
}

logic_network parity_generator()
{
    logic_network network{"par_gen"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    network.create_po(network.create_xor(network.create_xor(a, b), c), "parity");
    return network;
}

logic_network parity_checker()
{
    logic_network network{"par_check"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto p = network.create_pi("p");
    const auto parity = network.create_xor(network.create_xor(a, b), c);
    network.create_po(network.create_xnor(parity, p), "ok");
    return network;
}

logic_network t_function()
{
    logic_network network{"t"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto d = network.create_pi("d");
    const auto e = network.create_pi("e");
    const auto ab = network.create_and(a, b);
    const auto cd = network.create_or(c, d);
    const auto x = network.create_xor(ab, cd);
    network.create_po(network.create_and(x, e), "f0");
    network.create_po(network.create_or(network.create_not(x), network.create_and(d, e)), "f1");
    return network;
}

logic_network b1_r2()
{
    logic_network network{"b1_r2"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    network.create_po(network.create_or(a, b), "o0");
    network.create_po(network.create_and(network.create_not(a), c), "o1");
    network.create_po(network.create_xor(b, c), "o2");
    network.create_po(network.create_nand(a, network.create_or(b, c)), "o3");
    return network;
}

logic_network majority5()
{
    logic_network network{"majority"};
    std::vector<node> in;
    for (int i = 0; i < 5; ++i)
    {
        in.push_back(network.create_pi("x" + std::to_string(i)));
    }
    // maj5(a..e) = maj3(e, maj3(a, b, c), maj3(c, d, maj3(a, b, d)))
    // (standard MAJ-of-MAJ decomposition)
    const auto m1 = network.create_maj(in[0], in[1], in[2]);
    const auto m2 = network.create_maj(in[0], in[1], in[3]);
    const auto m3 = network.create_maj(in[2], in[3], m2);
    network.create_po(network.create_maj(in[4], m1, m3), "maj");
    return network;
}

logic_network newtag()
{
    logic_network network{"newtag"};
    std::vector<node> in;
    for (int i = 0; i < 8; ++i)
    {
        in.push_back(network.create_pi("x" + std::to_string(i)));
    }
    // tag match: (x0..x3 equals pattern x4..x7)
    node acc = network.get_constant(true);
    for (int i = 0; i < 4; ++i)
    {
        acc = network.create_and(acc, network.create_xnor(in[static_cast<std::size_t>(i)],
                                                          in[static_cast<std::size_t>(i + 4)]));
    }
    network.create_po(acc, "match");
    return network;
}

logic_network clpl()
{
    logic_network network{"clpl"};
    // carry-lookahead propagate chain: 5 stages with generate/propagate
    std::vector<node> g;
    std::vector<node> p;
    for (int i = 0; i < 5; ++i)
    {
        g.push_back(network.create_pi("g" + std::to_string(i)));
        p.push_back(network.create_pi("p" + std::to_string(i)));
    }
    const auto c0 = network.create_pi("c0");
    auto carry = c0;
    for (int i = 0; i < 5; ++i)
    {
        carry = network.create_or(g[static_cast<std::size_t>(i)],
                                  network.create_and(p[static_cast<std::size_t>(i)], carry));
        network.create_po(carry, "c" + std::to_string(i + 1));
    }
    return network;
}

logic_network one_bit_adder_aoig()
{
    logic_network network{"1bitAdderAOIG"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto cin = network.create_pi("cin");
    // sum = a ^ b ^ cin in AOI form
    const auto nab = network.create_not(network.create_or(network.create_and(a, b),
                                                          network.create_and(network.create_not(a),
                                                                             network.create_not(b))));
    // nab = a ^ b
    const auto sum = network.create_or(network.create_and(nab, network.create_not(cin)),
                                       network.create_and(network.create_not(nab), cin));
    const auto carry = network.create_or(network.create_and(a, b), network.create_and(nab, cin));
    network.create_po(sum, "sum");
    network.create_po(carry, "cout");
    return network;
}

logic_network one_bit_adder_maj()
{
    logic_network network{"1bitAdderMaj"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto cin = network.create_pi("cin");
    const auto carry = network.create_maj(a, b, cin);
    // sum = maj(~carry, maj(a, b, ~cin), cin) — the classic MAJ-3 adder
    const auto m = network.create_maj(a, b, network.create_not(cin));
    const auto sum = network.create_maj(network.create_not(carry), m, cin);
    network.create_po(sum, "sum");
    network.create_po(carry, "cout");
    return network;
}

logic_network two_bit_adder_maj()
{
    logic_network network{"2bitAdderMaj"};
    const auto a0 = network.create_pi("a0");
    const auto b0 = network.create_pi("b0");
    const auto a1 = network.create_pi("a1");
    const auto b1 = network.create_pi("b1");
    const auto cin = network.create_pi("cin");

    const auto c1 = network.create_maj(a0, b0, cin);
    const auto s0 = network.create_maj(network.create_not(c1), network.create_maj(a0, b0, network.create_not(cin)),
                                       cin);
    const auto c2 = network.create_maj(a1, b1, c1);
    const auto s1 = network.create_maj(network.create_not(c2), network.create_maj(a1, b1, network.create_not(c1)),
                                       c1);
    network.create_po(s0, "s0");
    network.create_po(s1, "s1");
    network.create_po(c2, "cout");
    return network;
}

logic_network xor5_maj()
{
    logic_network network{"xor5Maj"};
    std::vector<node> in;
    for (int i = 0; i < 5; ++i)
    {
        in.push_back(network.create_pi("x" + std::to_string(i)));
    }
    auto acc = in[0];
    for (int i = 1; i < 5; ++i)
    {
        acc = network.create_xor(acc, in[static_cast<std::size_t>(i)]);
    }
    network.create_po(acc, "y");
    return network;
}

logic_network cm82a_5()
{
    logic_network network{"cm82a_5"};
    // MCNC cm82a: a 2-bit adder-like slice, 5 inputs / 3 outputs
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto d = network.create_pi("d");
    const auto e = network.create_pi("e");
    const auto s0 = network.create_xor(network.create_xor(a, b), c);
    const auto c0 = network.create_maj(a, b, c);
    const auto s1 = network.create_xor(network.create_xor(d, e), c0);
    const auto c1 = network.create_maj(d, e, c0);
    network.create_po(s0, "f0");
    network.create_po(s1, "f1");
    network.create_po(c1, "f2");
    return network;
}

logic_network parity16()
{
    logic_network network{"parity"};
    std::vector<node> layer;
    for (int i = 0; i < 16; ++i)
    {
        layer.push_back(network.create_pi("x" + std::to_string(i)));
    }
    // balanced xor tree
    while (layer.size() > 1)
    {
        std::vector<node> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
        {
            next.push_back(network.create_xor(layer[i], layer[i + 1]));
        }
        if (layer.size() % 2 == 1)
        {
            next.push_back(layer.back());
        }
        layer = std::move(next);
    }
    network.create_po(layer[0], "parity");
    return network;
}

logic_network c17()
{
    logic_network network{"c17"};
    const auto in1 = network.create_pi("1");
    const auto in2 = network.create_pi("2");
    const auto in3 = network.create_pi("3");
    const auto in6 = network.create_pi("6");
    const auto in7 = network.create_pi("7");

    const auto n10 = network.create_nand(in1, in3);
    const auto n11 = network.create_nand(in3, in6);
    const auto n16 = network.create_nand(in2, n11);
    const auto n19 = network.create_nand(n11, in7);
    network.create_po(network.create_nand(n10, n16), "22");
    network.create_po(network.create_nand(n16, n19), "23");
    return network;
}

}  // namespace mnt::bm
