#include "benchmarks/suites.hpp"

#include "benchmarks/functions.hpp"
#include "benchmarks/synthetic.hpp"

namespace mnt::bm
{

namespace
{

/// Synthetic stand-in entry with the published I/O/N counts.
benchmark_entry synthetic_entry(const std::string& set, const std::string& name, const std::size_t pis,
                                const std::size_t pos, const std::size_t gates, const size_class size)
{
    synthetic_spec spec{};
    spec.name = name;
    spec.num_pis = pis;
    spec.num_pos = pos;
    spec.num_gates = gates;
    spec.window = 64;
    // stable per-circuit seed so every run regenerates identical networks
    spec.seed = 0x9e3779b97f4a7c15ull ^ std::hash<std::string>{}(set + "/" + name);
    return {set, name, [spec]() { return synthetic_network(spec); }, size};
}

}  // namespace

std::vector<benchmark_entry> trindade16()
{
    return {
        {"Trindade16", "2:1 MUX", &mux21, size_class::tiny},
        {"Trindade16", "XOR", &xor2, size_class::tiny},
        {"Trindade16", "XNOR", &xnor2, size_class::tiny},
        {"Trindade16", "Half Adder", &half_adder, size_class::tiny},
        {"Trindade16", "Full Adder", &full_adder, size_class::tiny},
        {"Trindade16", "Parity Gen.", &parity_generator, size_class::tiny},
        {"Trindade16", "Parity Check.", &parity_checker, size_class::tiny},
    };
}

std::vector<benchmark_entry> fontes18()
{
    return {
        {"Fontes18", "t", &t_function, size_class::small},
        {"Fontes18", "b1_r2", &b1_r2, size_class::small},
        {"Fontes18", "majority", &majority5, size_class::small},
        {"Fontes18", "newtag", &newtag, size_class::small},
        {"Fontes18", "clpl", &clpl, size_class::small},
        {"Fontes18", "1bitAdderAOIG", &one_bit_adder_aoig, size_class::small},
        {"Fontes18", "1bitAdderMaj", &one_bit_adder_maj, size_class::small},
        {"Fontes18", "2bitAdderMaj", &two_bit_adder_maj, size_class::small},
        {"Fontes18", "xor5Maj", &xor5_maj, size_class::small},
        {"Fontes18", "cm82a_5", &cm82a_5, size_class::small},
        {"Fontes18", "parity", &parity16, size_class::small},
    };
}

std::vector<benchmark_entry> iscas85()
{
    // I/O from the published circuits, N from MNT Bench's Table I
    return {
        {"ISCAS85", "c17", &c17, size_class::tiny},
        synthetic_entry("ISCAS85", "c432", 36, 7, 414, size_class::medium),
        synthetic_entry("ISCAS85", "c499", 41, 32, 816, size_class::medium),
        synthetic_entry("ISCAS85", "c880", 60, 26, 639, size_class::medium),
        synthetic_entry("ISCAS85", "c1355", 41, 32, 1064, size_class::large),
        synthetic_entry("ISCAS85", "c1908", 33, 25, 813, size_class::medium),
        synthetic_entry("ISCAS85", "c2670", 233, 140, 1463, size_class::large),
        synthetic_entry("ISCAS85", "c3540", 50, 22, 1987, size_class::large),
        synthetic_entry("ISCAS85", "c5315", 178, 123, 3628, size_class::large),
        synthetic_entry("ISCAS85", "c6288", 32, 32, 6467, size_class::large),
        synthetic_entry("ISCAS85", "c7552", 207, 108, 4501, size_class::large),
    };
}

std::vector<benchmark_entry> epfl()
{
    return {
        synthetic_entry("EPFL", "ctrl", 7, 25, 409, size_class::medium),
        synthetic_entry("EPFL", "router", 60, 30, 490, size_class::medium),
        synthetic_entry("EPFL", "int2float", 11, 7, 545, size_class::medium),
        synthetic_entry("EPFL", "cavlc", 10, 11, 1600, size_class::large),
        synthetic_entry("EPFL", "priority", 128, 8, 2349, size_class::large),
        synthetic_entry("EPFL", "dec", 8, 256, 320, size_class::medium),
        synthetic_entry("EPFL", "i2c", 136, 127, 2728, size_class::large),
        synthetic_entry("EPFL", "adder", 256, 129, 2541, size_class::large),
        synthetic_entry("EPFL", "bar", 135, 128, 6672, size_class::large),
        synthetic_entry("EPFL", "max", 512, 130, 6110, size_class::large),
        synthetic_entry("EPFL", "sin", 24, 25, 11437, size_class::large),
    };
}

std::vector<benchmark_entry> all_suites()
{
    std::vector<benchmark_entry> all;
    for (auto&& set : {trindade16(), fontes18(), iscas85(), epfl()})
    {
        all.insert(all.end(), set.begin(), set.end());
    }
    return all;
}

}  // namespace mnt::bm
