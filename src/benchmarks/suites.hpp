#pragma once

/// \file suites.hpp
/// \brief The four benchmark sets of MNT Bench's Table I: Trindade16,
///        Fontes18, ISCAS85 and EPFL, each as a list of named network
///        builders. Small functions are exact netlists; the large
///        ISCAS85/EPFL circuits are deterministic synthetic stand-ins with
///        the published I/O/N counts (DESIGN.md §4).

#include "network/logic_network.hpp"

#include <functional>
#include <string>
#include <vector>

namespace mnt::bm
{

/// Rough instance size, used by harnesses to budget the tool portfolio.
enum class size_class : std::uint8_t
{
    /// Up to ~a dozen placeable nodes: exact applies.
    tiny,
    /// Up to ~100 nodes: stochastic placement applies.
    small,
    /// Hundreds of nodes.
    medium,
    /// Thousands of nodes: scalable heuristics only.
    large
};

/// One benchmark function inside a set.
struct benchmark_entry
{
    /// Set name: "Trindade16", "Fontes18", "ISCAS85", "EPFL", or a synthetic
    /// family set ("Family-<name>", see families.hpp).
    std::string set;

    /// Function name as it appears in Table I.
    std::string name;

    /// Builds the network on demand.
    std::function<ntk::logic_network()> build;

    size_class size{size_class::tiny};

    /// Synthetic-family id (32-hex hash of parameters + seed + generator
    /// version, see \ref mnt::bm::family_id); empty for the curated Table I
    /// functions. Propagated through the portfolio into catalog records and
    /// the service's `family` facet.
    std::string family;

    /// Per-function generator seed within the family; 0 for curated entries.
    std::uint64_t family_seed{0};
};

/// The Trindade16 set (7 functions).
[[nodiscard]] std::vector<benchmark_entry> trindade16();

/// The Fontes18 set (11 functions).
[[nodiscard]] std::vector<benchmark_entry> fontes18();

/// The ISCAS85 set (11 circuits; c17 exact, the rest synthetic stand-ins).
[[nodiscard]] std::vector<benchmark_entry> iscas85();

/// The EPFL set (11 circuits; synthetic stand-ins).
[[nodiscard]] std::vector<benchmark_entry> epfl();

/// All four sets concatenated in Table I order.
[[nodiscard]] std::vector<benchmark_entry> all_suites();

}  // namespace mnt::bm
