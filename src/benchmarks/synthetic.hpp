#pragma once

/// \file synthetic.hpp
/// \brief Deterministic synthetic benchmark networks.
///
/// The large ISCAS85 and EPFL circuits are not redistributable inside this
/// repository, so they are substituted by deterministic pseudo-random
/// networks that match the published input/output/gate counts (see
/// DESIGN.md §4). The generator produces circuits with *locality*: fanins
/// are drawn from a sliding window of recently created nodes, mirroring the
/// wire-length locality of real logic and keeping physical design workloads
/// realistic.

#include "network/logic_network.hpp"

#include <cstdint>
#include <string>

namespace mnt::bm
{

/// Specification of a synthetic network.
struct synthetic_spec
{
    std::string name{"synthetic"};
    std::size_t num_pis{8};
    std::size_t num_pos{4};
    /// Logic gate target (the generator hits this exactly).
    std::size_t num_gates{64};
    /// Locality window: fanins come from the last `window` created signals.
    std::size_t window{64};
    /// Deterministic seed.
    std::uint64_t seed{0xbea7ull};
};

/// Generates the network described by \p spec. Guarantees: exact PI/PO/gate
/// counts, every PI drives at least one gate (when num_gates allows), and
/// all POs are driven by distinct recent signals where possible.
[[nodiscard]] ntk::logic_network synthetic_network(const synthetic_spec& spec);

}  // namespace mnt::bm
