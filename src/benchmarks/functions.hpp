#pragma once

/// \file functions.hpp
/// \brief Hand-written benchmark functions of the Trindade16 and Fontes18
///        sets plus ISCAS85's c17 — the small/medium functions MNT Bench
///        distributes as Verilog networks.
///
/// These are standard textbook functions reproduced from their published
/// definitions. For the handful of Fontes18 circuits whose exact netlists
/// are not publicly specified (t, b1_r2, newtag, clpl, cm82a_5), plausible
/// reconstructions with the published I/O signatures are provided and
/// documented in DESIGN.md §4.

#include "network/logic_network.hpp"

namespace mnt::bm
{

// --------------------------------------------------------- Trindade16 [11]

/// 2:1 multiplexer: y = s ? b : a (3 in / 1 out).
[[nodiscard]] ntk::logic_network mux21();

/// 2-input XOR in AOI form (2/1).
[[nodiscard]] ntk::logic_network xor2();

/// 2-input XNOR in AOI form (2/1).
[[nodiscard]] ntk::logic_network xnor2();

/// Half adder: sum/carry (2/2).
[[nodiscard]] ntk::logic_network half_adder();

/// Full adder in AOI form (3/2).
[[nodiscard]] ntk::logic_network full_adder();

/// 3-bit even-parity generator (3/1).
[[nodiscard]] ntk::logic_network parity_generator();

/// 4-bit parity checker (4/1): data bits plus received parity.
[[nodiscard]] ntk::logic_network parity_checker();

// ----------------------------------------------------------- Fontes18 [12]

/// "t": two functions of five shared inputs (5/2; reconstruction).
[[nodiscard]] ntk::logic_network t_function();

/// "b1_r2": four outputs over three inputs (3/4; reconstruction).
[[nodiscard]] ntk::logic_network b1_r2();

/// 5-input majority function (5/1).
[[nodiscard]] ntk::logic_network majority5();

/// "newtag": single output over eight inputs (8/1; reconstruction).
[[nodiscard]] ntk::logic_network newtag();

/// "clpl": carry-lookahead-style propagate logic (11/5; reconstruction).
[[nodiscard]] ntk::logic_network clpl();

/// 1-bit full adder, AND/OR/INV gates only (3/2).
[[nodiscard]] ntk::logic_network one_bit_adder_aoig();

/// 1-bit full adder using MAJ gates (3/2).
[[nodiscard]] ntk::logic_network one_bit_adder_maj();

/// 2-bit ripple-carry adder using MAJ gates (5/3).
[[nodiscard]] ntk::logic_network two_bit_adder_maj();

/// 5-input XOR built from majority-friendly structure (5/1).
[[nodiscard]] ntk::logic_network xor5_maj();

/// "cm82a": 3-output arithmetic slice over five inputs (5/3;
/// reconstruction of the MCNC circuit).
[[nodiscard]] ntk::logic_network cm82a_5();

/// 16-bit parity tree (16/1).
[[nodiscard]] ntk::logic_network parity16();

// ------------------------------------------------------------ ISCAS85 [13]

/// c17: the classic 6-NAND benchmark (5/2), exact published netlist.
[[nodiscard]] ntk::logic_network c17();

}  // namespace mnt::bm
