#include "benchmarks/synthetic.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <random>
#include <vector>

namespace mnt::bm
{

using ntk::logic_network;
using node = logic_network::node;

logic_network synthetic_network(const synthetic_spec& spec)
{
    if (spec.num_pis == 0 || spec.num_pos == 0)
    {
        throw precondition_error{"synthetic_network: need at least one PI and one PO"};
    }

    logic_network network{spec.name};
    std::mt19937_64 rng{spec.seed};
    std::vector<node> pool;
    pool.reserve(spec.num_pis + spec.num_gates);

    for (std::size_t i = 0; i < spec.num_pis; ++i)
    {
        pool.push_back(network.create_pi("in" + std::to_string(i)));
    }

    const auto window = std::max<std::size_t>(spec.window, 2);

    for (std::size_t i = 0; i < spec.num_gates; ++i)
    {
        // the first gates consume the PIs pairwise so none stays dangling
        node a{};
        node b{};
        if (i * 2 + 1 < spec.num_pis)
        {
            a = pool[i * 2];
            b = pool[i * 2 + 1];
        }
        else
        {
            const auto lo = pool.size() > window ? pool.size() - window : 0u;
            std::uniform_int_distribution<std::size_t> pick{lo, pool.size() - 1};
            a = pool[pick(rng)];
            b = pool[pick(rng)];
        }

        node g{};
        switch (rng() % 8)
        {
            case 0: g = network.create_and(a, b); break;
            case 1: g = network.create_or(a, b); break;
            case 2: g = network.create_nand(a, b); break;
            case 3: g = network.create_nor(a, b); break;
            case 4: g = network.create_xor(a, b); break;
            case 5: g = network.create_xnor(a, b); break;
            case 6: g = network.create_not(a); break;
            default: g = network.create_and(a, b); break;
        }
        pool.push_back(g);
    }

    // POs from the most recent distinct signals
    const auto po_candidates = std::min(pool.size(), std::max<std::size_t>(spec.num_pos, window));
    for (std::size_t i = 0; i < spec.num_pos; ++i)
    {
        const auto& src = pool[pool.size() - 1 - (i % po_candidates)];
        network.create_po(src, "out" + std::to_string(i));
    }
    return network;
}

}  // namespace mnt::bm
