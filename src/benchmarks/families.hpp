#pragma once

/// \file families.hpp
/// \brief Seeded synthetic benchmark families: thousands of deterministic
///        functions from a handful of parameters.
///
/// The paper's curated collection holds 18 functions per abstraction level —
/// enough to reproduce Table I, far too few to stress a catalog service. A
/// *family* scales that collection synthetically, ChiBench-style: a
/// \ref family_spec (gate mix, depth/fanout shape, PI/PO counts, a 64-bit
/// seed) plus the promoted property-test generator
/// (\ref mnt::pbt::random_network) deterministically expands into any number
/// of structurally valid functions.
///
/// Reproducibility contract:
///
///  - the **family id** is a 32-hex hash over every shape parameter, the
///    seed and \ref family_generator_version — two families agree on their
///    id iff they generate byte-identical functions;
///  - each function derives its own seed from (family seed, index) via a
///    splitmix64 finalizer, so generation is embarrassingly parallel and
///    function `i` never depends on functions `0..i-1`;
///  - the **family manifest** is a canonical JSON document (stable key
///    order, index-ordered function list) whose bytes — and therefore its
///    hash — are identical across runs, thread counts and machines.
///
/// Families register as additional benchmark sets (`Family-<name>`) and flow
/// through the same portfolio/regeneration pipeline, store and query facets
/// as the curated sets; catalog records carry `family`/`family_seed`.

#include "benchmarks/suites.hpp"
#include "network/logic_network.hpp"
#include "service/json.hpp"
#include "testing/generators.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mnt::bm
{

/// Bumped whenever the generator or the seed-derivation scheme changes in a
/// way that alters generated networks; part of the family id, so stale
/// manifests can never collide with fresh ones.
inline constexpr std::uint32_t family_generator_version = 1;

/// Parameters of a synthetic benchmark family.
struct family_spec
{
    /// Family name; the benchmark set is registered as "Family-<name>".
    std::string name{"family"};

    /// Number of functions in the family.
    std::size_t count{1000};

    /// Family seed; every function seed derives from it.
    std::uint64_t seed{0x4d4e54464d31ull};  // "MNTFM1"

    /// Network shape: PI/PO counts, gate budget, fanout window, chain
    /// probability (depth), gate mix. The per-function name is overridden by
    /// the generator.
    pbt::network_spec shape{};

    /// Portfolio size budget applied to every function of the family.
    size_class size{size_class::small};
};

/// The benchmark-set name a family registers under ("Family-<name>").
[[nodiscard]] std::string family_set_name(const family_spec& spec);

/// The 32-hex family id: hash of all shape parameters + seed + generator
/// version (see file comment).
[[nodiscard]] std::string family_id(const family_spec& spec);

/// Zero-padded function name within a family ("f00000", "f00001", ...).
[[nodiscard]] std::string family_function_name(std::size_t index);

/// Deterministic per-function seed: splitmix64-style mix of the family seed,
/// the function index and the generator version. O(1), so functions generate
/// independently (and in parallel) in any order.
[[nodiscard]] std::uint64_t family_function_seed(const family_spec& spec, std::size_t index);

/// Generates function \p index of the family. Pure: depends only on \p spec
/// and \p index.
///
/// \throws precondition_error if index >= spec.count
[[nodiscard]] ntk::logic_network family_network(const family_spec& spec, std::size_t index);

/// Expands the family into portfolio-ready benchmark entries (set
/// "Family-<name>", function names "f00000"...), each carrying the family id
/// and its per-function seed. Entry bodies build lazily via
/// \ref family_network.
[[nodiscard]] std::vector<benchmark_entry> family_entries(const family_spec& spec);

/// Builds the versioned family manifest: family id, generator version, all
/// shape parameters, and one record per function (name, seed, PI/PO/gate
/// counts, hash of the primitives-style Verilog serialization). Function
/// records are computed in parallel through the task runtime; the document
/// is byte-identical at any thread count.
[[nodiscard]] svc::json_value family_manifest(const family_spec& spec);

/// Canonical manifest bytes (\ref family_manifest serialized).
[[nodiscard]] std::string family_manifest_bytes(const family_spec& spec);

/// 32-hex hash of \ref family_manifest_bytes — the single value two runs
/// must agree on to prove they generated the same family.
[[nodiscard]] std::string family_manifest_hash(const family_spec& spec);

/// The three reference families pinned by KATs and used by the CI family
/// smoke job: "aoi" (AND/OR/INV mix), "xor" (XOR-heavy) and "maj"
/// (majority-enabled), 1000 functions each.
[[nodiscard]] std::vector<family_spec> reference_families();

/// Looks up a reference family by name; count/seed can then be overridden.
[[nodiscard]] std::optional<family_spec> find_reference_family(const std::string& name);

}  // namespace mnt::bm
